//! # promptem-repro
//!
//! Umbrella crate for the pure-Rust reproduction of *PromptEM: Prompt-tuning
//! for Low-resource Generalized Entity Matching* (VLDB 2022).
//!
//! This crate re-exports the workspace members so examples and integration
//! tests can use a single dependency:
//!
//! * [`nn`] — tape autograd + layers + optimizers,
//! * [`lm`] — the mini masked language model (tokenizer, transformer
//!   encoder, MLM pretraining, prompt-tuning machinery),
//! * [`data`] — the GEM data model, serialization, and the eight synthetic
//!   benchmark generators,
//! * [`promptem`] — the paper's contribution (prompt-tuning for GEM plus
//!   lightweight self-training),
//! * [`baselines`] — the eight comparison systems from the evaluation.

#![warn(missing_docs)]

pub use em_baselines as baselines;
pub use em_data as data;
pub use em_lm as lm;
pub use em_nn as nn;
pub use promptem;
