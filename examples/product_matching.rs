//! Product matching across formats: semi-structured product specs vs long,
//! noisy marketing descriptions (SEMI-TEXT-w — the hardest benchmark).
//!
//! Demonstrates the self-training machinery in isolation: teacher training,
//! uncertainty-aware pseudo-label selection vs the confidence alternative
//! (paper §4.2 / Table 5), and dynamic data pruning (§4.3).
//!
//! ```text
//! cargo run --release --example product_matching
//! ```

use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::promptem::model::{PromptEmModel, PromptOpts};
use promptem_repro::promptem::pipeline::{encode_with, pretrain_backbone, PromptEmConfig};
use promptem_repro::promptem::pseudo::{
    pseudo_label_quality, select_pseudo_labels, PseudoCfg, SelectionStrategy,
};
use promptem_repro::promptem::selftrain::{lightweight_self_train, LstCfg};
use promptem_repro::promptem::trainer::{evaluate, TunableMatcher};

fn main() {
    let dataset = build(BenchmarkId::SemiTextW, Scale::Quick, 11);
    let cfg = PromptEmConfig::default();
    println!("pretraining backbone for {}...", dataset.name);
    let backbone = pretrain_backbone(&dataset, &cfg);
    let encoded = encode_with(&dataset, &backbone, &cfg);

    // Train a teacher and compare pseudo-label selection strategies.
    let mut teacher = PromptEmModel::new(backbone.clone(), PromptOpts::default(), 3);
    teacher.train(&encoded.train, &encoded.valid, &cfg.lst.teacher, None);
    println!(
        "teacher valid scores: {}",
        evaluate(&mut teacher, &encoded.valid)
    );

    for strategy in [
        SelectionStrategy::Uncertainty,
        SelectionStrategy::Confidence,
        SelectionStrategy::Clustering,
    ] {
        let pcfg = PseudoCfg {
            strategy,
            u_r: 0.15,
            ..Default::default()
        };
        let selected = select_pseudo_labels(&mut teacher, &encoded.unlabeled, &pcfg);
        let (tpr, tnr) = pseudo_label_quality(&selected, &encoded.unlabeled_gold);
        println!(
            "{strategy:?}: selected {} pseudo-labels, TPR {tpr:.2} TNR {tnr:.2}",
            selected.len()
        );
    }

    // Full lightweight self-training with dynamic data pruning.
    let proto = PromptEmModel::new(backbone, PromptOpts::default(), 4);
    let lst = LstCfg::quick();
    let (mut student, report) = lightweight_self_train(
        &proto,
        &encoded.train,
        &encoded.valid,
        &encoded.unlabeled,
        Some(&encoded.unlabeled_gold),
        &lst,
    );
    println!();
    println!(
        "student test scores: {}",
        evaluate(&mut student, &encoded.test)
    );
    println!("DDP pruned {} training examples", report.pruned);
}
