//! Active learning extension: instead of self-training on pseudo-labels,
//! spend a small annotation budget on the pool samples the model is most
//! *uncertain* about (the dual use of MC-Dropout, cf. the paper's related
//! work on active low-resource ER).
//!
//! ```text
//! cargo run --release --example active_learning
//! ```

use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::promptem::active::{active_round, AcquisitionStrategy};
use promptem_repro::promptem::model::{PromptEmModel, PromptOpts};
use promptem_repro::promptem::pipeline::{encode_with, pretrain_backbone, PromptEmConfig};
use promptem_repro::promptem::trainer::{evaluate, TrainCfg, TunableMatcher};

fn main() {
    let dataset = build(BenchmarkId::SemiHomo, Scale::Quick, 31);
    let cfg = PromptEmConfig::default();
    println!("pretraining backbone for {}...", dataset.name);
    let backbone = pretrain_backbone(&dataset, &cfg);
    let encoded = encode_with(&dataset, &backbone, &cfg);

    let train_cfg = TrainCfg {
        epochs: 6,
        ..Default::default()
    };
    let mut model = PromptEmModel::new(backbone, PromptOpts::default(), 5);
    let mut train = encoded.train.clone();
    let mut pool = encoded.unlabeled.clone();
    let mut pool_gold = encoded.unlabeled_gold.clone();

    model.train(&train, &encoded.valid, &train_cfg, None);
    println!(
        "round 0: {} labels, test {}",
        train.len(),
        evaluate(&mut model, &encoded.test)
    );

    for round in 1..=3 {
        let (n, valid_f1) = active_round(
            &mut model,
            &mut train,
            &mut pool,
            &mut pool_gold,
            &encoded.valid,
            8,
            AcquisitionStrategy::Uncertainty,
            &train_cfg,
        );
        let test = evaluate(&mut model, &encoded.test);
        println!(
            "round {round}: +{n} labels ({} total, valid F1 {valid_f1:.1}), test {test}",
            train.len()
        );
    }
    println!();
    println!("each round spends the budget on the most uncertain pool samples;");
    println!("compare with `product_matching` where the same uncertainty signal");
    println!("selects the *least* uncertain samples for pseudo-labeling instead.");
}
