//! Error analysis with attribute attribution (Appendix C, operationalized):
//! train PromptEM on SEMI-HETER (books with near-duplicate editions), take
//! misclassified test pairs, and show which attributes drove each wrong
//! decision via leave-one-attribute-out importance.
//!
//! ```text
//! cargo run --release --example explain_errors
//! ```

use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::promptem::explain::attribute_importance;
use promptem_repro::promptem::model::{PromptEmModel, PromptOpts};
use promptem_repro::promptem::pipeline::{encode_with, pretrain_backbone, PromptEmConfig};
use promptem_repro::promptem::trainer::{evaluate, TunableMatcher};

fn main() {
    let dataset = build(BenchmarkId::SemiHeter, Scale::Quick, 13);
    let cfg = PromptEmConfig::default();
    println!("pretraining backbone for {}...", dataset.name);
    let backbone = pretrain_backbone(&dataset, &cfg);
    let encoded = encode_with(&dataset, &backbone, &cfg);

    let mut model = PromptEmModel::new(backbone.clone(), PromptOpts::default(), 17);
    model.train(&encoded.train, &encoded.valid, &cfg.lst.teacher, None);
    println!("test scores: {}\n", evaluate(&mut model, &encoded.test));

    let pairs: Vec<_> = encoded.test.iter().map(|e| e.pair.clone()).collect();
    let pred = model.predict(&pairs);
    let mut shown = 0;
    for (k, (p, ex)) in pred.iter().zip(&encoded.test).enumerate() {
        if *p == ex.label || shown >= 2 {
            continue;
        }
        shown += 1;
        let lp = dataset.test[k];
        let (l, r) = dataset.records(lp.pair);
        println!(
            "--- {} (gold {}, predicted {}) ---",
            if *p {
                "FALSE POSITIVE"
            } else {
                "FALSE NEGATIVE"
            },
            ex.label,
            p
        );
        let imp = attribute_importance(
            &mut model,
            &backbone.tokenizer,
            l,
            dataset.left.format,
            r,
            dataset.right.format,
            &cfg.encode,
        );
        println!("most influential attributes (Δ P(match) when removed):");
        for a in imp.iter().take(6) {
            println!("  {:>24}: {:+.3}", a.attribute, a.delta);
        }
        println!();
    }
    if shown == 0 {
        println!("(no errors on this test split — lucky seed)");
    } else {
        println!("Appendix C's diagnosis: decisions should hinge on digit attributes");
        println!("(ISBN, publication date); attributions that ignore them explain the");
        println!("near-duplicate-edition errors.");
    }
}
