//! Quickstart: build a synthetic GEM benchmark, run the full PromptEM
//! pipeline (backbone pretraining → prompt-tuning → lightweight
//! self-training) and print test-set scores.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::promptem::pipeline::{run, PromptEmConfig};

fn main() {
    // REL-HETER: two relational restaurant tables with heterogeneous
    // schemas, labeled at the paper's default 10% low-resource rate.
    let dataset = build(BenchmarkId::RelHeter, Scale::Quick, 42);
    println!(
        "dataset {} ({}): {} train / {} valid / {} test / {} unlabeled",
        dataset.name,
        dataset.domain,
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len(),
        dataset.unlabeled.len()
    );

    let cfg = PromptEmConfig::default();
    println!("pretraining the backbone LM and running PromptEM (takes a few minutes)...");
    let result = run(&dataset, &cfg);

    println!();
    println!("== {} ==", result.dataset);
    println!("test scores:        {}", result.scores);
    println!("backbone pretrain:  {:.1}s", result.pretrain_secs);
    println!("prompt-tune + LST:  {:.1}s", result.train_secs);
    println!(
        "pseudo-labels selected: {:?} (TPR/TNR {:?})",
        result.lst.pseudo_selected, result.lst.pseudo_quality
    );
    println!("examples pruned by DDP: {}", result.lst.pruned);
}
