//! Bring your own data: build a GEM task from a CSV table and a JSON-Lines
//! table (the exact Figure-1 situation — relational metadata vs
//! semi-structured records), label a handful of pairs, and run PromptEM.
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use promptem_repro::data::ingest::{table_from_csv, table_from_jsonl};
use promptem_repro::data::pair::{GemDataset, LabeledPair, Pair};
use promptem_repro::promptem::pipeline::{run, PromptEmConfig};
use promptem_repro::promptem::{LstCfg, PseudoCfg, TrainCfg};

fn main() {
    // A relational table of papers...
    let mut csv = String::from("title,venue,year\n");
    // ...and a semi-structured table of the same universe.
    let mut jsonl = String::new();
    let topics = [
        "similarity search",
        "entity matching",
        "query optimization",
        "graph mining",
    ];
    let venues = ["sigmod", "vldb", "icde", "kdd"];
    for i in 0..48 {
        let topic = topics[i % topics.len()];
        let venue = venues[(i / 4) % venues.len()];
        let year = 2000 + (i % 20);
        csv.push_str(&format!("efficient {topic} number {i},{venue},{year}\n"));
        jsonl.push_str(&format!(
            "{{\"Title\": \"efficient {topic} number {i}\", \"Publication\": {{\"venue\": \"{venue}\", \"yr\": {year}}}}}\n"
        ));
    }
    let left = table_from_csv("papers_csv", &csv).expect("valid csv");
    let right = table_from_jsonl("papers_jsonl", &jsonl).expect("valid jsonl");
    println!(
        "left: {} records ({}), right: {} records ({})",
        left.len(),
        left.format,
        right.len(),
        right.format
    );

    // Label a few pairs: (i, i) match, (i, i+1) non-match.
    let mut labeled = Vec::new();
    for i in 0..left.len() {
        labeled.push(LabeledPair {
            pair: Pair { left: i, right: i },
            label: true,
        });
        labeled.push(LabeledPair {
            pair: Pair {
                left: i,
                right: (i + 1) % right.len(),
            },
            label: false,
        });
    }
    let test = labeled.split_off(labeled.len() - 24);
    let valid = labeled.split_off(labeled.len() - 24);
    let unlabeled = labeled.split_off(labeled.len() - 24);
    let dataset = GemDataset {
        name: "custom".into(),
        domain: "citation".into(),
        left,
        right,
        train: labeled,
        valid,
        test,
        unlabeled,
        rate: 0.25,
    };

    // A trimmed configuration: this toy task is small.
    let mut cfg = PromptEmConfig::default();
    cfg.pretrain.max_steps = 800;
    cfg.lst = LstCfg {
        teacher: TrainCfg {
            epochs: 6,
            ..Default::default()
        },
        student: TrainCfg {
            epochs: 6,
            ..Default::default()
        },
        pseudo: PseudoCfg {
            passes: 5,
            ..Default::default()
        },
        ..LstCfg::quick()
    };

    println!("pretraining + matching (about a minute)...");
    let result = run(&dataset, &cfg);
    println!("custom task: {}", result.scores);
    for (lp, pred) in dataset.test.iter().zip(&result.test_predictions).take(4) {
        println!(
            "  pair ({}, {}): gold {} predicted {}",
            lp.pair.left, lp.pair.right, lp.label, pred
        );
    }
}
