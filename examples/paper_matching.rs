//! The paper's introductory scenario (Figure 1): matching relational paper
//! metadata against *textual abstracts* — a task where the two sides have
//! no schema in common, so classic EM cannot even be set up.
//!
//! Demonstrates the lower-level API: manual serialization, backbone
//! pretraining, prompt-tuning with an explicit template choice, and
//! pseudo-label quality auditing.
//!
//! ```text
//! cargo run --release --example paper_matching
//! ```

use promptem_repro::data::serialize::serialize;
use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::lm::prompt::{LabelWords, PromptMode, TemplateId};
use promptem_repro::promptem::model::PromptOpts;
use promptem_repro::promptem::pipeline::{
    encode_with, pretrain_backbone, run_with_backbone, PromptEmConfig,
};

fn main() {
    // REL-TEXT: left table = abstracts (pure text), right = metadata.
    let dataset = build(BenchmarkId::RelText, Scale::Quick, 7);

    // Show what serialization does to each side (paper §2.2).
    let sample = dataset.test[0];
    let (left, right) = dataset.records(sample.pair);
    println!(
        "textual side   : {}",
        clip(&serialize(left, dataset.left.format), 18)
    );
    println!(
        "relational side: {}",
        clip(&serialize(right, dataset.right.format), 18)
    );
    println!(
        "gold label     : {}",
        if sample.label { "match" } else { "non-match" }
    );
    println!();

    // Configure PromptEM with the hard T1 template — "serialize(e)
    // serialize(e') They are [MASK]" — instead of the default continuous T2.
    let cfg = PromptEmConfig {
        prompt: PromptOpts {
            template: TemplateId::T1,
            mode: PromptMode::Hard,
            label_words: LabelWords::designed(),
        },
        ..Default::default()
    };

    println!("pretraining backbone on the dataset's own tables...");
    let backbone = pretrain_backbone(&dataset, &cfg);
    println!(
        "vocab {} tokens, final MLM loss {:.2}",
        backbone.tokenizer.vocab_size(),
        backbone.final_mlm_loss
    );

    let encoded = encode_with(&dataset, &backbone, &cfg);
    println!(
        "encoded: abstracts summarized to <= {} tokens per side",
        cfg.encode.side_tokens
    );

    let result = run_with_backbone(backbone, &dataset, &cfg);
    println!();
    println!("REL-TEXT with hard T1 template: {}", result.scores);
    if let Some(&(tpr, tnr)) = result.lst.pseudo_quality.first() {
        println!("pseudo-label quality: TPR {tpr:.2} TNR {tnr:.2}");
    }
    let _ = encoded;
}

fn clip(s: &str, words: usize) -> String {
    let mut out: Vec<&str> = s.split_whitespace().take(words).collect();
    if s.split_whitespace().count() > words {
        out.push("…");
    }
    out.join(" ")
}
