//! Geospatial entity resolution (GEO-HETER, after Balsebre et al.'s
//! OSM-FSQ benchmarks): points of interest whose right table fuses
//! latitude/longitude into a single `position` attribute — a schema
//! heterogeneity that defeats aligned-schema EM but is just another
//! serialization to GEM.
//!
//! Also compares PromptEM against the unsupervised TDmatch baseline on the
//! same split.
//!
//! ```text
//! cargo run --release --example geo_matching
//! ```

use promptem_repro::baselines::{evaluate_matcher, MatchTask, Matcher, TDmatchBaseline};
use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::promptem::pipeline::{
    encode_with, pretrain_backbone, run_with_backbone, PromptEmConfig,
};

fn main() {
    let dataset = build(BenchmarkId::GeoHeter, Scale::Quick, 23);
    let sample = &dataset.right.records[0];
    println!("a right-table POI record:");
    for (name, value) in &sample.attrs {
        println!("  {name}: {value}");
    }
    println!();

    let cfg = PromptEmConfig::default();
    println!("pretraining backbone...");
    let backbone = pretrain_backbone(&dataset, &cfg);
    let encoded = encode_with(&dataset, &backbone, &cfg);

    // Unsupervised TDmatch: graph + random walks, zero labels.
    let mut tdmatch = TDmatchBaseline::new();
    let task = MatchTask {
        raw: &dataset,
        encoded: &encoded,
        backbone: backbone.clone(),
    };
    let (td_scores, td_secs) = evaluate_matcher(&mut tdmatch, &task);
    println!(
        "{:12} {} ({td_secs:.1}s, no labels)",
        tdmatch.name(),
        td_scores
    );

    // PromptEM with the default configuration.
    let result = run_with_backbone(backbone, &dataset, &cfg);
    println!(
        "{:12} {} ({:.1}s, {} labels)",
        "PromptEM",
        result.scores,
        result.train_secs,
        dataset.train.len()
    );
}
