#!/usr/bin/env bash
# Regenerate every paper table/figure sequentially, appending to
# bench_output.txt. Cheap targets run first so partial runs still record
# something useful.
set -uo pipefail
cd "$(dirname "$0")/.."
OUT=${1:-bench_output.txt}
: > "$OUT"
for target in \
    table1_datasets \
    table5_pseudo \
    fig4_templates \
    fig5_label_words \
    table4_efficiency \
    fig6_error_analysis \
    appendix_f_summarization \
    ablation_identity_head \
    insight_calibration \
    table4b_scalability \
    table4c_ddp_amortization \
    table2_main \
    table3_extreme \
    fig3_low_resource_sweep \
    table6_sufficient \
; do
    echo "=== $target ===" | tee -a "$OUT"
    cargo bench -p em-bench --bench "$target" 2>/dev/null | tee -a "$OUT"
done
