#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, formatting,
# and lint-clean clippy. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> em-lint (repo invariants, 12 rules incl. concurrency family)"
cargo run --release -q -p em-check --bin em-lint

echo "==> lexer + lint engine suite (fixtures, proptests, tree-clean pin)"
cargo test --release -q -p em-check --test lex_prop --test lint_fixture

echo "==> em-sched model check (scheduler self-tests + op-stats table + pool, 64 seeds)"
cargo test --release -q -p em-check --test sched_selftest
PROMPTEM_SCHED_SEEDS=64 cargo test --release -q -p em-nn --test sched_opstats
PROMPTEM_SCHED_SEEDS=64 cargo test --release -q -p promptem --test sched_pool

echo "==> sanitizer smoke (PROMPTEM_SANITIZE=1 tiny pipeline)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p promptem-cli --bin promptem -- \
    export --benchmark REL-HETER --dir "$smoke_dir" --seed 7 >/dev/null
PROMPTEM_SANITIZE=1 cargo run --release -q -p promptem-cli --bin promptem -- \
    match --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
    --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
    --pretrain-steps 20 --epochs 1 >/dev/null

echo "==> smoke profile (op-profiled traced runs + perf-regression gate)"
for run in base new; do
    cargo run --release -q -p promptem-cli --bin promptem -- \
        match --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
        --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
        --pretrain-steps 20 --epochs 1 --op-profile \
        --metrics-out "$smoke_dir/$run.jsonl" >/dev/null
done
cargo run --release -q -p promptem-cli --bin promptem -- \
    report "$smoke_dir/new.jsonl" --bench-out BENCH_report.json \
    | tee "$smoke_dir/report.txt"
cargo run --release -q -p promptem-cli --bin promptem -- \
    report --diff "$smoke_dir/base.jsonl" "$smoke_dir/new.jsonl"

echo "==> op profile (non-empty op attribution + clean self-diff)"
grep -q "ops — " "$smoke_dir/report.txt" || {
    echo "op-profile: report printed no per-phase op tables" >&2
    exit 1
}
grep -q '"op": "matmul"' BENCH_report.json || {
    echo "op-profile: BENCH_report.json carries no op rows" >&2
    exit 1
}
cargo run --release -q -p promptem-cli --bin promptem -- \
    report --diff "$smoke_dir/new.jsonl" "$smoke_dir/new.jsonl" >/dev/null

echo "==> parallel scoring (tape-free smoke + 1-vs-2-thread canonical gate)"
for t in 1 2; do
    cargo run --release -q -p promptem-cli --bin promptem -- \
        match --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
        --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
        --pretrain-steps 20 --epochs 1 --threads "$t" --progress-every 1 \
        --metrics-out "$smoke_dir/threads$t.jsonl" >/dev/null
done
cargo run --release -q -p promptem-cli --bin promptem -- \
    report --diff "$smoke_dir/threads1.jsonl" "$smoke_dir/threads2.jsonl" \
    --canonical
# Tape-free smoke: scoring must record zero autodiff nodes, so the
# cumulative tape-node counter is flat across every consecutive run of
# MC-dropout heartbeats (training between scoring rounds may grow it).
awk '
    /"type":"progress"/ {
        if ($0 ~ /"phase":"mc_dropout"/) {
            match($0, /"tape_nodes":[0-9]+/)
            v = substr($0, RSTART + 13, RLENGTH - 13)
            if (scoring && v != prev) {
                print "tape-free smoke: tape nodes grew mid-scoring: " prev " -> " v
                exit 1
            }
            prev = v; scoring = 1; seen = 1
        } else {
            scoring = 0
        }
    }
    END { if (!seen) { print "tape-free smoke: no mc_dropout heartbeats in trace"; exit 1 } }
' "$smoke_dir/threads2.jsonl"

echo "==> live telemetry (heartbeats, run_meta, top, trend-gated history)"
cargo run --release -q -p promptem-cli --bin promptem -- \
    match --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
    --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
    --pretrain-steps 20 --epochs 1 --progress-every 5 \
    --metrics-out "$smoke_dir/live.jsonl" >/dev/null
head -n1 "$smoke_dir/live.jsonl" | grep -q '"type":"run_meta"' || {
    echo "telemetry: run_meta is not the first trace line" >&2
    exit 1
}
grep -q '"type":"progress"' "$smoke_dir/live.jsonl" || {
    echo "telemetry: traced run with --progress-every emitted no heartbeats" >&2
    exit 1
}
cargo run --release -q -p promptem-cli --bin promptem -- \
    top "$smoke_dir/live.jsonl" --once >/dev/null
for run in base new live; do
    cargo run --release -q -p promptem-cli --bin promptem -- \
        history "$smoke_dir/BENCH_history.jsonl" \
        --append "$smoke_dir/$run.jsonl" >/dev/null
done
cargo run --release -q -p promptem-cli --bin promptem -- \
    history "$smoke_dir/BENCH_history.jsonl" --gate
# An injected +200% wall entry against that baseline must trip the gate.
tail -n1 "$smoke_dir/BENCH_history.jsonl" | awk '{
    match($0, /"total_wall_us":[0-9]+/)
    v = substr($0, RSTART + 16, RLENGTH - 16)
    sub(/"total_wall_us":[0-9]+/, sprintf("\"total_wall_us\":%.0f", v * 3))
    print
}' >>"$smoke_dir/BENCH_history.jsonl"
if cargo run --release -q -p promptem-cli --bin promptem -- \
    history "$smoke_dir/BENCH_history.jsonl" --gate >/dev/null 2>&1; then
    echo "history gate: missed an injected +200% wall regression" >&2
    exit 1
fi

echo "==> chaos (failpoint kill mid-run, resume, diff against uninterrupted base)"
if PROMPTEM_FAILPOINTS=batch:panic@28 \
    cargo run --release -q -p promptem-cli --bin promptem -- \
    match --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
    --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
    --pretrain-steps 20 --epochs 1 \
    --checkpoint-dir "$smoke_dir/ckpt" --checkpoint-every 5 >/dev/null 2>&1; then
    echo "chaos: run survived an injected crash-at-batch failpoint" >&2
    exit 1
fi
cargo run --release -q -p promptem-cli --bin promptem -- \
    ckpt inspect "$smoke_dir/ckpt/pretrain"
cargo run --release -q -p promptem-cli --bin promptem -- \
    match --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
    --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
    --pretrain-steps 20 --epochs 1 \
    --checkpoint-dir "$smoke_dir/ckpt" --checkpoint-every 5 --resume \
    --metrics-out "$smoke_dir/resumed.jsonl" >/dev/null
cargo run --release -q -p promptem-cli --bin promptem -- \
    report --diff "$smoke_dir/base.jsonl" "$smoke_dir/resumed.jsonl"

echo "==> serve (chaos service: worker kill + injected sheds, byte parity vs offline)"
cargo run --release -q -p promptem-cli --bin promptem -- \
    match --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
    --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
    --pretrain-steps 20 --epochs 1 --output "$smoke_dir/pred.csv" >/dev/null
PROMPTEM_RETRY_BACKOFF_MS=0 \
PROMPTEM_FAILPOINTS=worker_forward:panic@2,mailbox_enqueue:io_err@3 \
    cargo run --release -q -p promptem-cli --bin promptem -- \
    serve --left "$smoke_dir/left.csv" --right "$smoke_dir/right.csv" \
    --labels "$smoke_dir/train.csv" --seed 7 --trace warn \
    --pretrain-steps 20 --epochs 1 --port 0 --port-file "$smoke_dir/addr" \
    --workers 2 --queue-cap 8 --inflight-cap 16 \
    --metrics-out "$smoke_dir/serve.jsonl" >/dev/null 2>"$smoke_dir/serve.err" &
serve_pid=$!
for _ in $(seq 1 600); do
    [ -s "$smoke_dir/addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
[ -s "$smoke_dir/addr" ] || {
    echo "serve: server never published its address" >&2
    cat "$smoke_dir/serve.err" >&2
    exit 1
}
cargo run --release -q -p promptem-cli --bin promptem -- \
    drive --port-file "$smoke_dir/addr" --pairs "$smoke_dir/pred.csv" \
    --connections 4 --out "$smoke_dir/served.csv" --shutdown
wait "$serve_pid" || {
    echo "serve: graceful drain exited nonzero" >&2
    cat "$smoke_dir/serve.err" >&2
    exit 1
}
cmp "$smoke_dir/pred.csv" "$smoke_dir/served.csv" || {
    echo "serve: served decisions differ from offline match output" >&2
    exit 1
}
for ev in request reject worker_restart drain; do
    grep -q "\"type\":\"$ev\"" "$smoke_dir/serve.jsonl" || {
        echo "serve: trace carries no $ev event" >&2
        exit 1
    }
done

echo "ci: all checks passed"
