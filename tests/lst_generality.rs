//! §4.1 claims lightweight self-training is "general enough to incorporate
//! with other approaches": verify the LST loop runs unchanged over both the
//! prompt-tuned model and the fine-tuned model (and over a stub, proving
//! the abstraction boundary is the TunableMatcher trait alone).

use promptem_repro::promptem::encode::{EncodedPair, Example};
use promptem_repro::promptem::model::{PromptEmModel, PromptOpts};
use promptem_repro::promptem::selftrain::{lightweight_self_train, LstCfg};
use promptem_repro::promptem::testutil::{tiny_backbone, toy_examples};
use promptem_repro::promptem::trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};
use promptem_repro::promptem::{FineTuneModel, PseudoCfg};

fn tiny_lst() -> LstCfg {
    LstCfg {
        teacher: TrainCfg {
            epochs: 2,
            ..Default::default()
        },
        student: TrainCfg {
            epochs: 2,
            ..Default::default()
        },
        pseudo: PseudoCfg {
            passes: 2,
            u_r: 0.2,
            ..Default::default()
        },
        prune: Some(PruneCfg {
            every: 1,
            e_r: 0.1,
            passes: 2,
        }),
        ..LstCfg::quick()
    }
}

#[test]
fn lst_runs_over_the_prompt_model() {
    let backbone = tiny_backbone();
    let (train, valid) = toy_examples(&backbone, 24, 1);
    let (extra, _) = toy_examples(&backbone, 20, 2);
    let unlabeled: Vec<EncodedPair> = extra.iter().map(|e| e.pair.clone()).collect();
    let proto = PromptEmModel::new(backbone, PromptOpts::default(), 3);
    let (_, report) = lightweight_self_train(&proto, &train, &valid, &unlabeled, None, &tiny_lst());
    assert_eq!(report.pseudo_selected.len(), 1);
    assert!(report.pseudo_selected[0] > 0);
}

#[test]
fn lst_runs_over_the_finetune_model() {
    let backbone = tiny_backbone();
    let (train, valid) = toy_examples(&backbone, 24, 4);
    let (extra, _) = toy_examples(&backbone, 20, 5);
    let unlabeled: Vec<EncodedPair> = extra.iter().map(|e| e.pair.clone()).collect();
    let proto = FineTuneModel::new(backbone, 6);
    let (_, report) = lightweight_self_train(&proto, &train, &valid, &unlabeled, None, &tiny_lst());
    assert_eq!(report.pseudo_selected.len(), 1);
}

/// A deterministic stub matcher: "probability" is a hash of the pair ids.
/// Proves LST depends on nothing beyond the trait.
struct StubMatcher {
    trained_on: usize,
    threshold: f32,
}

impl TunableMatcher for StubMatcher {
    fn fresh(&self, _seed: u64) -> Self {
        StubMatcher {
            trained_on: 0,
            threshold: 0.5,
        }
    }
    fn train(
        &mut self,
        train: &[Example],
        _valid: &[Example],
        _cfg: &TrainCfg,
        _prune: Option<&PruneCfg>,
    ) -> TrainReport {
        self.trained_on = train.len();
        TrainReport {
            epochs_run: 1,
            ..Default::default()
        }
    }
    fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
        pairs
            .iter()
            .map(|p| {
                let h = p
                    .ids_a
                    .iter()
                    .chain(&p.ids_b)
                    .fold(7usize, |a, &b| a.wrapping_mul(31) ^ b);
                (h % 100) as f32 / 100.0
            })
            .collect()
    }
    fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
        (0..passes).map(|_| self.predict_proba(pairs)).collect()
    }
    fn set_threshold(&mut self, t: f32) {
        self.threshold = t;
    }
    fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
        self.predict_proba(pairs)
            .into_iter()
            .map(|p| vec![p])
            .collect()
    }
}

#[test]
fn lst_is_trait_generic() {
    let train: Vec<Example> = (0..10)
        .map(|i| Example {
            pair: EncodedPair {
                ids_a: vec![i],
                ids_b: vec![i * 2],
            },
            label: i % 2 == 0,
        })
        .collect();
    let valid = train.clone();
    let unlabeled: Vec<EncodedPair> = (10..30)
        .map(|i| EncodedPair {
            ids_a: vec![i],
            ids_b: vec![i + 1],
        })
        .collect();
    let proto = StubMatcher {
        trained_on: 0,
        threshold: 0.5,
    };
    let (student, report) =
        lightweight_self_train(&proto, &train, &valid, &unlabeled, None, &tiny_lst());
    // The student was trained on the original labels plus the selected
    // pseudo-labels (u_r = 0.2 of 20 = 4).
    assert_eq!(report.pseudo_selected, vec![4]);
    assert_eq!(student.trained_on, 14);
}

#[test]
fn multi_iteration_lst_consumes_more_of_the_pool() {
    let train: Vec<Example> = (0..10)
        .map(|i| Example {
            pair: EncodedPair {
                ids_a: vec![i],
                ids_b: vec![i],
            },
            label: i % 2 == 0,
        })
        .collect();
    let unlabeled: Vec<EncodedPair> = (10..50)
        .map(|i| EncodedPair {
            ids_a: vec![i],
            ids_b: vec![i],
        })
        .collect();
    let mut cfg = tiny_lst();
    cfg.iterations = 3;
    let proto = StubMatcher {
        trained_on: 0,
        threshold: 0.5,
    };
    let (_, report) =
        lightweight_self_train(&proto, &train, &train.clone(), &unlabeled, None, &cfg);
    assert_eq!(report.pseudo_selected.len(), 3);
    // Each iteration selects 20% of the shrinking pool: 8, then ~6, then ~5.
    assert!(report.pseudo_selected[0] > report.pseudo_selected[2]);
}
