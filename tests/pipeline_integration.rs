//! Cross-crate integration tests: the full pipeline (data → serialization →
//! backbone → prompt-tuning → self-training → metrics) on small synthetic
//! benchmarks, with reduced budgets so the suite stays fast.

use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::promptem::pipeline::{
    encode_with, pretrain_backbone, run_encoded, PromptEmConfig,
};
use promptem_repro::promptem::pseudo::PseudoCfg;
use promptem_repro::promptem::selftrain::LstCfg;
use promptem_repro::promptem::trainer::TrainCfg;
use std::sync::{Arc, OnceLock};

/// A reduced-budget configuration: enough to exercise every code path,
/// cheap enough for CI.
fn ci_cfg() -> PromptEmConfig {
    let mut cfg = PromptEmConfig::default();
    cfg.pretrain.max_steps = 200;
    cfg.corpus.max_record_sentences = 150;
    cfg.corpus.relation_statements = 150;
    cfg.lst = LstCfg {
        teacher: TrainCfg {
            epochs: 2,
            ..Default::default()
        },
        student: TrainCfg {
            epochs: 2,
            ..Default::default()
        },
        pseudo: PseudoCfg {
            passes: 2,
            u_r: 0.1,
            ..Default::default()
        },
        ..LstCfg::quick()
    };
    cfg
}

struct Fixture {
    ds: promptem_repro::data::GemDataset,
    backbone: Arc<promptem_repro::lm::PretrainedLm>,
    encoded: promptem_repro::promptem::EncodedDataset,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = build(BenchmarkId::RelHeter, Scale::Quick, 2024);
        let cfg = ci_cfg();
        let backbone = pretrain_backbone(&ds, &cfg);
        let encoded = encode_with(&ds, &backbone, &cfg);
        Fixture {
            ds,
            backbone,
            encoded,
        }
    })
}

#[test]
fn full_pipeline_produces_sane_scores() {
    let fix = fixture();
    let result = run_encoded(fix.backbone.clone(), &fix.encoded, &ci_cfg());
    assert_eq!(result.dataset, "REL-HETER");
    assert!(result.scores.f1.is_finite());
    assert!((0.0..=100.0).contains(&result.scores.f1));
    assert!((0.0..=100.0).contains(&result.scores.precision));
    assert!((0.0..=100.0).contains(&result.scores.recall));
    // LST ran: one iteration of pseudo-labeling with quality audit.
    assert_eq!(result.lst.pseudo_selected.len(), 1);
    assert_eq!(result.lst.pseudo_quality.len(), 1);
    let (tpr, tnr) = result.lst.pseudo_quality[0];
    assert!((0.0..=1.0).contains(&tpr) && (0.0..=1.0).contains(&tnr));
}

#[test]
fn ablations_disable_their_modules() {
    let fix = fixture();

    let mut no_lst = ci_cfg();
    no_lst.use_lst = false;
    let r = run_encoded(fix.backbone.clone(), &fix.encoded, &no_lst);
    assert!(
        r.lst.pseudo_selected.is_empty(),
        "w/o LST still pseudo-labeled"
    );
    assert_eq!(r.lst.pruned, 0);

    let mut no_ddp = ci_cfg();
    no_ddp.lst.prune = None;
    let r = run_encoded(fix.backbone.clone(), &fix.encoded, &no_ddp);
    assert_eq!(r.lst.pruned, 0, "w/o DDP still pruned");

    let mut no_pt = ci_cfg();
    no_pt.use_prompt = false;
    let r = run_encoded(fix.backbone.clone(), &fix.encoded, &no_pt);
    assert!(r.scores.f1.is_finite());
}

#[test]
fn ddp_actually_prunes_when_enabled() {
    let fix = fixture();
    let mut cfg = ci_cfg();
    cfg.lst.student.epochs = 4;
    cfg.lst.prune = Some(promptem_repro::promptem::PruneCfg {
        every: 1,
        e_r: 0.2,
        passes: 2,
    });
    let r = run_encoded(fix.backbone.clone(), &fix.encoded, &cfg);
    assert!(r.lst.pruned > 0, "DDP enabled but nothing pruned");
}

#[test]
fn dataset_variants_reuse_the_backbone() {
    let fix = fixture();
    // A budget-80 variant (Table 3) encodes under the same tokenizer.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let variant = fix.ds.with_budget(30, &mut rng);
    assert_eq!(variant.train.len(), 30);
    let cfg = ci_cfg();
    let encoded = encode_with(&variant, &fix.backbone, &cfg);
    assert_eq!(encoded.train.len(), 30);
    let r = run_encoded(fix.backbone.clone(), &encoded, &cfg);
    assert!(r.scores.f1.is_finite());
}

#[test]
fn deterministic_given_seed_and_backbone() {
    let fix = fixture();
    let r1 = run_encoded(fix.backbone.clone(), &fix.encoded, &ci_cfg());
    let r2 = run_encoded(fix.backbone.clone(), &fix.encoded, &ci_cfg());
    assert_eq!(
        r1.scores, r2.scores,
        "same seed, same backbone, different scores"
    );
}
