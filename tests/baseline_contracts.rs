//! Integration tests over the baseline matchers: every method satisfies the
//! Matcher contract on a shared benchmark, and structural expectations from
//! the paper hold (e.g. TDmatch consumes no labels, Rotom is two-stage).

use promptem_repro::baselines::{
    evaluate_matcher, BertBaseline, DaderBaseline, DeepMatcherBaseline, DittoBaseline, MatchTask,
    Matcher, RotomBaseline, SBertBaseline, TDmatchBaseline, TDmatchStarBaseline,
};
use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::promptem::pipeline::{encode_with, pretrain_backbone, PromptEmConfig};
use promptem_repro::promptem::trainer::TrainCfg;
use std::sync::{Arc, OnceLock};

struct Fixture {
    ds: promptem_repro::data::GemDataset,
    backbone: Arc<promptem_repro::lm::PretrainedLm>,
    encoded: promptem_repro::promptem::EncodedDataset,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = build(BenchmarkId::GeoHeter, Scale::Quick, 555);
        let mut cfg = PromptEmConfig::default();
        cfg.pretrain.max_steps = 150;
        cfg.corpus.max_record_sentences = 150;
        cfg.corpus.relation_statements = 120;
        let backbone = pretrain_backbone(&ds, &cfg);
        let encoded = encode_with(&ds, &backbone, &cfg);
        Fixture {
            ds,
            backbone,
            encoded,
        }
    })
}

fn quick_cfg() -> TrainCfg {
    TrainCfg {
        epochs: 2,
        ..Default::default()
    }
}

fn check<M: Matcher>(mut m: M) {
    let fix = fixture();
    let task = MatchTask {
        raw: &fix.ds,
        encoded: &fix.encoded,
        backbone: fix.backbone.clone(),
    };
    let (scores, secs) = evaluate_matcher(&mut m, &task);
    assert!(
        scores.f1.is_finite() && (0.0..=100.0).contains(&scores.f1),
        "{}",
        m.name()
    );
    assert!(secs >= 0.0);
    // Predictions must cover the whole test split.
    let pred = m.predict_test(&task);
    assert_eq!(pred.len(), fix.encoded.test.len(), "{}", m.name());
}

#[test]
fn deepmatcher_contract() {
    check(DeepMatcherBaseline::new(quick_cfg(), 1));
}

#[test]
fn bert_contract() {
    check(BertBaseline::new(quick_cfg(), 2));
}

#[test]
fn sbert_contract() {
    check(SBertBaseline::new(quick_cfg(), 3));
}

#[test]
fn ditto_contract() {
    check(DittoBaseline::new(quick_cfg(), 4));
}

#[test]
fn rotom_contract() {
    check(RotomBaseline::new(quick_cfg(), 5));
}

#[test]
fn dader_contract() {
    let source = build(BenchmarkId::RelHeter, Scale::Quick, 556);
    let mut m = DaderBaseline::new(quick_cfg(), source, 6);
    m.align_steps = 3;
    check(m);
}

#[test]
fn tdmatch_contract_and_label_independence() {
    check(TDmatchBaseline::new());

    // TDmatch must produce identical predictions when every train label is
    // flipped: it is unsupervised.
    let fix = fixture();
    let mut flipped = fix.ds.clone();
    for lp in flipped.train.iter_mut() {
        lp.label = !lp.label;
    }
    let task1 = MatchTask {
        raw: &fix.ds,
        encoded: &fix.encoded,
        backbone: fix.backbone.clone(),
    };
    let task2 = MatchTask {
        raw: &flipped,
        encoded: &fix.encoded,
        backbone: fix.backbone.clone(),
    };
    let mut a = TDmatchBaseline::new();
    a.fit(&task1);
    let mut b = TDmatchBaseline::new();
    b.fit(&task2);
    assert_eq!(a.predict_test(&task1), b.predict_test(&task2));
}

#[test]
fn tdmatch_star_contract() {
    check(TDmatchStarBaseline::new(7));
}
