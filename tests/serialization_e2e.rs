//! End-to-end serialization/encoding checks across every benchmark: the
//! pipeline from records to token ids preserves the properties each paper
//! section relies on.

use promptem_repro::data::serialize::serialize;
use promptem_repro::data::summarize::TfIdf;
use promptem_repro::data::synth::{build, BenchmarkId, Scale};
use promptem_repro::lm::Tokenizer;
use promptem_repro::promptem::encode::{encode_dataset, EncodeCfg};

#[test]
fn every_benchmark_serializes_all_records() {
    for id in BenchmarkId::ALL {
        let ds = build(id, Scale::Quick, 99);
        for (table, fmt) in [(&ds.left, ds.left.format), (&ds.right, ds.right.format)] {
            for r in &table.records {
                let s = serialize(r, fmt);
                assert!(!s.trim().is_empty(), "{id:?}: empty serialization");
            }
        }
    }
}

#[test]
fn summaries_keep_discriminative_content_not_tags() {
    let ds = build(BenchmarkId::SemiHomo, Scale::Quick, 100);
    let texts: Vec<String> = ds
        .left
        .records
        .iter()
        .map(|r| serialize(r, ds.left.format))
        .collect();
    let tfidf = TfIdf::fit(texts.iter().map(|s| s.as_str()));
    for t in texts.iter().take(20) {
        let s = tfidf.summarize(t, 16);
        let toks: Vec<&str> = s.split_whitespace().collect();
        assert!(toks.len() <= 16);
        let tags = toks
            .iter()
            .filter(|t| **t == "[COL]" || **t == "[VAL]")
            .count();
        assert_eq!(tags, 0, "tags crowded the summary: {s}");
    }
}

#[test]
fn encoded_sides_are_nonempty_and_within_budget_everywhere() {
    for id in BenchmarkId::ALL {
        let ds = build(id, Scale::Quick, 101);
        let corpus: Vec<String> = ds
            .left
            .records
            .iter()
            .map(|r| serialize(r, ds.left.format))
            .chain(
                ds.right
                    .records
                    .iter()
                    .map(|r| serialize(r, ds.right.format)),
            )
            .collect();
        let tok = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 2);
        let cfg = EncodeCfg::default();
        let enc = encode_dataset(&ds, &tok, &cfg);
        for ex in enc.train.iter().chain(&enc.valid).chain(&enc.test) {
            assert!(!ex.pair.ids_a.is_empty(), "{id:?}: empty left side");
            assert!(!ex.pair.ids_b.is_empty(), "{id:?}: empty right side");
            assert!(ex.pair.ids_a.len() <= cfg.side_tokens);
            assert!(ex.pair.ids_b.len() <= cfg.side_tokens);
        }
    }
}

#[test]
fn matching_signal_survives_encoding() {
    // After summarization + tokenization, positives must still share more
    // token ids than negatives on every benchmark — otherwise no matcher
    // could work.
    for id in BenchmarkId::ALL {
        let ds = build(id, Scale::Quick, 102);
        let corpus: Vec<String> = ds
            .left
            .records
            .iter()
            .map(|r| serialize(r, ds.left.format))
            .chain(
                ds.right
                    .records
                    .iter()
                    .map(|r| serialize(r, ds.right.format)),
            )
            .collect();
        let tok = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 2);
        let enc = encode_dataset(&ds, &tok, &EncodeCfg::default());
        let overlap = |a: &[usize], b: &[usize]| -> f64 {
            let sa: std::collections::HashSet<_> = a.iter().collect();
            let sb: std::collections::HashSet<_> = b.iter().collect();
            let inter = sa.intersection(&sb).count();
            inter as f64 / sa.union(&sb).count().max(1) as f64
        };
        let (mut pos, mut neg) = (vec![], vec![]);
        for ex in enc.test.iter().chain(&enc.valid) {
            let o = overlap(&ex.pair.ids_a, &ex.pair.ids_b);
            if ex.label {
                pos.push(o)
            } else {
                neg.push(o)
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&pos) > mean(&neg),
            "{id:?}: token-id overlap signal lost (pos {:.3} vs neg {:.3})",
            mean(&pos),
            mean(&neg)
        );
    }
}
