//! Property-based tests of the tokenizer: totality, determinism,
//! normalization, and the digit-trigram fallback.

use em_lm::tokenizer::{Tokenizer, PAD, SPECIALS, UNK};
use proptest::prelude::*;

fn fitted() -> Tokenizer {
    Tokenizer::fit(
        [
            "the quick brown fox jumps over the lazy dog",
            "pack my box with five dozen liquor jugs 1998 2003",
            "[COL] name [VAL] value they are matched similar",
        ],
        1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoding_is_total(text in "[a-zA-Z0-9 ./$-]{0,60}") {
        let t = fitted();
        let ids = t.encode(&text);
        // Every id is in range; no panics on arbitrary input.
        for &id in &ids {
            prop_assert!(id < t.vocab_size());
        }
        // PAD never appears spontaneously.
        prop_assert!(!ids.contains(&PAD));
    }

    #[test]
    fn encoding_is_deterministic(text in "[a-z0-9 ]{0,40}") {
        let t = fitted();
        prop_assert_eq!(t.encode(&text), t.encode(&text));
    }

    #[test]
    fn case_is_irrelevant(word in "[a-z]{1,10}") {
        let t = fitted();
        prop_assert_eq!(t.encode(&word), t.encode(&word.to_uppercase()));
    }

    #[test]
    fn known_words_round_trip(count in 1usize..8) {
        let t = fitted();
        let words = ["quick", "brown", "fox", "dog", "matched"];
        let text: Vec<&str> = (0..count).map(|i| words[i % words.len()]).collect();
        let text = text.join(" ");
        let ids = t.encode(&text);
        prop_assert_eq!(t.decode(&ids), text);
    }

    #[test]
    fn numbers_share_prefix_tokens(n in 0u64..1_000_000_000) {
        // Two copies of the same number encode identically, and no UNK
        // appears (digit pieces cover everything).
        let t = fitted();
        let ids1 = t.encode(&n.to_string());
        let ids2 = t.encode(&n.to_string());
        prop_assert_eq!(&ids1, &ids2);
        prop_assert!(!ids1.contains(&UNK));
    }

    #[test]
    fn punctuation_variants_encode_equally(a in 100u32..999, b in 100u32..999) {
        // "412-555" and "412/555" and "412 555" all normalize to the same
        // alphanumeric runs.
        let t = fitted();
        let dash = t.encode(&format!("{a}-{b}"));
        let slash = t.encode(&format!("{a}/{b}"));
        let space = t.encode(&format!("{a} {b}"));
        prop_assert_eq!(&dash, &slash);
        prop_assert_eq!(&dash, &space);
    }

    #[test]
    fn encode_pair_always_fits(a in "[a-z ]{0,200}", b in "[a-z0-9 ]{0,200}", max_len in 8usize..64) {
        let t = fitted();
        let ids = t.encode_pair(&a, &b, max_len);
        prop_assert!(ids.len() <= max_len);
    }
}

#[test]
fn specials_are_stable() {
    let t = fitted();
    for (i, s) in SPECIALS.iter().enumerate() {
        assert_eq!(t.id_of(s), Some(i));
        assert_eq!(t.token_of(i), *s);
    }
}

#[test]
fn vocab_roundtrip_through_from_vocab() {
    let t = fitted();
    let rebuilt = Tokenizer::from_vocab(t.vocab().to_vec());
    assert_eq!(
        rebuilt.encode("quick brown 1998"),
        t.encode("quick brown 1998")
    );
}
