//! Behavioral tests of the encoder + identity-head initialization: the
//! properties the PromptEM pipeline depends on, checked at the LM level.

use em_lm::{LmConfig, PretrainCfg, PretrainedLm};
use em_nn::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_corpus() -> Vec<String> {
    let names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
    let mut corpus = Vec::new();
    for (i, a) in names.iter().enumerate() {
        for (j, b) in names.iter().enumerate() {
            let w = if i == j { "similar" } else { "different" };
            corpus.push(format!("{a} store {b} store they are {w}"));
        }
    }
    corpus
}

fn pretrained() -> PretrainedLm {
    PretrainedLm::pretrain(
        &tiny_corpus(),
        |v| LmConfig {
            vocab: v,
            d_model: 32,
            n_layers: 2,
            n_heads: 4,
            d_ff: 64,
            max_len: 16,
            dropout: 0.1,
        },
        // Budget and seed are calibrated to the vendored xoshiro rand
        // stream (crates/compat/rand): discrimination emerges by ~1200
        // steps at this seed and holds through the epoch cap.
        &PretrainCfg {
            max_steps: 1600,
            ..Default::default()
        },
        42,
    )
}

fn p_match(lm: &PretrainedLm, text: &str) -> f32 {
    let mut ids = vec![em_lm::tokenizer::CLS];
    ids.extend(lm.tokenizer.encode(text));
    ids.push(em_lm::tokenizer::MASK);
    ids.push(em_lm::tokenizer::SEP);
    let mask_pos = ids.len() - 2;
    let mut rng = StdRng::seed_from_u64(1);
    let mut tape = Tape::inference();
    let h = lm.encoder.forward(&mut tape, &lm.store, &ids, &mut rng);
    let hm = tape.slice_rows(h, mask_pos, 1);
    let logits = lm.mlm.logits(&mut tape, &lm.store, &lm.encoder, hm);
    let probs = tape.softmax_rows(logits);
    let pm = tape.value(probs);
    let get = |w: &str| lm.tokenizer.id_of(w).map(|i| pm.get(0, i)).unwrap_or(0.0);
    let y = get("similar");
    let n = get("different");
    y / (y + n).max(1e-9)
}

#[test]
fn pretrained_mlm_discriminates_same_from_different() {
    let lm = pretrained();
    let same = p_match(&lm, "alpha store alpha store they are");
    let diff = p_match(&lm, "alpha store beta store they are");
    assert!(
        same > diff + 0.1,
        "cloze discrimination did not emerge: same {same:.3} vs diff {diff:.3}"
    );
}

#[test]
fn discrimination_generalizes_across_names() {
    let lm = pretrained();
    let mut wins = 0;
    let names = ["beta", "gamma", "delta", "epsilon"];
    for (i, a) in names.iter().enumerate() {
        let same = p_match(&lm, &format!("{a} store {a} store they are"));
        let diff = p_match(
            &lm,
            &format!("{a} store {} store they are", names[(i + 1) % 4]),
        );
        if same > diff {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "discrimination failed on {}/4 name pairs",
        4 - wins
    );
}

#[test]
fn saved_and_reloaded_model_keeps_behavior() {
    let lm = pretrained();
    let mut buf = Vec::new();
    em_lm::io::write_model(&lm, &mut buf).unwrap();
    let loaded = em_lm::io::read_model(&mut buf.as_slice()).unwrap();
    let a = p_match(&lm, "gamma store gamma store they are");
    let b = p_match(&loaded, "gamma store gamma store they are");
    assert!(
        (a - b).abs() < 1e-6,
        "behavior changed after reload: {a} vs {b}"
    );
}

#[test]
fn identity_head_is_seeded_in_every_layer() {
    // Construct an untrained model and verify the Wq/Wk diagonals carry the
    // +1 overlay on head 0.
    let corpus = tiny_corpus();
    let lm = PretrainedLm::random(&corpus, LmConfig::tiny, 3);
    for layer in &lm.encoder.layers {
        for w in [layer.attn.wq.w, layer.attn.wk.w] {
            let m = lm.store.value(w);
            let mut diag_mass = 0.0;
            for i in 0..layer.attn.d_head {
                diag_mass += m.get(i, i);
            }
            // Xavier init is bounded by ~0.3 per entry; the overlay adds
            // exactly 1.0 per diagonal entry of head 0.
            assert!(
                diag_mass > 0.5 * layer.attn.d_head as f32,
                "identity overlay missing ({} diag mass {diag_mass})",
                lm.store.name(w)
            );
        }
    }
}
