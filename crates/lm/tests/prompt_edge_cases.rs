//! Edge-case behavior of the prompt machinery: empty/huge sides, verbalizer
//! degeneracies, template overhead accounting.

use em_lm::prompt::{LabelWords, PromptMode, PromptTemplate, TemplateId, Verbalizer};
use em_lm::{Encoder, LmConfig, Tokenizer};
use em_nn::{ParamStore, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(max_len: usize) -> (ParamStore, Encoder, Tokenizer, StdRng) {
    let tok = Tokenizer::fit(
        ["alpha beta gamma delta they are is to matched similar relevant mismatched different irrelevant"],
        1,
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let cfg = LmConfig {
        vocab: tok.vocab_size(),
        d_model: 16,
        n_layers: 1,
        n_heads: 2,
        d_ff: 32,
        max_len,
        dropout: 0.0,
    };
    let enc = Encoder::new(&mut store, cfg, &mut rng);
    (store, enc, tok, rng)
}

#[test]
fn empty_sides_still_produce_a_mask_position() {
    let (mut store, enc, tok, mut rng) = setup(32);
    for template in [TemplateId::T1, TemplateId::T2] {
        for mode in [PromptMode::Hard, PromptMode::Continuous] {
            let tmpl =
                PromptTemplate::new(&mut store, &tok, enc.cfg.d_model, template, mode, &mut rng);
            let mut tape = Tape::inference();
            let (h, mask_row) = tmpl.forward(&mut tape, &store, &enc, &[], &[], &mut rng);
            assert!(mask_row < tape.value(h).rows(), "{template:?}/{mode:?}");
        }
    }
}

#[test]
fn asymmetric_lengths_share_the_budget() {
    let (mut store, enc, tok, mut rng) = setup(24);
    let tmpl = PromptTemplate::new(
        &mut store,
        &tok,
        enc.cfg.d_model,
        TemplateId::T1,
        PromptMode::Hard,
        &mut rng,
    );
    let long: Vec<usize> = tok.encode("alpha beta gamma delta").repeat(20);
    let short = tok.encode("alpha");
    let mut tape = Tape::inference();
    let (h, mask_row) = tmpl.forward(&mut tape, &store, &enc, &long, &short, &mut rng);
    assert!(tape.value(h).rows() <= 24);
    assert!(mask_row < tape.value(h).rows());

    // Swap sides: still fits.
    let mut tape = Tape::inference();
    let (h, _) = tmpl.forward(&mut tape, &store, &enc, &short, &long, &mut rng);
    assert!(tape.value(h).rows() <= 24);
}

#[test]
fn verbalizer_drops_oov_words_but_keeps_class() {
    let tok = Tokenizer::fit(["matched mismatched plain words"], 1);
    let words = LabelWords {
        yes: vec!["matched".into(), "nonexistentword".into()],
        no: vec!["mismatched".into()],
    };
    let v = Verbalizer::new(&tok, &words);
    assert_eq!(v.yes_ids.len(), 1);
    assert_eq!(v.no_ids.len(), 1);
}

#[test]
#[should_panic(expected = "label word")]
fn verbalizer_panics_when_a_class_is_empty() {
    let tok = Tokenizer::fit(["just plain words"], 1);
    // None of the designed words exist in this vocabulary.
    let _ = Verbalizer::new(&tok, &LabelWords::simple());
}

#[test]
fn continuous_templates_add_params_hard_do_not() {
    let (mut store, enc, tok, mut rng) = setup(32);
    let before = store.len();
    let _hard = PromptTemplate::new(
        &mut store,
        &tok,
        enc.cfg.d_model,
        TemplateId::T1,
        PromptMode::Hard,
        &mut rng,
    );
    assert_eq!(store.len(), before, "hard template must not add parameters");
    let _cont = PromptTemplate::new(
        &mut store,
        &tok,
        enc.cfg.d_model,
        TemplateId::T1,
        PromptMode::Continuous,
        &mut rng,
    );
    assert!(
        store.len() > before,
        "continuous template must add prompt parameters"
    );
}
