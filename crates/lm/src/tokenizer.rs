//! Word-level tokenizer with character-piece fallback and the special
//! tokens the GEM serialization and MLM objective need.
//!
//! The real PromptEM uses RoBERTa's BPE vocabulary; a learned subword model
//! would be overkill for the synthetic corpora here, so we learn a word
//! vocabulary from the pretraining corpus and decompose out-of-vocabulary
//! words into per-character pieces (`#a`, `#b`, …) — the same
//! open-vocabulary property, much simpler.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Counters explaining encoder cost: how often words resolve directly in
/// the vocabulary vs. decompose into digit-trigram or per-character pieces
/// (each decomposition multiplies sequence length, and attention cost is
/// quadratic in it).
struct PieceCounters {
    vocab: em_obs::metrics::Counter,
    digit: em_obs::metrics::Counter,
    chars: em_obs::metrics::Counter,
    unk: em_obs::metrics::Counter,
}

fn piece_counters() -> &'static PieceCounters {
    static COUNTERS: OnceLock<PieceCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PieceCounters {
        vocab: em_obs::metrics::counter("lm_tokenizer_pieces", &[("path", "vocab")]),
        digit: em_obs::metrics::counter("lm_tokenizer_pieces", &[("path", "digit")]),
        chars: em_obs::metrics::counter("lm_tokenizer_pieces", &[("path", "char")]),
        unk: em_obs::metrics::counter("lm_tokenizer_pieces", &[("path", "unk")]),
    })
}

/// Reserved token ids (stable across any corpus).
/// Padding token id.
pub const PAD: usize = 0;
/// Unknown-token id (character fallback failed entirely).
pub const UNK: usize = 1;
/// Sequence-start classification token id.
pub const CLS: usize = 2;
/// Separator token id.
pub const SEP: usize = 3;
/// Cloze mask token id.
pub const MASK: usize = 4;
/// Attribute-name tag id (GEM serialization).
pub const COL: usize = 5;
/// Attribute-value tag id (GEM serialization).
pub const VAL: usize = 6;

/// Names of the reserved tokens, in id order.
pub const SPECIALS: [&str; 7] = [
    "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[COL]", "[VAL]",
];

/// A fitted vocabulary.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Tokenizer {
    /// Learn a vocabulary from a corpus. Words occurring fewer than
    /// `min_freq` times are left to the character fallback. Character pieces
    /// for all ASCII letters/digits plus common punctuation are always added
    /// so any input remains encodable.
    pub fn fit<'a>(corpus: impl IntoIterator<Item = &'a str>, min_freq: usize) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            for tok in doc.split_whitespace() {
                for piece in split_word(&normalize(tok)) {
                    *counts.entry(piece).or_insert(0) += 1;
                }
            }
        }
        let mut id_to_token: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        // Character pieces first: stable ids regardless of corpus order.
        for c in ('a'..='z').chain('0'..='9') {
            id_to_token.push(format!("#{c}"));
        }
        for c in ['.', ',', '-', '/', '$', '(', ')', ':', '%'] {
            id_to_token.push(format!("#{c}"));
        }
        // Digit trigram pieces: numbers too rare for the word vocabulary
        // (phone numbers, ISBNs, zip codes) decompose into aligned 3-digit
        // groups, so equal numbers share equal token sequences — the error
        // analysis of Appendix C shows digit attributes are load-bearing.
        for n in 0..1000 {
            id_to_token.push(format!("#{n:03}"));
        }
        let mut words: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|(w, c)| *c >= min_freq && !SPECIALS.contains(&w.as_str()))
            .collect();
        // Deterministic order: by frequency desc, then lexicographic.
        words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (w, _) in words {
            id_to_token.push(w);
        }
        let token_to_id = id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Tokenizer {
            token_to_id,
            id_to_token,
        }
    }

    /// Rebuild a tokenizer from a saved vocabulary (see [`crate::io`]).
    /// The list must start with the reserved specials.
    pub fn from_vocab(id_to_token: Vec<String>) -> Self {
        assert!(id_to_token.len() >= SPECIALS.len(), "vocabulary too short");
        for (i, s) in SPECIALS.iter().enumerate() {
            assert_eq!(
                &id_to_token[i], s,
                "vocabulary does not start with the specials"
            );
        }
        let token_to_id = id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Tokenizer {
            token_to_id,
            id_to_token,
        }
    }

    /// The full id→token list (for persistence).
    pub fn vocab(&self) -> &[String] {
        &self.id_to_token
    }

    /// Number of tokens in the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.id_to_token.len()
    }

    /// Id of a token string, if in vocabulary.
    pub fn id_of(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Token string of an id.
    pub fn token_of(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Encode one whitespace-separated text into token ids (no [CLS]/[SEP]
    /// framing — see [`Tokenizer::encode_pair`]).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        let mut ids = Vec::new();
        for tok in text.split_whitespace() {
            self.encode_word(tok, &mut ids);
        }
        ids
    }

    fn encode_word(&self, tok: &str, out: &mut Vec<usize>) {
        // Structural tags keep their case; everything else is normalized.
        if let Some(&id) = self.token_to_id.get(tok) {
            piece_counters().vocab.inc();
            out.push(id);
            return;
        }
        let norm = normalize(tok);
        for piece in split_word(&norm) {
            self.encode_piece(&piece, out);
        }
    }

    fn encode_piece(&self, piece: &str, out: &mut Vec<usize>) {
        if let Some(&id) = self.token_to_id.get(piece) {
            piece_counters().vocab.inc();
            out.push(id);
            return;
        }
        // Numeric fallback: aligned 3-digit groups.
        if piece.len() > 1 && piece.bytes().all(|b| b.is_ascii_digit()) {
            piece_counters().digit.inc();
            for chunk in piece.as_bytes().chunks(3) {
                let key = if chunk.len() == 3 {
                    format!("#{}", String::from_utf8_lossy(chunk))
                } else {
                    // 1-2 trailing digits fall back to single-char pieces.
                    for &b in chunk {
                        if let Some(&id) = self.token_to_id.get(format!("#{}", b as char).as_str())
                        {
                            out.push(id);
                        }
                    }
                    continue;
                };
                if let Some(&id) = self.token_to_id.get(key.as_str()) {
                    out.push(id);
                }
            }
            return;
        }
        // Character fallback.
        let mut emitted = false;
        for c in piece.chars() {
            if let Some(&id) = self.token_to_id.get(format!("#{c}").as_str()) {
                out.push(id);
                emitted = true;
            }
        }
        if emitted {
            piece_counters().chars.inc();
        } else {
            piece_counters().unk.inc();
            out.push(UNK);
        }
    }

    /// `[CLS] a [SEP] b [SEP]`, truncating both sides proportionally to fit
    /// `max_len` (paper §2.3's sequence-pair layout).
    pub fn encode_pair(&self, a: &str, b: &str, max_len: usize) -> Vec<usize> {
        let ta = self.encode(a);
        let tb = self.encode(b);
        let budget = max_len.saturating_sub(3);
        let (ka, kb) = proportional_budget(ta.len(), tb.len(), budget);
        let mut ids = Vec::with_capacity(ka + kb + 3);
        ids.push(CLS);
        ids.extend_from_slice(&ta[..ka]);
        ids.push(SEP);
        ids.extend_from_slice(&tb[..kb]);
        ids.push(SEP);
        ids
    }

    /// Decode ids back to a readable string (char pieces are re-joined).
    pub fn decode(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        let mut in_word = false;
        for &id in ids {
            let tok = self.token_of(id);
            if let Some(c) = tok.strip_prefix('#') {
                if !in_word && !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(c);
                in_word = true;
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(tok);
                in_word = false;
            }
        }
        out
    }

    /// Ids of the non-special "content" vocabulary (used by MLM random
    /// replacement).
    pub fn content_range(&self) -> std::ops::Range<usize> {
        SPECIALS.len()..self.vocab_size()
    }
}

/// Split a token budget proportionally between two sequences.
fn proportional_budget(la: usize, lb: usize, budget: usize) -> (usize, usize) {
    if la + lb <= budget {
        return (la, lb);
    }
    let ka = (budget * la + (la + lb) / 2) / (la + lb).max(1);
    let ka = ka.min(la).min(budget);
    let kb = (budget - ka).min(lb);
    // Give any slack back to the left side.
    let ka = (budget - kb).min(la);
    (ka, kb)
}

fn normalize(tok: &str) -> String {
    tok.to_lowercase()
}

/// Split a normalized word into alphanumeric runs, discarding punctuation:
/// `"412-555-0123"` → `["412", "555", "0123"]`, `"d."` → `["d"]`. Keeping
/// the runs (and dropping separators) makes equal numbers/dates equal token
/// sequences regardless of formatting — format heterogeneity is exactly
/// what GEM has to see through.
fn split_word(tok: &str) -> Vec<String> {
    let mut pieces = Vec::new();
    let mut cur = String::new();
    for c in tok.chars() {
        if c.is_alphanumeric() {
            cur.push(c);
        } else if !cur.is_empty() {
            pieces.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Tokenizer {
        Tokenizer::fit(
            [
                "the cat sat on the mat",
                "the dog sat",
                "[COL] name [VAL] cat",
            ],
            1,
        )
    }

    #[test]
    fn specials_have_fixed_ids() {
        let t = toy();
        assert_eq!(t.id_of("[PAD]"), Some(PAD));
        assert_eq!(t.id_of("[MASK]"), Some(MASK));
        assert_eq!(t.id_of("[COL]"), Some(COL));
        assert_eq!(t.id_of("[VAL]"), Some(VAL));
    }

    #[test]
    fn known_words_round_trip() {
        let t = toy();
        let ids = t.encode("the cat sat");
        assert_eq!(ids.len(), 3);
        assert_eq!(t.decode(&ids), "the cat sat");
    }

    #[test]
    fn oov_words_fall_back_to_chars_and_decode() {
        let t = toy();
        let ids = t.encode("zebra");
        assert_eq!(ids.len(), 5);
        assert!(ids.iter().all(|&i| t.token_of(i).starts_with('#')));
        assert_eq!(t.decode(&ids), "zebra");
    }

    #[test]
    fn numbers_are_encodable_via_chars() {
        let t = toy();
        let ids = t.encode("9780672336072");
        assert!(!ids.contains(&UNK));
        assert_eq!(t.decode(&ids), "9780672336072");
    }

    #[test]
    fn case_is_normalized() {
        let t = toy();
        assert_eq!(t.encode("CAT"), t.encode("cat"));
    }

    #[test]
    fn min_freq_prunes_rare_words() {
        let t = Tokenizer::fit(["rare rare common common common", "common"], 3);
        assert!(t.id_of("common").is_some());
        assert!(t.id_of("rare").is_none());
    }

    #[test]
    fn encode_pair_frames_and_respects_max_len() {
        let t = toy();
        let ids = t.encode_pair("the cat sat on the mat", "the dog sat", 8);
        assert_eq!(ids.len(), 8);
        assert_eq!(ids[0], CLS);
        assert_eq!(*ids.last().unwrap(), SEP);
        assert_eq!(ids.iter().filter(|&&i| i == SEP).count(), 2);
    }

    #[test]
    fn encode_pair_no_truncation_when_short() {
        let t = toy();
        let ids = t.encode_pair("cat", "dog", 64);
        assert_eq!(ids.len(), 5); // CLS cat SEP dog SEP
    }

    #[test]
    fn proportional_budget_sums_to_budget() {
        for (la, lb, budget) in [(100, 50, 60), (10, 200, 60), (5, 5, 60), (0, 100, 10)] {
            let (ka, kb) = proportional_budget(la, lb, budget);
            assert!(ka <= la && kb <= lb);
            assert!(ka + kb <= budget.max(la + lb));
            if la + lb > budget {
                assert_eq!(ka + kb, budget, "({la},{lb},{budget}) -> ({ka},{kb})");
            }
        }
    }

    #[test]
    fn piece_counters_move_per_encode_path() {
        let t = toy();
        let c = piece_counters();
        // Deltas, not absolutes: the registry is process-global and other
        // tests encode in parallel.
        let (v0, d0, ch0, u0) = (c.vocab.get(), c.digit.get(), c.chars.get(), c.unk.get());
        t.encode("the cat"); // two vocabulary hits
        t.encode("9780672336072"); // digit-trigram fallback
        t.encode("zebra"); // character fallback
        t.encode("日本語"); // no char pieces at all -> UNK
        assert!(c.vocab.get() >= v0 + 2, "vocab-hit counter did not move");
        assert!(c.digit.get() > d0, "digit-fallback counter did not move");
        assert!(c.chars.get() > ch0, "char-fallback counter did not move");
        assert!(c.unk.get() > u0, "unk counter did not move");
    }

    #[test]
    fn structural_tags_survive_encoding() {
        let t = toy();
        let ids = t.encode("[COL] name [VAL] cat");
        assert_eq!(ids[0], COL);
        assert_eq!(ids[2], VAL);
    }
}
