//! Persistence of pretrained language models: vocabulary + configuration +
//! parameter values in one binary file. Used by the experiment harness to
//! cache per-dataset backbones (pretraining is the dominant cost) and
//! usable by downstream applications to ship a tuned model.
//!
//! Files written by this version carry an integrity trailer after the
//! `EMLMMOD1` body: magic `EMLMTRL1`, the body length (u64 LE) and a CRC32
//! of the body. Readers verify it when present and still accept
//! trailer-less files from older writers (which have no integrity
//! protection — a corrupt legacy file surfaces as `Truncated`/`Malformed`
//! where structure breaks, or not at all for pure value flips).

use crate::config::LmConfig;
use crate::encoder::Encoder;
use crate::heads::MlmHead;
use crate::model::PretrainedLm;
use crate::tokenizer::Tokenizer;
use em_nn::io::{read_params, read_string, read_u64, write_params, write_string};
use em_nn::ParamStore;
use em_resilience::checkpoint::crc32;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EMLMMOD1";
const TRAILER_MAGIC: &[u8; 8] = b"EMLMTRL1";
/// Trailer layout: magic (8) + body length u64 (8) + body CRC32 (4).
const TRAILER_LEN: usize = 20;

/// Why a model file failed to load.
#[derive(Debug)]
pub enum ModelReadError {
    /// An underlying I/O failure (not a content problem).
    Io(io::Error),
    /// The file does not start with the `EMLMMOD1` magic.
    BadMagic,
    /// The file ends before the declared structure does.
    Truncated,
    /// The integrity trailer's CRC does not match the body (bit flip or
    /// torn write).
    ChecksumMismatch,
    /// Structurally invalid content (bad lengths, non-UTF-8 vocab, ...).
    Malformed(String),
}

impl fmt::Display for ModelReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelReadError::Io(e) => write!(f, "model I/O error: {e}"),
            ModelReadError::BadMagic => write!(f, "not a model file (bad magic)"),
            ModelReadError::Truncated => write!(f, "model file truncated"),
            ModelReadError::ChecksumMismatch => {
                write!(f, "model file checksum mismatch (corrupt body)")
            }
            ModelReadError::Malformed(m) => write!(f, "malformed model file: {m}"),
        }
    }
}

impl std::error::Error for ModelReadError {}

impl From<io::Error> for ModelReadError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => ModelReadError::Truncated,
            io::ErrorKind::InvalidData => ModelReadError::Malformed(e.to_string()),
            _ => ModelReadError::Io(e),
        }
    }
}

/// Serialize the model body (everything the legacy format contained).
fn write_model_body(lm: &PretrainedLm, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    // Tokenizer vocabulary.
    let vocab = lm.tokenizer.vocab();
    w.write_all(&(vocab.len() as u64).to_le_bytes())?;
    for tok in vocab {
        write_string(w, tok)?;
    }
    // Model configuration.
    let c = &lm.encoder.cfg;
    for v in [c.vocab, c.d_model, c.n_layers, c.n_heads, c.d_ff, c.max_len] {
        w.write_all(&(v as u64).to_le_bytes())?;
    }
    w.write_all(&c.dropout.to_le_bytes())?;
    w.write_all(&lm.final_mlm_loss.to_le_bytes())?;
    // Parameters.
    write_params(&lm.store, w)
}

/// Serialize a pretrained model to a writer (body + integrity trailer).
pub fn write_model(lm: &PretrainedLm, w: &mut impl Write) -> io::Result<()> {
    let mut body = Vec::new();
    write_model_body(lm, &mut body)?;
    w.write_all(&body)?;
    w.write_all(TRAILER_MAGIC)?;
    w.write_all(&(body.len() as u64).to_le_bytes())?;
    w.write_all(&crc32(&body).to_le_bytes())
}

/// Split `bytes` into the model body, verifying the integrity trailer when
/// one is present. Trailer-less (legacy) input is returned whole.
fn verified_body(bytes: &[u8]) -> Result<&[u8], ModelReadError> {
    if bytes.len() >= TRAILER_LEN {
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        if &trailer[..8] == TRAILER_MAGIC {
            let body = &bytes[..bytes.len() - TRAILER_LEN];
            let mut b = [0u8; 8];
            b.copy_from_slice(&trailer[8..16]);
            if u64::from_le_bytes(b) != body.len() as u64 {
                return Err(ModelReadError::Truncated);
            }
            let mut c = [0u8; 4];
            c.copy_from_slice(&trailer[16..]);
            if u32::from_le_bytes(c) != crc32(body) {
                return Err(ModelReadError::ChecksumMismatch);
            }
            return Ok(body);
        }
    }
    Ok(bytes)
}

/// Deserialize a pretrained model from a reader.
///
/// The whole input is buffered first: when the integrity trailer is
/// present the body CRC is verified before any parsing, so a bit-flipped
/// file yields [`ModelReadError::ChecksumMismatch`] rather than garbage
/// weights; truncated input yields [`ModelReadError::Truncated`].
pub fn read_model(r: &mut impl Read) -> Result<PretrainedLm, ModelReadError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).map_err(ModelReadError::Io)?;
    let body = verified_body(&bytes)?;

    let mut r: &[u8] = body;
    let r = &mut r;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ModelReadError::BadMagic);
    }
    let vocab_len = read_u64(r)? as usize;
    if vocab_len > body.len() {
        // Each vocab entry takes at least its length prefix; a count larger
        // than the remaining bytes is corruption, not data.
        return Err(ModelReadError::Malformed(format!(
            "vocab count {vocab_len} exceeds file size"
        )));
    }
    let mut vocab = Vec::with_capacity(vocab_len);
    for _ in 0..vocab_len {
        vocab.push(read_string(r)?);
    }
    let tokenizer = Tokenizer::from_vocab(vocab);
    let mut nums = [0usize; 6];
    for n in &mut nums {
        *n = read_u64(r)? as usize;
    }
    let mut f32buf = [0u8; 4];
    r.read_exact(&mut f32buf)?;
    let dropout = f32::from_le_bytes(f32buf);
    r.read_exact(&mut f32buf)?;
    let final_mlm_loss = f32::from_le_bytes(f32buf);
    let cfg = LmConfig {
        vocab: nums[0],
        d_model: nums[1],
        n_layers: nums[2],
        n_heads: nums[3],
        d_ff: nums[4],
        max_len: nums[5],
        dropout,
    };
    // Guard against absurd dimensions before allocating the architecture.
    let scalars = cfg
        .d_model
        .checked_mul(cfg.vocab)
        .filter(|_| cfg.vocab > 0 && cfg.d_model > 0);
    if scalars.is_none() || body.len() < cfg.d_model.saturating_mul(cfg.vocab) / (1 << 8) {
        return Err(ModelReadError::Malformed(format!(
            "implausible config {cfg:?} for a {}-byte file",
            body.len()
        )));
    }
    // Rebuild the architecture (registration order must match pretraining),
    // then overwrite the randomly-initialized values from the file.
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, cfg, &mut rng);
    let mlm = MlmHead::new(&mut store, &encoder, &mut rng);
    read_params(&mut store, r)?;
    if !r.is_empty() {
        return Err(ModelReadError::Malformed(format!(
            "{} trailing bytes after parameters",
            r.len()
        )));
    }
    Ok(PretrainedLm {
        store,
        encoder,
        mlm,
        tokenizer,
        final_mlm_loss,
    })
}

/// Save a model to a file path. The write is atomic (temp → fsync →
/// rename): a crash mid-save leaves any previous file intact.
///
/// ```no_run
/// use em_lm::{LmConfig, PretrainCfg, PretrainedLm};
/// let corpus = vec!["some pretraining text".to_string()];
/// let lm = PretrainedLm::pretrain(&corpus, LmConfig::tiny, &PretrainCfg::default(), 1);
/// em_lm::io::save_model(&lm, "model.bin").unwrap();
/// let loaded = em_lm::io::load_model("model.bin").unwrap();
/// assert_eq!(loaded.encoder.cfg, lm.encoder.cfg);
/// ```
pub fn save_model(lm: &PretrainedLm, path: impl AsRef<Path>) -> io::Result<()> {
    let mut buf = Vec::new();
    write_model(lm, &mut buf)?;
    em_resilience::atomic_write(path.as_ref(), &buf)
}

/// Load a model from a file path.
pub fn load_model(path: impl AsRef<Path>) -> Result<PretrainedLm, ModelReadError> {
    let mut f = std::fs::File::open(path).map_err(ModelReadError::Io)?;
    read_model(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::PretrainCfg;
    use em_nn::Tape;

    fn tiny_lm() -> PretrainedLm {
        let corpus: Vec<String> = (0..12)
            .map(|i| format!("token{} appears with token{}", i % 4, (i + 1) % 4))
            .collect();
        PretrainedLm::pretrain(
            &corpus,
            |v| LmConfig {
                vocab: v,
                d_model: 16,
                n_layers: 1,
                n_heads: 2,
                d_ff: 32,
                max_len: 12,
                dropout: 0.1,
            },
            &PretrainCfg {
                max_steps: 20,
                ..Default::default()
            },
            4,
        )
    }

    #[test]
    fn model_roundtrips_bit_exactly() {
        let lm = tiny_lm();
        let mut buf = Vec::new();
        write_model(&lm, &mut buf).unwrap();
        let loaded = read_model(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.tokenizer.vocab(), lm.tokenizer.vocab());
        assert_eq!(loaded.encoder.cfg, lm.encoder.cfg);
        assert_eq!(loaded.final_mlm_loss, lm.final_mlm_loss);

        // Same forward output on the same input.
        let ids = lm.tokenizer.encode("token1 appears");
        let mut rng = StdRng::seed_from_u64(1);
        let run = |m: &PretrainedLm, rng: &mut StdRng| {
            let mut tape = Tape::inference();
            let framed: Vec<usize> = std::iter::once(crate::tokenizer::CLS)
                .chain(ids.iter().copied())
                .collect();
            let h = m.encoder.forward(&mut tape, &m.store, &framed, rng);
            tape.value(h).clone()
        };
        assert_eq!(run(&lm, &mut rng), run(&loaded, &mut rng));
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(matches!(
            read_model(&mut b"garbage".as_slice()),
            Err(ModelReadError::Truncated)
        ));
        assert!(matches!(
            read_model(&mut b"NOTMAGIC________________".as_slice()),
            Err(ModelReadError::BadMagic)
        ));
    }

    #[test]
    fn legacy_trailerless_files_still_load() {
        let lm = tiny_lm();
        let mut legacy = Vec::new();
        write_model_body(&lm, &mut legacy).unwrap();
        let loaded = read_model(&mut legacy.as_slice()).unwrap();
        assert_eq!(loaded.encoder.cfg, lm.encoder.cfg);
        for (a, b) in loaded.store.ids().zip(lm.store.ids()) {
            assert_eq!(loaded.store.value(a), lm.store.value(b));
        }
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let lm = tiny_lm();
        let mut buf = Vec::new();
        write_model(&lm, &mut buf).unwrap();
        // Flip one bit in the middle of the body (a parameter value, which
        // no structural check would catch).
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(matches!(
            read_model(&mut buf.as_slice()),
            Err(ModelReadError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let lm = tiny_lm();
        let mut buf = Vec::new();
        write_model(&lm, &mut buf).unwrap();
        for frac in [1, 2, 3, 5] {
            let cut = buf.len() * frac / 6;
            let err = match read_model(&mut buf[..cut].as_ref()) {
                Err(e) => e,
                Ok(_) => panic!("truncated file parsed at cut {cut}"),
            };
            assert!(
                matches!(
                    err,
                    ModelReadError::Truncated | ModelReadError::Malformed(_)
                ),
                "unexpected error {err:?} at cut {cut}"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let lm = tiny_lm();
        let dir = std::env::temp_dir().join("em_lm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        save_model(&lm, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.encoder.cfg, lm.encoder.cfg);
        std::fs::remove_file(&path).ok();
    }
}
