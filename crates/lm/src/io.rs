//! Persistence of pretrained language models: vocabulary + configuration +
//! parameter values in one binary file. Used by the experiment harness to
//! cache per-dataset backbones (pretraining is the dominant cost) and
//! usable by downstream applications to ship a tuned model.

use crate::config::LmConfig;
use crate::encoder::Encoder;
use crate::heads::MlmHead;
use crate::model::PretrainedLm;
use crate::tokenizer::Tokenizer;
use em_nn::io::{read_params, read_string, read_u64, write_params, write_string};
use em_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EMLMMOD1";

/// Serialize a pretrained model to a writer.
pub fn write_model(lm: &PretrainedLm, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    // Tokenizer vocabulary.
    let vocab = lm.tokenizer.vocab();
    w.write_all(&(vocab.len() as u64).to_le_bytes())?;
    for tok in vocab {
        write_string(w, tok)?;
    }
    // Model configuration.
    let c = &lm.encoder.cfg;
    for v in [c.vocab, c.d_model, c.n_layers, c.n_heads, c.d_ff, c.max_len] {
        w.write_all(&(v as u64).to_le_bytes())?;
    }
    w.write_all(&c.dropout.to_le_bytes())?;
    w.write_all(&lm.final_mlm_loss.to_le_bytes())?;
    // Parameters.
    write_params(&lm.store, w)
}

/// Deserialize a pretrained model from a reader.
pub fn read_model(r: &mut impl Read) -> io::Result<PretrainedLm> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad model magic",
        ));
    }
    let vocab_len = read_u64(r)? as usize;
    let mut vocab = Vec::with_capacity(vocab_len);
    for _ in 0..vocab_len {
        vocab.push(read_string(r)?);
    }
    let tokenizer = Tokenizer::from_vocab(vocab);
    let mut nums = [0usize; 6];
    for n in &mut nums {
        *n = read_u64(r)? as usize;
    }
    let mut f32buf = [0u8; 4];
    r.read_exact(&mut f32buf)?;
    let dropout = f32::from_le_bytes(f32buf);
    r.read_exact(&mut f32buf)?;
    let final_mlm_loss = f32::from_le_bytes(f32buf);
    let cfg = LmConfig {
        vocab: nums[0],
        d_model: nums[1],
        n_layers: nums[2],
        n_heads: nums[3],
        d_ff: nums[4],
        max_len: nums[5],
        dropout,
    };
    // Rebuild the architecture (registration order must match pretraining),
    // then overwrite the randomly-initialized values from the file.
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let encoder = Encoder::new(&mut store, cfg, &mut rng);
    let mlm = MlmHead::new(&mut store, &encoder, &mut rng);
    read_params(&mut store, r)?;
    Ok(PretrainedLm {
        store,
        encoder,
        mlm,
        tokenizer,
        final_mlm_loss,
    })
}

/// Save a model to a file path.
///
/// ```no_run
/// use em_lm::{LmConfig, PretrainCfg, PretrainedLm};
/// let corpus = vec!["some pretraining text".to_string()];
/// let lm = PretrainedLm::pretrain(&corpus, LmConfig::tiny, &PretrainCfg::default(), 1);
/// em_lm::io::save_model(&lm, "model.bin").unwrap();
/// let loaded = em_lm::io::load_model("model.bin").unwrap();
/// assert_eq!(loaded.encoder.cfg, lm.encoder.cfg);
/// ```
pub fn save_model(lm: &PretrainedLm, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_model(lm, &mut w)?;
    w.flush()
}

/// Load a model from a file path.
pub fn load_model(path: impl AsRef<Path>) -> io::Result<PretrainedLm> {
    let mut r = BufReader::new(File::open(path)?);
    read_model(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::PretrainCfg;
    use em_nn::Tape;

    fn tiny_lm() -> PretrainedLm {
        let corpus: Vec<String> = (0..12)
            .map(|i| format!("token{} appears with token{}", i % 4, (i + 1) % 4))
            .collect();
        PretrainedLm::pretrain(
            &corpus,
            |v| LmConfig {
                vocab: v,
                d_model: 16,
                n_layers: 1,
                n_heads: 2,
                d_ff: 32,
                max_len: 12,
                dropout: 0.1,
            },
            &PretrainCfg {
                max_steps: 20,
                ..Default::default()
            },
            4,
        )
    }

    #[test]
    fn model_roundtrips_bit_exactly() {
        let lm = tiny_lm();
        let mut buf = Vec::new();
        write_model(&lm, &mut buf).unwrap();
        let loaded = read_model(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.tokenizer.vocab(), lm.tokenizer.vocab());
        assert_eq!(loaded.encoder.cfg, lm.encoder.cfg);
        assert_eq!(loaded.final_mlm_loss, lm.final_mlm_loss);

        // Same forward output on the same input.
        let ids = lm.tokenizer.encode("token1 appears");
        let mut rng = StdRng::seed_from_u64(1);
        let run = |m: &PretrainedLm, rng: &mut StdRng| {
            let mut tape = Tape::inference();
            let framed: Vec<usize> = std::iter::once(crate::tokenizer::CLS)
                .chain(ids.iter().copied())
                .collect();
            let h = m.encoder.forward(&mut tape, &m.store, &framed, rng);
            tape.value(h).clone()
        };
        assert_eq!(run(&lm, &mut rng), run(&loaded, &mut rng));
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(read_model(&mut b"garbage".as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let lm = tiny_lm();
        let dir = std::env::temp_dir().join("em_lm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        save_model(&lm, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.encoder.cfg, lm.encoder.cfg);
        std::fs::remove_file(&path).ok();
    }
}
