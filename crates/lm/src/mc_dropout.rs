//! MC-Dropout (Gal & Ghahramani): run several stochastic forward passes
//! with dropout active and read epistemic uncertainty off the spread of the
//! predictions (paper §4.2; also the MC part of MC-EL2N, §4.3).

/// Run `n_passes` stochastic passes. `pass(i)` must return one score per
/// sample, with dropout *enabled* (a training-mode tape).
pub fn run_passes(n_passes: usize, mut pass: impl FnMut(usize) -> Vec<f32>) -> Vec<Vec<f32>> {
    assert!(n_passes > 0, "need at least one stochastic pass");
    let mut hb = em_obs::heartbeat("mc_dropout", n_passes as u64);
    let mut out = Vec::with_capacity(n_passes);
    for i in 0..n_passes {
        // Each pass gets its own child span so the enclosing pseudo_score
        // span's wall time attributes to passes instead of reading as one
        // opaque block of self time.
        let _pass_span = em_obs::span_with(
            em_obs::names::SPAN_PSEUDO_PASS,
            format!("pass {}/{}", i + 1, n_passes),
        );
        let scores = pass(i);
        if let Some(prev) = out.first() {
            let prev: &Vec<f32> = prev;
            assert_eq!(
                prev.len(),
                scores.len(),
                "pass {i} returned a different sample count"
            );
        }
        if let Some(hb) = hb.as_mut() {
            hb.tick(scores.len() as u64, None);
        }
        out.push(scores);
    }
    out
}

/// Per-sample mean and standard deviation across passes. The std is the
/// uncertainty measure of §4.2 ("calculating the standard deviation of a
/// fixed number of stochastic forward passes").
pub fn mean_std(per_pass: &[Vec<f32>]) -> (Vec<f32>, Vec<f32>) {
    assert!(!per_pass.is_empty());
    let n_samples = per_pass[0].len();
    let t = per_pass.len() as f32;
    let mut mean = vec![0.0f32; n_samples];
    for pass in per_pass {
        for (m, &s) in mean.iter_mut().zip(pass) {
            *m += s;
        }
    }
    for m in &mut mean {
        *m /= t;
    }
    let mut std = vec![0.0f32; n_samples];
    if per_pass.len() > 1 {
        for pass in per_pass {
            for ((v, &s), &m) in std.iter_mut().zip(pass).zip(&mean) {
                *v += (s - m) * (s - m);
            }
        }
        for v in &mut std {
            *v = (*v / t).sqrt();
        }
    }
    (mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_passes_have_zero_std() {
        let passes = run_passes(5, |_| vec![0.3, 0.7]);
        let (mean, std) = mean_std(&passes);
        assert_eq!(mean, vec![0.3, 0.7]);
        assert!(std.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn spread_shows_up_in_std() {
        let passes = vec![vec![0.0, 0.5], vec![1.0, 0.5]];
        let (mean, std) = mean_std(&passes);
        assert_eq!(mean, vec![0.5, 0.5]);
        assert!((std[0] - 0.5).abs() < 1e-6);
        assert_eq!(std[1], 0.0);
    }

    #[test]
    fn single_pass_yields_zero_std() {
        let passes = run_passes(1, |_| vec![0.9]);
        let (_, std) = mean_std(&passes);
        assert_eq!(std, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "different sample count")]
    fn inconsistent_passes_rejected() {
        let mut n = 0;
        let _ = run_passes(2, |_| {
            n += 1;
            vec![0.0; n]
        });
    }
}
