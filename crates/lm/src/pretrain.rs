//! Masked-language-model pretraining (the BERT/RoBERTa objective): mask 15%
//! of tokens — 80% to `[MASK]`, 10% to a random token, 10% unchanged — and
//! train the encoder + tied MLM head to recover the originals.

use crate::encoder::Encoder;
use crate::heads::MlmHead;
use crate::tokenizer::{Tokenizer, CLS, MASK, SEP};
use em_nn::{AdamW, ParamStore, Tape};
use em_resilience::failpoint::{self, Action};
use em_resilience::{
    wire, Checkpoint, ResilienceCtx, MAX_BAD_BATCH_RESTORES, MAX_CONSECUTIVE_BAD_BATCHES,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Pretraining hyperparameters.
#[derive(Debug, Clone)]
pub struct PretrainCfg {
    /// Maximum passes over the corpus (often cut short by `max_steps`).
    pub epochs: usize,
    /// Sentences per optimizer step.
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Masking probability for ordinary tokens.
    pub mask_prob: f64,
    /// Hard cap on optimizer steps (keeps single-core runs bounded).
    pub max_steps: usize,
    /// Tokens masked with [`PretrainCfg::boost_prob`] instead of
    /// `mask_prob`. The corpus builder's relational statements embed
    /// relation words ("similar", "different", …) exactly once per
    /// sentence; boosting their mask rate concentrates MLM learning on the
    /// cloze pattern the prompt templates later query — the miniature
    /// equivalent of a web-scale LM seeing such patterns billions of times.
    pub boost_tokens: Vec<String>,
    /// Masking probability for boost tokens.
    pub boost_prob: f64,
    /// RNG seed for masking and shuffling.
    pub seed: u64,
}

impl Default for PretrainCfg {
    fn default() -> Self {
        PretrainCfg {
            epochs: 400,
            batch_size: 16,
            lr: 1e-3,
            mask_prob: 0.15,
            max_steps: 5000,
            boost_tokens: [
                "matched",
                "similar",
                "relevant",
                "mismatched",
                "different",
                "irrelevant",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            boost_prob: 0.9,
            seed: 0x5EED,
        }
    }
}

/// One masked training instance.
struct MaskedSeq {
    ids: Vec<usize>,
    /// (position, original token) pairs to predict.
    targets: Vec<(usize, usize)>,
}

fn mask_sequence(
    ids: &[usize],
    mask_prob: f64,
    boost_ids: &[usize],
    boost_prob: f64,
    content_lo: usize,
    vocab: usize,
    rng: &mut StdRng,
) -> MaskedSeq {
    let mut out = ids.to_vec();
    let mut targets = Vec::new();
    // Focused masking: a sentence containing a boost token (a relational
    // statement) masks *only* its boost tokens — one clean cloze target per
    // statement, so the relation-prediction signal is not drowned in the
    // loss of unpredictable content tokens. Plain sentences get standard
    // BERT-style masking.
    let is_statement = ids.iter().any(|t| boost_ids.contains(t));
    for (i, &tok) in ids.iter().enumerate() {
        if tok < content_lo {
            continue; // never mask special tokens
        }
        let p = if boost_ids.contains(&tok) {
            boost_prob
        } else if is_statement {
            0.0
        } else {
            mask_prob
        };
        if p > 0.0 && rng.gen_bool(p) {
            targets.push((i, tok));
            let roll: f64 = rng.gen();
            if roll < 0.8 {
                out[i] = MASK;
            } else if roll < 0.9 {
                out[i] = rng.gen_range(content_lo..vocab);
            } // else: keep original
        }
    }
    // Guarantee at least one prediction target per sequence.
    if targets.is_empty() {
        if let Some((i, &tok)) = ids.iter().enumerate().find(|(_, &t)| t >= content_lo) {
            targets.push((i, tok));
            out[i] = MASK;
        }
    }
    MaskedSeq { ids: out, targets }
}

/// Everything beyond weights and moments a resumed run needs: loop
/// position, loss accounting, the emitted-event counters that keep
/// manifests comparable, the RNG stream, and the in-flight epoch's
/// shuffle order.
struct PretrainCursor {
    steps: u64,
    opt_steps: u64,
    epoch: u64,
    /// Next chunk index within `epoch` (chunks before it are done).
    next_batch: u64,
    done: bool,
    last_epoch_loss: f32,
    epoch_loss: f32,
    epoch_batches: u64,
    /// Epoch summaries already emitted (and their summed batch counts);
    /// `ckpt_restore` reports these so em-prof can add back skipped work.
    emitted_epochs: u64,
    summary_batches: u64,
    rng: [u64; 4],
    order: Vec<usize>,
}

impl PretrainCursor {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u64(&mut out, self.steps);
        wire::put_u64(&mut out, self.opt_steps);
        wire::put_u64(&mut out, self.epoch);
        wire::put_u64(&mut out, self.next_batch);
        wire::put_u64(&mut out, self.done as u64);
        wire::put_f32(&mut out, self.last_epoch_loss);
        wire::put_f32(&mut out, self.epoch_loss);
        wire::put_u64(&mut out, self.epoch_batches);
        wire::put_u64(&mut out, self.emitted_epochs);
        wire::put_u64(&mut out, self.summary_batches);
        for w in self.rng {
            wire::put_u64(&mut out, w);
        }
        wire::put_u64(&mut out, self.order.len() as u64);
        for &i in &self.order {
            wire::put_u64(&mut out, i as u64);
        }
        out
    }

    fn decode(payload: &[u8]) -> std::io::Result<PretrainCursor> {
        let mut r = wire::Reader::new(payload);
        let steps = r.u64()?;
        let opt_steps = r.u64()?;
        let epoch = r.u64()?;
        let next_batch = r.u64()?;
        let done = r.u64()? != 0;
        let last_epoch_loss = r.f32()?;
        let epoch_loss = r.f32()?;
        let epoch_batches = r.u64()?;
        let emitted_epochs = r.u64()?;
        let summary_batches = r.u64()?;
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = r.u64()?;
        }
        let n = r.u64()? as usize;
        if n * 8 != r.remaining() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "order length mismatch",
            ));
        }
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            order.push(r.u64()? as usize);
        }
        r.finish()?;
        Ok(PretrainCursor {
            steps,
            opt_steps,
            epoch,
            next_batch,
            done,
            last_epoch_loss,
            epoch_loss,
            epoch_batches,
            emitted_epochs,
            summary_batches,
            rng,
            order,
        })
    }
}

fn save_pretrain_checkpoint(res: &ResilienceCtx, store: &ParamStore, cursor: &PretrainCursor) {
    let mut params = Vec::new();
    let mut adam = Vec::new();
    let ok = em_nn::io::write_params(store, &mut params).is_ok()
        && em_nn::io::write_opt_state(store, &mut adam).is_ok();
    if !ok {
        em_obs::warn("failed to serialize pretrain checkpoint sections");
        return;
    }
    let mut ckpt = Checkpoint::new();
    let mut meta = Vec::new();
    wire::put_str(&mut meta, "pretrain");
    ckpt.insert("meta", meta);
    ckpt.insert("params", params);
    ckpt.insert("adam", adam);
    ckpt.insert("cursor", cursor.encode());
    if let Err(e) = res.save(cursor.steps, &ckpt) {
        // A failed checkpoint must not kill training; the previous one
        // still covers us.
        em_obs::warn(format!(
            "checkpoint write failed at step {}: {e}",
            cursor.steps
        ));
    }
}

/// Restore weights + optimizer moments (not the cursor) from a checkpoint.
fn restore_pretrain_weights(
    ckpt: &Checkpoint,
    store: &mut ParamStore,
    opt: &mut AdamW,
) -> Result<u64, String> {
    let cursor = PretrainCursor::decode(ckpt.require("cursor").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let params = ckpt.require("params").map_err(|e| e.to_string())?;
    em_nn::io::read_params(store, &mut &params[..]).map_err(|e| e.to_string())?;
    let adam = ckpt.require("adam").map_err(|e| e.to_string())?;
    em_nn::io::read_opt_state(store, &mut &adam[..]).map_err(|e| e.to_string())?;
    opt.set_steps(cursor.opt_steps);
    Ok(cursor.steps)
}

/// Restore everything, returning the cursor to resume from.
fn restore_pretrain(
    ckpt: &Checkpoint,
    store: &mut ParamStore,
    opt: &mut AdamW,
    n_sequences: usize,
) -> Result<PretrainCursor, String> {
    match ckpt.get("meta").map(|m| wire::Reader::new(m).str()) {
        Some(Ok(kind)) if kind == "pretrain" => {}
        _ => return Err("not a pretrain checkpoint".to_string()),
    }
    let cursor = PretrainCursor::decode(ckpt.require("cursor").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    if !cursor.done
        && (cursor.order.len() != n_sequences || cursor.order.iter().any(|&i| i >= n_sequences))
    {
        return Err(format!(
            "checkpoint order covers {} sequences, corpus has {n_sequences}",
            cursor.order.len()
        ));
    }
    restore_pretrain_weights(ckpt, store, opt)?;
    Ok(cursor)
}

/// Credit the `nn_optimizer_steps` metric with steps a resumed run skips,
/// so the shutdown metric dump matches an uninterrupted run.
fn credit_skipped_steps(steps: u64) {
    if em_obs::enabled() && steps > 0 {
        em_obs::metrics::counter("nn_optimizer_steps", &[("opt", "adamw")]).add(steps);
    }
}

/// Run MLM pretraining over a sentence corpus; returns the mean loss of the
/// final epoch.
pub fn pretrain_mlm(
    store: &mut ParamStore,
    encoder: &Encoder,
    head: &MlmHead,
    tokenizer: &Tokenizer,
    corpus: &[String],
    cfg: &PretrainCfg,
) -> f32 {
    pretrain_mlm_resilient(store, encoder, head, tokenizer, corpus, cfg, None)
}

/// [`pretrain_mlm`] with crash safety: periodic atomic checkpoints every
/// `res.every` optimizer steps, deterministic resume (`res.resume`), and
/// graceful degradation on non-finite batch losses. With `res = None` the
/// loop behaves exactly like the plain entry point apart from the
/// always-on finiteness check.
pub fn pretrain_mlm_resilient(
    store: &mut ParamStore,
    encoder: &Encoder,
    head: &MlmHead,
    tokenizer: &Tokenizer,
    corpus: &[String],
    cfg: &PretrainCfg,
    res: Option<&ResilienceCtx>,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let content_lo = tokenizer.content_range().start;
    let vocab = tokenizer.vocab_size();
    let max_body = encoder.cfg.max_len - 2;
    let boost_ids: Vec<usize> = cfg
        .boost_tokens
        .iter()
        .filter_map(|w| tokenizer.id_of(w))
        .collect();

    // Tokenize once.
    let encoded: Vec<Vec<usize>> = corpus
        .iter()
        .map(|s| {
            let mut ids = vec![CLS];
            let body = tokenizer.encode(s);
            ids.extend_from_slice(&body[..body.len().min(max_body)]);
            ids.push(SEP);
            ids
        })
        .filter(|ids| ids.len() > 2)
        .collect();
    assert!(!encoded.is_empty(), "pretraining corpus is empty");

    let mut opt = AdamW::new(cfg.lr);
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    let mut last_epoch_loss = f32::NAN;
    let mut steps = 0u64;
    let mut start_epoch = 0usize;
    let mut skip_chunks = 0usize;
    let mut carry_loss = 0.0f32;
    let mut carry_batches = 0u64;
    let mut emitted_epochs = 0u64;
    let mut summary_batches = 0u64;
    let mut resumed_mid_epoch = false;

    if let Some(res) = res {
        if res.resume {
            if let Some((_, ckpt)) = res.load_latest() {
                match restore_pretrain(&ckpt, store, &mut opt, encoded.len()) {
                    Ok(cur) => {
                        em_obs::ckpt_restore(
                            cur.steps,
                            cur.steps,
                            cur.emitted_epochs,
                            cur.summary_batches,
                        );
                        credit_skipped_steps(cur.opt_steps);
                        if cur.done {
                            return cur.last_epoch_loss;
                        }
                        steps = cur.steps;
                        start_epoch = cur.epoch as usize;
                        skip_chunks = cur.next_batch as usize;
                        last_epoch_loss = cur.last_epoch_loss;
                        carry_loss = cur.epoch_loss;
                        carry_batches = cur.epoch_batches;
                        emitted_epochs = cur.emitted_epochs;
                        summary_batches = cur.summary_batches;
                        order = cur.order;
                        rng = StdRng::from_state(cur.rng);
                        resumed_mid_epoch = true;
                    }
                    Err(e) => {
                        em_obs::warn(format!("unusable checkpoint, starting fresh: {e}"));
                    }
                }
            }
        }
    }

    let mut consecutive_bad = 0u32;
    let mut restores_used = 0u32;
    let mut hb = em_obs::heartbeat("pretrain", cfg.max_steps as u64);
    'outer: for epoch in start_epoch..cfg.epochs {
        let epoch_watch = em_obs::Stopwatch::if_enabled();
        let mut epoch_loss;
        let mut epoch_batches;
        let first_chunk;
        if resumed_mid_epoch {
            // `order` and the RNG stream came from the checkpoint;
            // re-shuffling here would desync from the uninterrupted run.
            resumed_mid_epoch = false;
            epoch_loss = carry_loss;
            epoch_batches = carry_batches;
            first_chunk = skip_chunks;
        } else {
            order.shuffle(&mut rng);
            epoch_loss = 0.0f32;
            epoch_batches = 0u64;
            first_chunk = 0;
        }
        let n_chunks = order.len().div_ceil(cfg.batch_size);
        for ci in first_chunk..n_chunks {
            if steps >= cfg.max_steps as u64 {
                break 'outer;
            }
            let chunk = &order[ci * cfg.batch_size..((ci + 1) * cfg.batch_size).min(order.len())];
            let inject_nan = matches!(failpoint::trigger_in_batch("batch"), Some(Action::Nan));
            store.zero_grads();
            let mut tape = Tape::new();
            let mut hidden_rows = Vec::new();
            let mut targets = Vec::new();
            for &i in chunk {
                let masked = mask_sequence(
                    &encoded[i],
                    cfg.mask_prob,
                    &boost_ids,
                    cfg.boost_prob,
                    content_lo,
                    vocab,
                    &mut rng,
                );
                let h = encoder.forward(&mut tape, store, &masked.ids, &mut rng);
                for &(pos, orig) in &masked.targets {
                    hidden_rows.push(tape.slice_rows(h, pos, 1));
                    targets.push(orig);
                }
            }
            if targets.is_empty() {
                continue;
            }
            let stacked = tape.concat_rows(&hidden_rows);
            let logits = head.logits(&mut tape, store, encoder, stacked);
            let loss = tape.cross_entropy(logits, &targets);
            let mut loss_value = tape.value(loss).item();
            if inject_nan {
                loss_value = f32::NAN;
            }
            if !loss_value.is_finite() {
                // Skip the poisoned batch: no backward, no optimizer step,
                // no step-counter advance. The RNG has already moved on, so
                // the next batch sees different masks even on a restore.
                consecutive_bad += 1;
                em_obs::recovered_batch("pretrain", steps, consecutive_bad as u64);
                if consecutive_bad >= MAX_CONSECUTIVE_BAD_BATCHES {
                    let restored = res.and_then(|r| {
                        if restores_used >= MAX_BAD_BATCH_RESTORES {
                            return None;
                        }
                        let (_, ckpt) = r.load_latest()?;
                        restore_pretrain_weights(&ckpt, store, &mut opt).ok()
                    });
                    match restored {
                        Some(at) => {
                            restores_used += 1;
                            consecutive_bad = 0;
                            em_obs::warn(format!(
                                "{MAX_CONSECUTIVE_BAD_BATCHES} consecutive non-finite losses; \
                                 restored weights from checkpoint at step {at}"
                            ));
                        }
                        None => {
                            em_obs::warn(format!(
                                "persistent non-finite losses at step {steps}; \
                                 stopping pretraining early"
                            ));
                            break 'outer;
                        }
                    }
                }
                continue;
            }
            consecutive_bad = 0;
            epoch_loss += loss_value;
            epoch_batches += 1;
            tape.backward(loss);
            tape.accumulate_param_grads(store);
            store.clip_grad_norm(1.0);
            opt.step(store);
            em_obs::pretrain_step(steps, loss_value as f64);
            steps += 1;
            if let Some(hb) = hb.as_mut() {
                hb.tick(chunk.len() as u64, Some(loss_value as f64));
            }
            if let Some(res) = res {
                if res.due(steps) {
                    let cursor = PretrainCursor {
                        steps,
                        opt_steps: steps,
                        epoch: epoch as u64,
                        next_batch: ci as u64 + 1,
                        done: false,
                        last_epoch_loss,
                        epoch_loss,
                        epoch_batches,
                        emitted_epochs,
                        summary_batches,
                        rng: rng.state(),
                        order: order.clone(),
                    };
                    save_pretrain_checkpoint(res, store, &cursor);
                }
            }
        }
        if epoch_batches > 0 {
            last_epoch_loss = epoch_loss / epoch_batches as f32;
        }
        em_obs::epoch_summary(
            epoch as u64,
            last_epoch_loss as f64,
            None,
            None,
            encoded.len() as u64,
            epoch_batches,
            epoch_watch.map_or(0, |w| w.micros()),
        );
        emitted_epochs += 1;
        summary_batches += epoch_batches;
    }
    // Attribute this stage's tape ops to the live pretrain span.
    em_nn::tape::flush_op_stats();
    if let Some(res) = res {
        let cursor = PretrainCursor {
            steps,
            opt_steps: steps,
            epoch: cfg.epochs as u64,
            next_batch: 0,
            done: true,
            last_epoch_loss,
            epoch_loss: 0.0,
            epoch_batches: 0,
            emitted_epochs,
            summary_batches,
            rng: rng.state(),
            order: Vec::new(),
        };
        save_pretrain_checkpoint(res, store, &cursor);
    }
    last_epoch_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmConfig;

    #[test]
    fn mask_sequence_respects_specials() {
        let mut rng = StdRng::seed_from_u64(60);
        let ids = vec![CLS, 10, 11, 12, 13, SEP];
        for _ in 0..20 {
            let m = mask_sequence(&ids, 0.9, &[], 0.0, 7, 20, &mut rng);
            assert_eq!(m.ids[0], CLS);
            assert_eq!(m.ids[5], SEP);
            assert!(!m.targets.is_empty());
            for &(pos, orig) in &m.targets {
                assert_eq!(ids[pos], orig);
            }
        }
    }

    #[test]
    fn mask_sequence_guarantees_a_target() {
        let mut rng = StdRng::seed_from_u64(61);
        let ids = vec![CLS, 10, SEP];
        let m = mask_sequence(&ids, 0.0, &[], 0.0, 7, 20, &mut rng);
        assert_eq!(m.targets, vec![(1, 10)]);
        assert_eq!(m.ids[1], MASK);
    }

    #[test]
    fn resume_from_checkpoint_is_bit_exact() {
        use em_resilience::ResilienceCfg;

        let corpus: Vec<String> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    "red apple sweet fruit".to_string()
                } else {
                    "green pepper spicy vegetable".to_string()
                }
            })
            .collect();
        let tokenizer = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 1);
        let lm_cfg = LmConfig {
            vocab: tokenizer.vocab_size(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_len: 8,
            dropout: 0.0,
        };
        let build = |store: &mut ParamStore| {
            let mut rng = StdRng::seed_from_u64(62);
            let encoder = Encoder::new(store, lm_cfg.clone(), &mut rng);
            let head = MlmHead::new(store, &encoder, &mut rng);
            (encoder, head)
        };
        // 30 sequences / batch 4 = 8 chunks per epoch, 24 steps total;
        // checkpoints land at 5, 10, 15, 20 and a done marker at 24.
        let pcfg = PretrainCfg {
            epochs: 3,
            batch_size: 4,
            max_steps: 10_000,
            ..Default::default()
        };

        // Reference run: no checkpoints at all.
        let mut store_a = ParamStore::new();
        let (enc_a, head_a) = build(&mut store_a);
        let loss_a = pretrain_mlm(&mut store_a, &enc_a, &head_a, &tokenizer, &corpus, &pcfg);

        // Checkpointed run to completion.
        let dir = std::env::temp_dir().join(format!("em-lm-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let write_cfg = ResilienceCfg {
            dir: dir.clone(),
            every: 5,
            resume: false,
        };
        let res = ResilienceCtx::new(&write_cfg, "pretrain").expect("open ckpt dir");
        let mut store_b = ParamStore::new();
        let (enc_b, head_b) = build(&mut store_b);
        let loss_b = pretrain_mlm_resilient(
            &mut store_b,
            &enc_b,
            &head_b,
            &tokenizer,
            &corpus,
            &pcfg,
            Some(&res),
        );
        assert_eq!(
            loss_a.to_bits(),
            loss_b.to_bits(),
            "checkpointing changed training"
        );

        let resume_cfg = ResilienceCfg {
            dir: dir.clone(),
            every: 5,
            resume: true,
        };

        // Resume after completion: the done marker short-circuits the loop.
        let res = ResilienceCtx::new(&resume_cfg, "pretrain").expect("reopen ckpt dir");
        let mut store_d = ParamStore::new();
        let (enc_d, head_d) = build(&mut store_d);
        let loss_d = pretrain_mlm_resilient(
            &mut store_d,
            &enc_d,
            &head_d,
            &tokenizer,
            &corpus,
            &pcfg,
            Some(&res),
        );
        assert_eq!(
            loss_b.to_bits(),
            loss_d.to_bits(),
            "post-done resume diverged"
        );

        // Simulate a crash after step 15 by discarding the newer files,
        // then resume into a freshly initialized model.
        for stale in [20u64, 24] {
            std::fs::remove_file(dir.join("pretrain").join(format!("ckpt-{stale:010}.bin")))
                .expect("drop post-crash checkpoint");
        }
        let res = ResilienceCtx::new(&resume_cfg, "pretrain").expect("reopen ckpt dir");
        let mut store_c = ParamStore::new();
        let (enc_c, head_c) = build(&mut store_c);
        let loss_c = pretrain_mlm_resilient(
            &mut store_c,
            &enc_c,
            &head_c,
            &tokenizer,
            &corpus,
            &pcfg,
            Some(&res),
        );

        assert_eq!(
            loss_a.to_bits(),
            loss_c.to_bits(),
            "resumed final loss diverged"
        );
        for id in store_a.ids() {
            assert_eq!(
                store_a.value(id).data(),
                store_c.value(id).data(),
                "weights diverged after resume"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pretraining_reduces_loss() {
        // A tiny corpus with strong regularities: loss must drop.
        let corpus: Vec<String> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    "red apple sweet fruit".to_string()
                } else {
                    "green pepper spicy vegetable".to_string()
                }
            })
            .collect();
        let tokenizer = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 1);
        let mut rng = StdRng::seed_from_u64(62);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: tokenizer.vocab_size(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_len: 8,
            dropout: 0.0,
        };
        let encoder = Encoder::new(&mut store, cfg, &mut rng);
        let head = MlmHead::new(&mut store, &encoder, &mut rng);
        let first = pretrain_mlm(
            &mut store,
            &encoder,
            &head,
            &tokenizer,
            &corpus,
            &PretrainCfg {
                epochs: 1,
                max_steps: 10_000,
                ..Default::default()
            },
        );
        let later = pretrain_mlm(
            &mut store,
            &encoder,
            &head,
            &tokenizer,
            &corpus,
            &PretrainCfg {
                epochs: 8,
                max_steps: 10_000,
                ..Default::default()
            },
        );
        assert!(
            later < first,
            "MLM loss did not improve: first-epoch {first}, after more training {later}"
        );
    }
}
