//! Masked-language-model pretraining (the BERT/RoBERTa objective): mask 15%
//! of tokens — 80% to `[MASK]`, 10% to a random token, 10% unchanged — and
//! train the encoder + tied MLM head to recover the originals.

use crate::encoder::Encoder;
use crate::heads::MlmHead;
use crate::tokenizer::{Tokenizer, CLS, MASK, SEP};
use em_nn::{AdamW, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Pretraining hyperparameters.
#[derive(Debug, Clone)]
pub struct PretrainCfg {
    /// Maximum passes over the corpus (often cut short by `max_steps`).
    pub epochs: usize,
    /// Sentences per optimizer step.
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Masking probability for ordinary tokens.
    pub mask_prob: f64,
    /// Hard cap on optimizer steps (keeps single-core runs bounded).
    pub max_steps: usize,
    /// Tokens masked with [`PretrainCfg::boost_prob`] instead of
    /// `mask_prob`. The corpus builder's relational statements embed
    /// relation words ("similar", "different", …) exactly once per
    /// sentence; boosting their mask rate concentrates MLM learning on the
    /// cloze pattern the prompt templates later query — the miniature
    /// equivalent of a web-scale LM seeing such patterns billions of times.
    pub boost_tokens: Vec<String>,
    /// Masking probability for boost tokens.
    pub boost_prob: f64,
    /// RNG seed for masking and shuffling.
    pub seed: u64,
}

impl Default for PretrainCfg {
    fn default() -> Self {
        PretrainCfg {
            epochs: 400,
            batch_size: 16,
            lr: 1e-3,
            mask_prob: 0.15,
            max_steps: 5000,
            boost_tokens: [
                "matched",
                "similar",
                "relevant",
                "mismatched",
                "different",
                "irrelevant",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            boost_prob: 0.9,
            seed: 0x5EED,
        }
    }
}

/// One masked training instance.
struct MaskedSeq {
    ids: Vec<usize>,
    /// (position, original token) pairs to predict.
    targets: Vec<(usize, usize)>,
}

fn mask_sequence(
    ids: &[usize],
    mask_prob: f64,
    boost_ids: &[usize],
    boost_prob: f64,
    content_lo: usize,
    vocab: usize,
    rng: &mut StdRng,
) -> MaskedSeq {
    let mut out = ids.to_vec();
    let mut targets = Vec::new();
    // Focused masking: a sentence containing a boost token (a relational
    // statement) masks *only* its boost tokens — one clean cloze target per
    // statement, so the relation-prediction signal is not drowned in the
    // loss of unpredictable content tokens. Plain sentences get standard
    // BERT-style masking.
    let is_statement = ids.iter().any(|t| boost_ids.contains(t));
    for (i, &tok) in ids.iter().enumerate() {
        if tok < content_lo {
            continue; // never mask special tokens
        }
        let p = if boost_ids.contains(&tok) {
            boost_prob
        } else if is_statement {
            0.0
        } else {
            mask_prob
        };
        if p > 0.0 && rng.gen_bool(p) {
            targets.push((i, tok));
            let roll: f64 = rng.gen();
            if roll < 0.8 {
                out[i] = MASK;
            } else if roll < 0.9 {
                out[i] = rng.gen_range(content_lo..vocab);
            } // else: keep original
        }
    }
    // Guarantee at least one prediction target per sequence.
    if targets.is_empty() {
        if let Some((i, &tok)) = ids.iter().enumerate().find(|(_, &t)| t >= content_lo) {
            targets.push((i, tok));
            out[i] = MASK;
        }
    }
    MaskedSeq { ids: out, targets }
}

/// Run MLM pretraining over a sentence corpus; returns the mean loss of the
/// final epoch.
pub fn pretrain_mlm(
    store: &mut ParamStore,
    encoder: &Encoder,
    head: &MlmHead,
    tokenizer: &Tokenizer,
    corpus: &[String],
    cfg: &PretrainCfg,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let content_lo = tokenizer.content_range().start;
    let vocab = tokenizer.vocab_size();
    let max_body = encoder.cfg.max_len - 2;
    let boost_ids: Vec<usize> = cfg
        .boost_tokens
        .iter()
        .filter_map(|w| tokenizer.id_of(w))
        .collect();

    // Tokenize once.
    let encoded: Vec<Vec<usize>> = corpus
        .iter()
        .map(|s| {
            let mut ids = vec![CLS];
            let body = tokenizer.encode(s);
            ids.extend_from_slice(&body[..body.len().min(max_body)]);
            ids.push(SEP);
            ids
        })
        .filter(|ids| ids.len() > 2)
        .collect();
    assert!(!encoded.is_empty(), "pretraining corpus is empty");

    let mut opt = AdamW::new(cfg.lr);
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    let mut last_epoch_loss = f32::NAN;
    let mut steps = 0usize;
    'outer: for epoch in 0..cfg.epochs {
        let epoch_watch = em_obs::Stopwatch::if_enabled();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut epoch_batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            if steps >= cfg.max_steps {
                break 'outer;
            }
            store.zero_grads();
            let mut tape = Tape::new();
            let mut hidden_rows = Vec::new();
            let mut targets = Vec::new();
            for &i in chunk {
                let masked = mask_sequence(
                    &encoded[i],
                    cfg.mask_prob,
                    &boost_ids,
                    cfg.boost_prob,
                    content_lo,
                    vocab,
                    &mut rng,
                );
                let h = encoder.forward(&mut tape, store, &masked.ids, &mut rng);
                for &(pos, orig) in &masked.targets {
                    hidden_rows.push(tape.slice_rows(h, pos, 1));
                    targets.push(orig);
                }
            }
            if targets.is_empty() {
                continue;
            }
            let stacked = tape.concat_rows(&hidden_rows);
            let logits = head.logits(&mut tape, store, encoder, stacked);
            let loss = tape.cross_entropy(logits, &targets);
            let loss_value = tape.value(loss).item();
            epoch_loss += loss_value;
            epoch_batches += 1;
            tape.backward(loss);
            tape.accumulate_param_grads(store);
            store.clip_grad_norm(1.0);
            opt.step(store);
            em_obs::pretrain_step(steps as u64, loss_value as f64);
            steps += 1;
        }
        if epoch_batches > 0 {
            last_epoch_loss = epoch_loss / epoch_batches as f32;
        }
        em_obs::epoch_summary(
            epoch as u64,
            last_epoch_loss as f64,
            None,
            None,
            encoded.len() as u64,
            epoch_batches as u64,
            epoch_watch.map_or(0, |w| w.micros()),
        );
    }
    last_epoch_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmConfig;

    #[test]
    fn mask_sequence_respects_specials() {
        let mut rng = StdRng::seed_from_u64(60);
        let ids = vec![CLS, 10, 11, 12, 13, SEP];
        for _ in 0..20 {
            let m = mask_sequence(&ids, 0.9, &[], 0.0, 7, 20, &mut rng);
            assert_eq!(m.ids[0], CLS);
            assert_eq!(m.ids[5], SEP);
            assert!(!m.targets.is_empty());
            for &(pos, orig) in &m.targets {
                assert_eq!(ids[pos], orig);
            }
        }
    }

    #[test]
    fn mask_sequence_guarantees_a_target() {
        let mut rng = StdRng::seed_from_u64(61);
        let ids = vec![CLS, 10, SEP];
        let m = mask_sequence(&ids, 0.0, &[], 0.0, 7, 20, &mut rng);
        assert_eq!(m.targets, vec![(1, 10)]);
        assert_eq!(m.ids[1], MASK);
    }

    #[test]
    fn pretraining_reduces_loss() {
        // A tiny corpus with strong regularities: loss must drop.
        let corpus: Vec<String> = (0..30)
            .map(|i| {
                if i % 2 == 0 {
                    "red apple sweet fruit".to_string()
                } else {
                    "green pepper spicy vegetable".to_string()
                }
            })
            .collect();
        let tokenizer = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 1);
        let mut rng = StdRng::seed_from_u64(62);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: tokenizer.vocab_size(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_len: 8,
            dropout: 0.0,
        };
        let encoder = Encoder::new(&mut store, cfg, &mut rng);
        let head = MlmHead::new(&mut store, &encoder, &mut rng);
        let first = pretrain_mlm(
            &mut store,
            &encoder,
            &head,
            &tokenizer,
            &corpus,
            &PretrainCfg {
                epochs: 1,
                max_steps: 10_000,
                ..Default::default()
            },
        );
        let later = pretrain_mlm(
            &mut store,
            &encoder,
            &head,
            &tokenizer,
            &corpus,
            &PretrainCfg {
                epochs: 8,
                max_steps: 10_000,
                ..Default::default()
            },
        );
        assert!(
            later < first,
            "MLM loss did not improve: first-epoch {first}, after more training {later}"
        );
    }
}
