//! The bundled "pretrained language model" artifact: tokenizer + encoder +
//! tied MLM head + parameter store. This plays the role RoBERTa-base plays
//! in the paper — every downstream method (PromptEM and the LM baselines)
//! starts from a clone of the same pretrained backbone.

use crate::config::LmConfig;
use crate::encoder::Encoder;
use crate::heads::MlmHead;
use crate::pretrain::{pretrain_mlm_resilient, PretrainCfg};
use crate::tokenizer::Tokenizer;
use em_nn::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A pretrained mini language model. Cloning snapshots the weights, so each
/// downstream run fine-tunes (or prompt-tunes) its own copy.
#[derive(Clone)]
pub struct PretrainedLm {
    /// All model parameters.
    pub store: ParamStore,
    /// The transformer encoder.
    pub encoder: Encoder,
    /// The tied masked-LM head.
    pub mlm: MlmHead,
    /// The fitted tokenizer.
    pub tokenizer: Tokenizer,
    /// Final-epoch MLM loss reached during pretraining (for diagnostics).
    pub final_mlm_loss: f32,
}

impl PretrainedLm {
    /// Fit a tokenizer on `corpus`, build the model from `cfg_for(vocab)`,
    /// and MLM-pretrain it.
    pub fn pretrain(
        corpus: &[String],
        cfg_for: impl FnOnce(usize) -> LmConfig,
        pretrain_cfg: &PretrainCfg,
        seed: u64,
    ) -> Self {
        Self::pretrain_resilient(corpus, cfg_for, pretrain_cfg, seed, None)
    }

    /// [`PretrainedLm::pretrain`] with crash safety: when `res` is given,
    /// checkpoints periodically and (if `res.resume`) continues a prior
    /// interrupted run deterministically.
    pub fn pretrain_resilient(
        corpus: &[String],
        cfg_for: impl FnOnce(usize) -> LmConfig,
        pretrain_cfg: &PretrainCfg,
        seed: u64,
        res: Option<&em_resilience::ResilienceCtx>,
    ) -> Self {
        let tokenizer = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 2);
        let cfg = cfg_for(tokenizer.vocab_size());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = Encoder::new(&mut store, cfg, &mut rng);
        let mlm = MlmHead::new(&mut store, &encoder, &mut rng);
        let final_mlm_loss = pretrain_mlm_resilient(
            &mut store,
            &encoder,
            &mlm,
            &tokenizer,
            corpus,
            pretrain_cfg,
            res,
        );
        PretrainedLm {
            store,
            encoder,
            mlm,
            tokenizer,
            final_mlm_loss,
        }
    }

    /// Build an *untrained* model (random weights) — the "w/o pretraining"
    /// control and a cheap test fixture.
    pub fn random(corpus: &[String], cfg_for: impl FnOnce(usize) -> LmConfig, seed: u64) -> Self {
        let tokenizer = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 2);
        let cfg = cfg_for(tokenizer.vocab_size());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = Encoder::new(&mut store, cfg, &mut rng);
        let mlm = MlmHead::new(&mut store, &encoder, &mut rng);
        PretrainedLm {
            store,
            encoder,
            mlm,
            tokenizer,
            final_mlm_loss: f32::NAN,
        }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.encoder.cfg.d_model
    }

    /// Maximum input length.
    pub fn max_len(&self) -> usize {
        self.encoder.cfg.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus() -> Vec<String> {
        (0..20)
            .map(|i| {
                format!(
                    "[COL] name [VAL] cafe {} they are matched similar relevant",
                    i % 5
                )
            })
            .collect()
    }

    #[test]
    fn pretrain_produces_finite_loss() {
        let lm = PretrainedLm::pretrain(
            &toy_corpus(),
            |v| LmConfig {
                vocab: v,
                d_model: 16,
                n_layers: 1,
                n_heads: 2,
                d_ff: 32,
                max_len: 16,
                dropout: 0.1,
            },
            &PretrainCfg {
                epochs: 2,
                max_steps: 100,
                ..Default::default()
            },
            1,
        );
        assert!(lm.final_mlm_loss.is_finite());
        assert!(lm.tokenizer.id_of("matched").is_some());
    }

    #[test]
    fn clone_is_independent() {
        let lm = PretrainedLm::random(&toy_corpus(), LmConfig::tiny, 2);
        let mut copy = lm.clone();
        let id = lm.encoder.tok_emb.table;
        copy.store.value_mut(id).data_mut()[0] += 100.0;
        assert_ne!(lm.store.value(id).data()[0], copy.store.value(id).data()[0]);
    }
}
