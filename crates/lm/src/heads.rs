//! Output heads: the tied masked-language-model head (used by pretraining
//! *and* prompt-tuning — that shared objective form is the whole point of
//! the paper, §2.4/§3) and the randomly-initialized classification head
//! used by vanilla fine-tuning (§2.3).

use crate::encoder::Encoder;
use em_nn::layers::{LayerNorm, Linear};
use em_nn::{Matrix, ParamId, ParamStore, TapeExec, Var};
use rand::Rng;

/// MLM head: `logits = LayerNorm(gelu(h W)) E^T + b` with the decoder
/// weights tied to the token-embedding table.
#[derive(Clone)]
pub struct MlmHead {
    /// Hidden transform before the tied decoder.
    pub transform: Linear,
    /// LayerNorm after the transform.
    pub ln: LayerNorm,
    /// Per-vocabulary-entry output bias.
    pub bias: ParamId,
}

impl MlmHead {
    /// Build the head; decoder weights are tied to `encoder`'s embeddings.
    pub fn new(store: &mut ParamStore, encoder: &Encoder, rng: &mut impl Rng) -> Self {
        let d = encoder.cfg.d_model;
        MlmHead {
            transform: Linear::new(store, "mlm.transform", d, d, rng),
            ln: LayerNorm::new(store, "mlm.ln", d),
            bias: store.register("mlm.bias", Matrix::zeros(1, encoder.cfg.vocab)),
        }
    }

    /// Vocabulary logits for a matrix of hidden rows `(n, d)` → `(n, V)`.
    pub fn logits(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        encoder: &Encoder,
        hidden: Var,
    ) -> Var {
        let h = self.transform.forward(tape, store, hidden);
        let h = tape.gelu(h);
        let h = self.ln.forward(tape, store, h);
        let table = encoder.tok_emb.table_var(tape, store); // (V, d)
        let table_t = tape.transpose(table); // (d, V)
        let scores = tape.matmul(h, table_t); // (n, V)
        let bias = tape.param(store, self.bias);
        tape.add_row_broadcast(scores, bias)
    }
}

/// Sequence classification head over the `[CLS]` embedding (§2.3): a fresh
/// randomly-initialized projection — exactly the objective-form gap
/// prompt-tuning avoids.
#[derive(Clone)]
pub struct ClsHead {
    /// The classification projection.
    pub proj: Linear,
}

impl ClsHead {
    /// A fresh randomly-initialized classification head.
    pub fn new(
        store: &mut ParamStore,
        encoder: &Encoder,
        classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        ClsHead {
            proj: Linear::new(store, "cls_head", encoder.cfg.d_model, classes, rng),
        }
    }

    /// Class logits for a matrix of pooled rows `(n, d)` → `(n, classes)`.
    pub fn logits(&self, tape: &mut impl TapeExec, store: &ParamStore, pooled: Var) -> Var {
        self.proj.forward(tape, store, pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmConfig;
    use em_nn::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, Encoder, MlmHead, StdRng) {
        let mut rng = StdRng::seed_from_u64(50);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: 40,
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_len: 10,
            dropout: 0.0,
        };
        let enc = Encoder::new(&mut store, cfg, &mut rng);
        let head = MlmHead::new(&mut store, &enc, &mut rng);
        (store, enc, head, rng)
    }

    #[test]
    fn mlm_logits_cover_vocab() {
        let (store, enc, head, mut rng) = setup();
        let mut tape = Tape::inference();
        let h = enc.forward(&mut tape, &store, &[2, 8, 9, 3], &mut rng);
        let logits = head.logits(&mut tape, &store, &enc, h);
        assert_eq!(tape.value(logits).shape(), (4, 40));
    }

    #[test]
    fn tied_decoder_sends_gradient_to_embeddings() {
        let (mut store, enc, head, mut rng) = setup();
        let mut tape = Tape::new();
        let h = enc.forward(&mut tape, &store, &[2, 8, 9, 3], &mut rng);
        let logits = head.logits(&mut tape, &store, &enc, h);
        let loss = tape.cross_entropy(logits, &[7, 8, 9, 10]);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        // The embedding table receives gradient both from the input side and
        // from the tied decoder.
        assert!(store.grad(enc.tok_emb.table).frobenius_norm() > 0.0);
        assert!(store.grad(head.bias).frobenius_norm() > 0.0);
    }

    #[test]
    fn cls_head_shape() {
        let (mut store, enc, _, mut rng) = setup();
        let cls = ClsHead::new(&mut store, &enc, 2, &mut rng);
        let mut tape = Tape::inference();
        let h = enc.forward(&mut tape, &store, &[2, 8, 9, 3], &mut rng);
        let pooled = tape.slice_rows(h, 0, 1);
        let logits = cls.logits(&mut tape, &store, pooled);
        assert_eq!(tape.value(logits).shape(), (1, 2));
    }
}
