//! # em-lm
//!
//! The language-model substrate of the PromptEM reproduction — the role
//! RoBERTa-base plays in the paper, built from scratch:
//!
//! * [`tokenizer`] — word-level vocabulary with character fallback and the
//!   `[CLS]/[SEP]/[MASK]/[COL]/[VAL]` specials;
//! * [`encoder`] — a BERT-style transformer encoder (post-LN);
//! * [`heads`] — the tied MLM head (shared by pretraining and
//!   prompt-tuning) and the fresh classification head fine-tuning bolts on;
//! * [`pretrain`] — masked-language-model pretraining;
//! * [`prompt`] — GEM-specific templates (hard + continuous/P-tuning),
//!   label words and the verbalizer of Eq. 1;
//! * [`mc_dropout`] — stochastic-forward-pass utilities for uncertainty;
//! * [`model`] — the [`model::PretrainedLm`] bundle every downstream method
//!   clones.

#![warn(missing_docs)]

pub mod config;
pub mod encoder;
pub mod heads;
pub mod io;
pub mod mc_dropout;
pub mod model;
pub mod pretrain;
pub mod prompt;
pub mod tokenizer;

pub use config::LmConfig;
pub use encoder::Encoder;
pub use heads::{ClsHead, MlmHead};
pub use model::PretrainedLm;
pub use pretrain::PretrainCfg;
pub use prompt::{LabelWords, PromptMode, PromptTemplate, TemplateId, Verbalizer};
pub use tokenizer::Tokenizer;
