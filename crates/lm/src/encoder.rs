//! The transformer encoder backbone (BERT/RoBERTa-style, post-LayerNorm)
//! with an entry point that accepts *pre-built* embedding rows so the
//! P-tuning prompt encoder can splice trainable prompt embeddings into the
//! input (paper §3.1, "Continuous templates").

use crate::config::LmConfig;
use crate::tokenizer::PAD;
use em_nn::layers::{Embedding, FeedForward, LayerNorm, MultiHeadSelfAttention};
use em_nn::tape::burn_draws;
use em_nn::{Matrix, ParamStore, TapeExec, Var};
use rand::Rng;

/// One transformer block: post-LN self-attention + feed-forward.
#[derive(Clone)]
pub struct EncoderLayer {
    /// Self-attention sub-block.
    pub attn: MultiHeadSelfAttention,
    /// Post-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Feed-forward sub-block.
    pub ffn: FeedForward,
    /// Post-FFN LayerNorm.
    pub ln2: LayerNorm,
    dropout: f32,
}

impl EncoderLayer {
    fn new(store: &mut ParamStore, name: &str, cfg: &LmConfig, rng: &mut impl Rng) -> Self {
        let attn = MultiHeadSelfAttention::new(
            store,
            &format!("{name}.attn"),
            cfg.d_model,
            cfg.n_heads,
            cfg.dropout,
            rng,
        );
        // Token-identity inductive bias: entity matching is, at its core,
        // noisy-overlap detection; see seed_identity_head.
        attn.seed_identity_head(store);
        EncoderLayer {
            attn,
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), cfg.d_model),
            ffn: FeedForward::new(
                store,
                &format!("{name}.ffn"),
                cfg.d_model,
                cfg.d_ff,
                cfg.dropout,
                rng,
            ),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), cfg.d_model),
            dropout: cfg.dropout,
        }
    }

    fn forward(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        x: Var,
        mask: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> Var {
        let a = self.attn.forward(tape, store, x, mask, rng);
        let a = tape.dropout(a, self.dropout, rng);
        let x = tape.add(x, a);
        let x = self.ln1.forward(tape, store, x);
        let f = self.ffn.forward(tape, store, x, rng);
        let f = tape.dropout(f, self.dropout, rng);
        let x = tape.add(x, f);
        self.ln2.forward(tape, store, x)
    }

    /// [`EncoderLayer::forward`] for one output row: attention keys and
    /// values span the full sequence, everything downstream (residuals,
    /// LayerNorms, the FFN) runs on row `row` alone. Dropout draws for
    /// the skipped rows of each mask — post-attention, FFN-internal
    /// (which needs `d_ff` before the FFN call consumes its row), and
    /// post-FFN — are burned at their stream positions so the RNG exits
    /// exactly as after the full forward. Bit-exactness with the full
    /// forward's row is pinned in
    /// `tests::single_row_forward_matches_the_full_forward_bitwise`.
    #[allow(clippy::too_many_arguments)]
    fn forward_row(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        x: Var,
        row: usize,
        mask_row: Option<&Matrix>,
        d_ff: usize,
        rng: &mut impl Rng,
    ) -> Var {
        let (seq, d) = tape.value(x).shape();
        let burn = tape.is_train() && self.dropout > 0.0;
        let a = self.attn.forward_row(tape, store, x, row, mask_row, rng);
        if burn {
            burn_draws(rng, row * d);
        }
        let a = tape.dropout(a, self.dropout, rng);
        if burn {
            burn_draws(rng, (seq - 1 - row) * d);
        }
        let xr = tape.slice_rows(x, row, 1);
        let x = tape.add(xr, a);
        let x = self.ln1.forward(tape, store, x);
        if burn {
            burn_draws(rng, row * d_ff);
        }
        let f = self.ffn.forward(tape, store, x, rng);
        if burn {
            burn_draws(rng, (seq - 1 - row) * d_ff + row * d);
        }
        let f = tape.dropout(f, self.dropout, rng);
        if burn {
            burn_draws(rng, (seq - 1 - row) * d);
        }
        let x = tape.add(x, f);
        self.ln2.forward(tape, store, x)
    }
}

/// The full encoder: token + position embeddings, an embedding LayerNorm,
/// and a stack of [`EncoderLayer`]s.
#[derive(Clone)]
pub struct Encoder {
    /// Architecture hyperparameters.
    pub cfg: LmConfig,
    /// Token-embedding table (tied with the MLM decoder).
    pub tok_emb: Embedding,
    /// Learned positional embeddings.
    pub pos_emb: Embedding,
    /// Embedding LayerNorm.
    pub emb_ln: LayerNorm,
    /// The transformer layer stack.
    pub layers: Vec<EncoderLayer>,
}

impl Encoder {
    /// Build a randomly-initialized encoder (identity heads seeded).
    pub fn new(store: &mut ParamStore, cfg: LmConfig, rng: &mut impl Rng) -> Self {
        cfg.validate();
        let tok_emb = Embedding::new(store, "tok_emb", cfg.vocab, cfg.d_model, rng);
        let pos_emb = Embedding::new(store, "pos_emb", cfg.max_len, cfg.d_model, rng);
        let emb_ln = LayerNorm::new(store, "emb_ln", cfg.d_model);
        let layers = (0..cfg.n_layers)
            .map(|i| EncoderLayer::new(store, &format!("layer{i}"), &cfg, rng))
            .collect();
        Encoder {
            cfg,
            tok_emb,
            pos_emb,
            emb_ln,
            layers,
        }
    }

    /// Truncate ids to the model's maximum length.
    pub fn clip<'a>(&self, ids: &'a [usize]) -> &'a [usize] {
        &ids[..ids.len().min(self.cfg.max_len)]
    }

    /// Embed token ids (token + position embeddings, LayerNorm, dropout).
    pub fn embed(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        ids: &[usize],
        rng: &mut impl Rng,
    ) -> Var {
        let ids = self.clip(ids);
        let tok = self.tok_emb.forward(tape, store, ids);
        let positions: Vec<usize> = (0..ids.len()).collect();
        let pos = self.pos_emb.forward(tape, store, &positions);
        let x = tape.add(tok, pos);
        let x = self.emb_ln.forward(tape, store, x);
        tape.dropout(x, self.cfg.dropout, rng)
    }

    /// Run the layer stack over already-embedded rows. `valid_len` marks the
    /// prefix of non-padding positions (attention is masked past it).
    pub fn forward_embedded(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        mut x: Var,
        valid_len: usize,
        rng: &mut impl Rng,
    ) -> Var {
        let seq = tape.value(x).rows();
        let mask = if valid_len < seq {
            Some(MultiHeadSelfAttention::padding_mask(seq, valid_len))
        } else {
            None
        };
        for layer in &self.layers {
            x = layer.forward(tape, store, x, mask.as_ref(), rng);
        }
        x
    }

    /// [`Encoder::forward_embedded`] when only one output row is consumed
    /// (the `[MASK]` position during scoring). Every layer but the last
    /// runs in full — the final layer's attention still reads all of its
    /// key/value rows — and the last layer computes just `row` via
    /// [`EncoderLayer::forward_row`]. Returns a `(1, d_model)` hidden
    /// state bit-identical to row `row` of the full forward, with the RNG
    /// left in the identical state (skipped dropout draws are burned), so
    /// [`Encoder::dropout_draws`] holds for this path too.
    pub fn forward_embedded_row(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        mut x: Var,
        valid_len: usize,
        row: usize,
        rng: &mut impl Rng,
    ) -> Var {
        let seq = tape.value(x).rows();
        let mask = if valid_len < seq {
            Some(MultiHeadSelfAttention::padding_mask(seq, valid_len))
        } else {
            None
        };
        let Some((last, full)) = self.layers.split_last() else {
            return tape.slice_rows(x, row, 1);
        };
        for layer in full {
            x = layer.forward(tape, store, x, mask.as_ref(), rng);
        }
        let mask_row = mask
            .as_ref()
            .map(|_| MultiHeadSelfAttention::padding_mask_row(seq, valid_len));
        last.forward_row(tape, store, x, row, mask_row.as_ref(), self.cfg.d_ff, rng)
    }

    /// How many RNG values one train-mode forward over `seq` rows draws for
    /// its dropout masks (zero when `cfg.dropout == 0`, since the dropout
    /// kernel early-returns before touching the RNG). Per forward: one
    /// embedding-dropout mask (`seq × d_model`), then per layer one
    /// attention-weight mask per head (`seq × seq`), the post-attention and
    /// post-FFN output masks (`seq × d_model` each) and the FFN-internal
    /// mask (`seq × d_ff`). The sharded pseudo-label scorer uses this to
    /// fast-forward worker RNG streams analytically instead of replaying
    /// forwards; the formula is pinned against a real counted forward in
    /// `tests::dropout_draws_matches_a_counted_forward`.
    pub fn dropout_draws(&self, seq: u64) -> u64 {
        if self.cfg.dropout <= 0.0 {
            return 0;
        }
        let d = self.cfg.d_model as u64;
        let heads = self.cfg.n_heads as u64;
        let ff = self.cfg.d_ff as u64;
        let layers = self.cfg.n_layers as u64;
        seq * d + layers * (heads * seq * seq + 2 * seq * d + seq * ff)
    }

    /// Embed and encode a token id sequence; the standard entry point.
    pub fn forward(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        ids: &[usize],
        rng: &mut impl Rng,
    ) -> Var {
        let timed = em_obs::Stopwatch::if_enabled();
        let ids = self.clip(ids);
        let valid = ids.iter().take_while(|&&t| t != PAD).count();
        let x = self.embed(tape, store, ids, rng);
        let out = self.forward_embedded(tape, store, x, valid, rng);
        if let Some(sw) = timed {
            use std::sync::OnceLock;
            static FORWARD_SECS: OnceLock<em_obs::metrics::Histogram> = OnceLock::new();
            FORWARD_SECS
                .get_or_init(|| em_obs::metrics::histogram("lm_encoder_forward_secs", &[]))
                .record(sw.secs());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_nn::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_encoder() -> (ParamStore, Encoder, StdRng) {
        let mut rng = StdRng::seed_from_u64(40);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: 50,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 32,
            max_len: 12,
            dropout: 0.0,
        };
        let enc = Encoder::new(&mut store, cfg, &mut rng);
        (store, enc, rng)
    }

    #[test]
    fn forward_shape() {
        let (store, enc, mut rng) = small_encoder();
        let mut tape = Tape::inference();
        let y = enc.forward(&mut tape, &store, &[2, 10, 11, 3], &mut rng);
        assert_eq!(tape.value(y).shape(), (4, 16));
    }

    #[test]
    fn long_input_is_clipped() {
        let (store, enc, mut rng) = small_encoder();
        let ids: Vec<usize> = (0..40).map(|i| 7 + i % 20).collect();
        let mut tape = Tape::inference();
        let y = enc.forward(&mut tape, &store, &ids, &mut rng);
        assert_eq!(tape.value(y).rows(), 12);
    }

    #[test]
    fn inference_is_deterministic() {
        let (store, enc, mut rng) = small_encoder();
        let run = |rng: &mut StdRng| {
            let mut tape = Tape::inference();
            let y = enc.forward(&mut tape, &store, &[2, 9, 8, 3], rng);
            tape.value(y).clone()
        };
        assert_eq!(run(&mut rng), run(&mut rng));
    }

    #[test]
    fn padding_does_not_change_valid_positions() {
        let (store, enc, mut rng) = small_encoder();
        let run = |ids: &[usize], rng: &mut StdRng| {
            let mut tape = Tape::inference();
            let y = enc.forward(&mut tape, &store, ids, rng);
            tape.value(y).slice_rows(0, 4)
        };
        let a = run(&[2, 9, 8, 3], &mut rng);
        let b = run(&[2, 9, 8, 3, PAD, PAD, PAD], &mut rng);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "padding leaked: {x} vs {y}");
        }
    }

    /// Counts `next_u64` calls; dropout's `gen::<f32>()` makes exactly one.
    struct CountingRng<'a> {
        inner: &'a mut StdRng,
        draws: u64,
    }

    impl rand::RngCore for CountingRng<'_> {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn dropout_draws_matches_a_counted_forward() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: 50,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 32,
            max_len: 12,
            dropout: 0.1,
        };
        let enc = Encoder::new(&mut store, cfg, &mut rng);
        for ids in [&[2usize, 10, 11, 3][..], &[2, 9, 8, 7, 6, 5, 4, 3][..]] {
            let mut counter = CountingRng {
                inner: &mut rng,
                draws: 0,
            };
            let mut tape = Tape::new();
            let _ = enc.forward(&mut tape, &store, ids, &mut counter);
            assert_eq!(
                counter.draws,
                enc.dropout_draws(ids.len() as u64),
                "seq={}",
                ids.len()
            );
        }
        // Inference (or a zero-dropout config) must not touch the RNG.
        let mut counter = CountingRng {
            inner: &mut rng,
            draws: 0,
        };
        let mut tape = Tape::inference();
        let _ = enc.forward(&mut tape, &store, &[2, 10, 11, 3], &mut counter);
        assert_eq!(counter.draws, 0);
        let (store0, enc0, mut rng0) = small_encoder();
        let mut counter = CountingRng {
            inner: &mut rng0,
            draws: 0,
        };
        let mut tape = Tape::new();
        let _ = enc0.forward(&mut tape, &store0, &[2, 10, 11, 3], &mut counter);
        assert_eq!(counter.draws, 0);
        assert_eq!(enc0.dropout_draws(4), 0);
    }

    #[test]
    fn single_row_forward_matches_the_full_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: 50,
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 32,
            max_len: 12,
            dropout: 0.1,
        };
        let enc = Encoder::new(&mut store, cfg, &mut rng);
        let ids = [2usize, 9, 8, 7, 6, 3];
        // Train-mode (dropout draws burned around the live row), a padded
        // sequence (masked row path), and inference — each must agree with
        // the sliced full forward to the bit, including the RNG exit state.
        for (train, valid) in [(true, ids.len()), (true, 4), (false, ids.len())] {
            for row in [0, 3, ids.len() - 1] {
                let fresh = || StdRng::seed_from_u64(4242);
                let (mut ra, mut rb) = (fresh(), fresh());
                let mut ta = if train {
                    Tape::new()
                } else {
                    Tape::inference()
                };
                let xa = enc.embed(&mut ta, &store, &ids, &mut ra);
                let h = enc.forward_embedded(&mut ta, &store, xa, valid, &mut ra);
                let hr = ta.slice_rows(h, row, 1);
                let mut tb = if train {
                    Tape::new()
                } else {
                    Tape::inference()
                };
                let xb = enc.embed(&mut tb, &store, &ids, &mut rb);
                let hb = enc.forward_embedded_row(&mut tb, &store, xb, valid, row, &mut rb);
                assert_eq!(
                    ta.value(hr).data(),
                    tb.value(hb).data(),
                    "train={train} valid={valid} row={row}: values diverged"
                );
                assert_eq!(
                    ra.state(),
                    rb.state(),
                    "train={train} valid={valid} row={row}: RNG streams diverged"
                );
            }
        }
    }

    #[test]
    fn gradients_reach_embeddings() {
        let (mut store, enc, mut rng) = small_encoder();
        let mut tape = Tape::new();
        let y = enc.forward(&mut tape, &store, &[2, 9, 8, 3], &mut rng);
        let loss = tape.mean_all(y);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        assert!(store.grad(enc.tok_emb.table).frobenius_norm() > 0.0);
        assert!(store.grad(enc.pos_emb.table).frobenius_norm() > 0.0);
    }
}
