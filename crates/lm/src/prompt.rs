//! GEM-specific prompt-tuning (paper §3): hard-encoding templates T1/T2,
//! continuous (P-tuning) templates whose prompt tokens are trainable
//! embeddings passed through a BiLSTM, and the label-word verbalizer that
//! turns masked-LM scores into class probabilities (Eq. 1).

use crate::encoder::Encoder;
use crate::tokenizer::{Tokenizer, CLS, MASK, SEP};
use em_nn::layers::{BiLstm, Linear};
use em_nn::{init, Matrix, NoGradTape, ParamId, ParamStore, TapeExec, Var};
use rand::Rng;

/// The two templates of §3.1:
/// * `T1(x)` = `serialize(e) serialize(e') They are [MASK]`
/// * `T2(x)` = `serialize(e) is [MASK] to serialize(e')`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateId {
    /// `serialize(e) serialize(e') They are [MASK]`.
    T1,
    /// `serialize(e) is [MASK] to serialize(e')`.
    T2,
}

/// Hard templates spell the prompt with real vocabulary tokens; continuous
/// templates learn prompt embeddings directly (P-tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptMode {
    /// Prompt words are real vocabulary tokens.
    Hard,
    /// Prompt tokens are trainable embeddings (P-tuning).
    Continuous,
}

/// Label word sets (§3.1): the designed set captures the *general binary
/// relationship* of GEM; the simple set is the ablation of Figure 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelWords {
    /// Words voting for the "match" class.
    pub yes: Vec<String>,
    /// Words voting for the "mismatch" class.
    pub no: Vec<String>,
}

impl LabelWords {
    /// V_yes = {matched, similar, relevant}, V_no = {mismatched, different,
    /// irrelevant}.
    pub fn designed() -> Self {
        LabelWords {
            yes: vec!["matched".into(), "similar".into(), "relevant".into()],
            no: vec!["mismatched".into(), "different".into(), "irrelevant".into()],
        }
    }

    /// The simple ablation: {matched} / {mismatched}.
    pub fn simple() -> Self {
        LabelWords {
            yes: vec!["matched".into()],
            no: vec!["mismatched".into()],
        }
    }
}

/// Resolved label words: vocabulary ids plus the constant projection matrix
/// that averages word probabilities into class probabilities.
#[derive(Debug, Clone)]
pub struct Verbalizer {
    /// Vocabulary ids of the resolved "yes" words.
    pub yes_ids: Vec<usize>,
    /// Vocabulary ids of the resolved "no" words.
    pub no_ids: Vec<usize>,
    vocab: usize,
}

impl Verbalizer {
    /// Resolve label words against a tokenizer. Words missing from the
    /// vocabulary are dropped; panics if a class loses all its words (the
    /// pretraining corpus must contain the label words).
    pub fn new(tokenizer: &Tokenizer, words: &LabelWords) -> Self {
        let resolve = |ws: &[String]| -> Vec<usize> {
            ws.iter().filter_map(|w| tokenizer.id_of(w)).collect()
        };
        let yes_ids = resolve(&words.yes);
        let no_ids = resolve(&words.no);
        assert!(
            !yes_ids.is_empty(),
            "no 'yes' label word is in the vocabulary"
        );
        assert!(
            !no_ids.is_empty(),
            "no 'no' label word is in the vocabulary"
        );
        Verbalizer {
            yes_ids,
            no_ids,
            vocab: tokenizer.vocab_size(),
        }
    }

    /// Eq. 1: class probability = mean probability of the class's label
    /// words. Input `logits` is `(n, V)`; output is `(n, 2)` with column 0 =
    /// P(yes|x), column 1 = P(no|x).
    pub fn class_probs(&self, tape: &mut impl TapeExec, logits: Var) -> Var {
        let probs = tape.softmax_rows(logits);
        let mut m = Matrix::zeros(self.vocab, 2);
        for &w in &self.yes_ids {
            m.set(w, 0, 1.0 / self.yes_ids.len() as f32);
        }
        for &w in &self.no_ids {
            m.set(w, 1, 1.0 / self.no_ids.len() as f32);
        }
        let mv = tape.constant(m);
        tape.matmul(probs, mv)
    }
}

/// The P-tuning continuous prompt encoder: trainable prompt-token
/// embeddings re-parameterized through a BiLSTM + projection so prompt
/// tokens interact (§3.1, following Liu et al.). The encoder is residual —
/// `rows = table + proj(BiLSTM(table))` with a small-initialized projection
/// — so that when `table` is seeded from real word embeddings the model
/// starts at the hard template's behavior and learns deviations from there.
#[derive(Clone)]
pub struct PromptEncoder {
    /// Trainable prompt-token embeddings `(n_tokens, d_model)`.
    pub table: ParamId,
    /// BiLSTM re-parameterization across prompt tokens.
    pub lstm: BiLstm,
    /// Projection after the BiLSTM (small-initialized residual branch).
    pub proj: Linear,
    /// Number of prompt tokens.
    pub n_tokens: usize,
}

impl PromptEncoder {
    /// Build the encoder, optionally seeding the table from `init_rows`.
    pub fn new(
        store: &mut ParamStore,
        d_model: usize,
        n_tokens: usize,
        init_rows: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            d_model.is_multiple_of(2),
            "d_model must be even for the BiLSTM prompt encoder"
        );
        let table_init = match init_rows {
            Some(m) => {
                assert_eq!(m.shape(), (n_tokens, d_model), "prompt init shape");
                m.clone()
            }
            None => init::normal(n_tokens, d_model, 0.1, rng),
        };
        let table = store.register("prompt.table", table_init);
        let lstm = BiLstm::new(store, "prompt.lstm", d_model, d_model / 2, rng);
        let mut proj = Linear::new(store, "prompt.proj", d_model, d_model, rng);
        // Shrink the projection so the residual branch starts near zero.
        let w = store.value_mut(proj.w);
        for v in w.data_mut() {
            *v *= 0.1;
        }
        proj.in_dim = d_model;
        PromptEncoder {
            table,
            lstm,
            proj,
            n_tokens,
        }
    }

    /// Compute the `(n_tokens, d)` prompt embedding rows.
    pub fn rows(&self, tape: &mut impl TapeExec, store: &ParamStore) -> Var {
        let raw = tape.param(store, self.table);
        let h = self.lstm.forward(tape, store, raw);
        let delta = self.proj.forward(tape, store, h);
        tape.add(raw, delta)
    }
}

/// How many prompt tokens each continuous template uses.
pub fn continuous_token_count(template: TemplateId) -> usize {
    match template {
        TemplateId::T1 => 2, // replaces "they are"
        TemplateId::T2 => 4, // replaces "is … to" (2 before, 2 after [MASK])
    }
}

/// A fully-specified prompt pipeline for one (template, mode) choice.
/// Cloning copies the prompt machinery but not the parameters it points
/// at — clone the owning [`crate::PretrainedLm`]'s store alongside (the
/// [`em_nn::ParamId`]s stay valid in the cloned store).
#[derive(Clone)]
pub struct PromptTemplate {
    /// Which of the two GEM templates this is.
    pub template: TemplateId,
    /// Hard or continuous prompting.
    pub mode: PromptMode,
    /// Present iff `mode == Continuous`.
    pub encoder: Option<PromptEncoder>,
    // Hard template token ids.
    they_are: Vec<usize>,
    is_: Vec<usize>,
    to_: Vec<usize>,
}

impl PromptTemplate {
    /// Build a template with default (random or word-seeded) prompt init.
    pub fn new(
        store: &mut ParamStore,
        tokenizer: &Tokenizer,
        d_model: usize,
        template: TemplateId,
        mode: PromptMode,
        rng: &mut impl Rng,
    ) -> Self {
        Self::with_init(store, tokenizer, d_model, template, mode, None, rng)
    }

    /// Like [`PromptTemplate::new`] but seeding the continuous prompt table
    /// from given rows (typically the hard-template word embeddings — the
    /// standard P-tuning warm start).
    pub fn with_init(
        store: &mut ParamStore,
        tokenizer: &Tokenizer,
        d_model: usize,
        template: TemplateId,
        mode: PromptMode,
        init_rows: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> Self {
        let encoder = match mode {
            PromptMode::Continuous => Some(PromptEncoder::new(
                store,
                d_model,
                continuous_token_count(template),
                init_rows,
                rng,
            )),
            PromptMode::Hard => None,
        };
        PromptTemplate {
            template,
            mode,
            encoder,
            they_are: tokenizer.encode("they are"),
            is_: tokenizer.encode("is"),
            to_: tokenizer.encode("to"),
        }
    }

    /// Token ids whose embeddings should seed the continuous prompt table
    /// for this template: T1 replaces "they are", T2 replaces "is … to".
    pub fn init_word_ids(tokenizer: &Tokenizer, template: TemplateId) -> Vec<usize> {
        let take2 = |text: &str| -> Vec<usize> {
            let mut ids = tokenizer.encode(text);
            while ids.len() < 2 {
                ids.push(*ids.last().unwrap_or(&crate::tokenizer::UNK));
            }
            ids.truncate(2);
            ids
        };
        match template {
            TemplateId::T1 => take2("they are"),
            TemplateId::T2 => {
                let is_ = take2("is is");
                let to_ = take2("to to");
                is_.into_iter().chain(to_).collect()
            }
        }
    }

    /// Number of non-entity tokens the template adds (specials + prompt).
    fn overhead(&self) -> usize {
        match (self.template, self.mode) {
            (TemplateId::T1, PromptMode::Hard) => 3 + self.they_are.len() + 1,
            (TemplateId::T1, PromptMode::Continuous) => 3 + 2 + 1,
            (TemplateId::T2, PromptMode::Hard) => 2 + self.is_.len() + self.to_.len() + 1,
            (TemplateId::T2, PromptMode::Continuous) => 2 + 4 + 1,
        }
    }

    /// Precompute the prompt-encoder output rows as a plain matrix. The
    /// BiLSTM/projection stack is RNG-free and depends only on the store,
    /// so its output is identical on every forward until the next optimizer
    /// step — scoring loops compute it once and splice the cached copy via
    /// [`PromptTemplate::forward_with_rows`] instead of re-running the
    /// stack per pair (it dominates matmul call counts otherwise).
    /// `None` for hard templates.
    pub fn prompt_rows_matrix(&self, store: &ParamStore) -> Option<Matrix> {
        self.encoder.as_ref().map(|pe| {
            let mut tape = NoGradTape::inference();
            let rows = pe.rows(&mut tape, store);
            tape.value(rows).clone()
        })
    }

    /// The exact sequence length a [`PromptTemplate::forward`] over entity
    /// serializations of `la` and `lb` tokens produces under the encoder's
    /// `max_len`: the clipped entity budget plus the template overhead.
    /// Combined with [`Encoder::dropout_draws`] this lets the sharded
    /// scorer compute per-pair RNG consumption without running a forward.
    pub fn seq_len(&self, max_len: usize, la: usize, lb: usize) -> usize {
        let budget = max_len.saturating_sub(self.overhead());
        let (ka, kb) = split_budget(la, lb, budget);
        ka + kb + self.overhead()
    }

    /// Encode a serialized pair through the template and run the LM
    /// encoder. Returns the hidden states and the row of the `[MASK]`
    /// position.
    pub fn forward(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        lm: &Encoder,
        ids_a: &[usize],
        ids_b: &[usize],
        rng: &mut impl Rng,
    ) -> (Var, usize) {
        self.forward_with_rows(tape, store, lm, ids_a, ids_b, None, rng)
    }

    /// [`PromptTemplate::forward`] with an optional precomputed prompt-row
    /// matrix (from [`PromptTemplate::prompt_rows_matrix`]). With
    /// `cached_rows` the prompt encoder is not run — bit-exact, since its
    /// stack consumes no RNG and the cached values are its exact outputs.
    /// Training paths must pass `None` so gradients reach the prompt table.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_with_rows(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        lm: &Encoder,
        ids_a: &[usize],
        ids_b: &[usize],
        cached_rows: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> (Var, usize) {
        let (x, pos, mask_row) =
            self.embed_template(tape, store, lm, ids_a, ids_b, cached_rows, rng);
        let hidden = lm.forward_embedded(tape, store, x, pos, rng);
        (hidden, mask_row)
    }

    /// [`PromptTemplate::forward_with_rows`] when only the `[MASK]` row of
    /// the final hidden states is consumed (scoring and embedding paths):
    /// the last encoder layer computes just that row via
    /// [`Encoder::forward_embedded_row`]. Returns the `(1, d_model)` mask
    /// hidden state, bit-identical to slicing the full forward's mask row —
    /// including the RNG stream, since skipped dropout draws are burned.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_mask_row(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        lm: &Encoder,
        ids_a: &[usize],
        ids_b: &[usize],
        cached_rows: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> Var {
        let (x, pos, mask_row) =
            self.embed_template(tape, store, lm, ids_a, ids_b, cached_rows, rng);
        lm.forward_embedded_row(tape, store, x, pos, mask_row, rng)
    }

    /// Shared front half of the template forwards: lay out the segments,
    /// splice prompt rows, and build the embedded input. Returns the
    /// embedded rows, the sequence length, and the `[MASK]` row index.
    #[allow(clippy::too_many_arguments)]
    fn embed_template(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        lm: &Encoder,
        ids_a: &[usize],
        ids_b: &[usize],
        cached_rows: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> (Var, usize, usize) {
        let budget = lm.cfg.max_len.saturating_sub(self.overhead());
        let (ka, kb) = split_budget(ids_a.len(), ids_b.len(), budget);
        let a = &ids_a[..ka];
        let b = &ids_b[..kb];

        // Lay out the sequence as segments; prompt segments are indices into
        // the prompt-encoder rows.
        enum Seg<'s> {
            Toks(Vec<usize>),
            Ref(&'s [usize]),
            Prompt(usize, usize), // (start, len) into prompt rows
            Mask,
        }
        let segs: Vec<Seg> = match (self.template, self.mode) {
            (TemplateId::T1, PromptMode::Hard) => vec![
                Seg::Toks(vec![CLS]),
                Seg::Ref(a),
                Seg::Toks(vec![SEP]),
                Seg::Ref(b),
                Seg::Toks(vec![SEP]),
                Seg::Toks(self.they_are.clone()),
                Seg::Mask,
            ],
            (TemplateId::T1, PromptMode::Continuous) => vec![
                Seg::Toks(vec![CLS]),
                Seg::Ref(a),
                Seg::Toks(vec![SEP]),
                Seg::Ref(b),
                Seg::Toks(vec![SEP]),
                Seg::Prompt(0, 2),
                Seg::Mask,
            ],
            (TemplateId::T2, PromptMode::Hard) => vec![
                Seg::Toks(vec![CLS]),
                Seg::Ref(a),
                Seg::Toks(self.is_.clone()),
                Seg::Mask,
                Seg::Toks(self.to_.clone()),
                Seg::Ref(b),
                Seg::Toks(vec![SEP]),
            ],
            (TemplateId::T2, PromptMode::Continuous) => vec![
                Seg::Toks(vec![CLS]),
                Seg::Ref(a),
                Seg::Prompt(0, 2),
                Seg::Mask,
                Seg::Prompt(2, 2),
                Seg::Ref(b),
                Seg::Toks(vec![SEP]),
            ],
        };

        // Flatten segments into embedding rows.
        let prompt_rows = match cached_rows {
            Some(m) => Some(tape.constant(m.clone())),
            None => self.encoder.as_ref().map(|pe| pe.rows(tape, store)),
        };
        let mut parts: Vec<Var> = Vec::new();
        let mut pos = 0usize;
        let mut mask_row = 0usize;
        for seg in &segs {
            match seg {
                Seg::Toks(ids) => {
                    if ids.is_empty() {
                        continue;
                    }
                    parts.push(lm.tok_emb.forward(tape, store, ids));
                    pos += ids.len();
                }
                Seg::Ref(ids) => {
                    if ids.is_empty() {
                        continue;
                    }
                    parts.push(lm.tok_emb.forward(tape, store, ids));
                    pos += ids.len();
                }
                Seg::Prompt(start, len) => {
                    // lint:allow(unwrap) — Continuous mode always builds the encoder
                    let rows = prompt_rows.expect("continuous template without prompt encoder");
                    parts.push(tape.slice_rows(rows, *start, *len));
                    pos += len;
                }
                Seg::Mask => {
                    parts.push(lm.tok_emb.forward(tape, store, &[MASK]));
                    mask_row = pos;
                    pos += 1;
                }
            }
        }
        let tok = tape.concat_rows(&parts);
        let positions: Vec<usize> = (0..pos.min(lm.cfg.max_len)).collect();
        debug_assert_eq!(positions.len(), pos, "template overflowed max_len");
        let pos_emb = lm.pos_emb.forward(tape, store, &positions);
        let x = tape.add(tok, pos_emb);
        let x = lm.emb_ln.forward(tape, store, x);
        let x = tape.dropout(x, lm.cfg.dropout, rng);
        (x, pos, mask_row)
    }
}

/// Split a token budget proportionally between the two entity serializations.
fn split_budget(la: usize, lb: usize, budget: usize) -> (usize, usize) {
    if la + lb <= budget {
        return (la, lb);
    }
    let ka = (budget * la) / (la + lb).max(1);
    let ka = ka.min(la);
    let kb = (budget - ka).min(lb);
    let ka = (budget - kb).min(la);
    (ka, kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LmConfig;
    use em_nn::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, Encoder, Tokenizer, StdRng) {
        let corpus = [
            "[COL] name [VAL] blue cafe they are matched similar relevant",
            "[COL] name [VAL] red diner is mismatched different irrelevant to this",
        ];
        let tokenizer = Tokenizer::fit(corpus, 1);
        let mut rng = StdRng::seed_from_u64(70);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: tokenizer.vocab_size(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_len: 32,
            dropout: 0.0,
        };
        let enc = Encoder::new(&mut store, cfg, &mut rng);
        (store, enc, tokenizer, rng)
    }

    #[test]
    fn label_word_sets_match_paper() {
        let d = LabelWords::designed();
        assert_eq!(d.yes, ["matched", "similar", "relevant"]);
        assert_eq!(d.no, ["mismatched", "different", "irrelevant"]);
        let s = LabelWords::simple();
        assert_eq!(s.yes.len(), 1);
    }

    #[test]
    fn verbalizer_probs_form_sub_distribution() {
        let (mut store, enc, tok, mut rng) = setup();
        let verb = Verbalizer::new(&tok, &LabelWords::designed());
        let tmpl = PromptTemplate::new(
            &mut store,
            &tok,
            enc.cfg.d_model,
            TemplateId::T1,
            PromptMode::Hard,
            &mut rng,
        );
        let a = tok.encode("blue cafe");
        let b = tok.encode("red diner");
        let mut tape = Tape::inference();
        let (h, mask_row) = tmpl.forward(&mut tape, &store, &enc, &a, &b, &mut rng);
        let hm = tape.slice_rows(h, mask_row, 1);
        let head = crate::heads::MlmHead::new(&mut store, &enc, &mut rng);
        let logits = head.logits(&mut tape, &store, &enc, hm);
        let probs = verb.class_probs(&mut tape, logits);
        let pm = tape.value(probs);
        assert_eq!(pm.shape(), (1, 2));
        assert!(pm.get(0, 0) > 0.0 && pm.get(0, 1) > 0.0);
        assert!(pm.get(0, 0) + pm.get(0, 1) <= 1.0 + 1e-5);
    }

    #[test]
    fn all_template_mode_combinations_run() {
        let (mut store, enc, tok, mut rng) = setup();
        let a = tok.encode("blue cafe name");
        let b = tok.encode("red diner");
        for template in [TemplateId::T1, TemplateId::T2] {
            for mode in [PromptMode::Hard, PromptMode::Continuous] {
                let tmpl = PromptTemplate::new(
                    &mut store,
                    &tok,
                    enc.cfg.d_model,
                    template,
                    mode,
                    &mut rng,
                );
                let mut tape = Tape::inference();
                let (h, mask_row) = tmpl.forward(&mut tape, &store, &enc, &a, &b, &mut rng);
                let hm = tape.value(h);
                assert!(
                    mask_row < hm.rows(),
                    "{template:?}/{mode:?}: mask row out of range"
                );
                assert_eq!(hm.cols(), 16);
            }
        }
    }

    #[test]
    fn mask_position_is_where_the_template_says() {
        let (mut store, enc, tok, mut rng) = setup();
        let tmpl = PromptTemplate::new(
            &mut store,
            &tok,
            enc.cfg.d_model,
            TemplateId::T1,
            PromptMode::Continuous,
            &mut rng,
        );
        let a = tok.encode("blue cafe");
        let b = tok.encode("red diner");
        let mut tape = Tape::inference();
        let (h, mask_row) = tmpl.forward(&mut tape, &store, &enc, &a, &b, &mut rng);
        // T1 continuous: CLS + a + SEP + b + SEP + 2 prompt + MASK (last row)
        assert_eq!(mask_row, tape.value(h).rows() - 1);
    }

    #[test]
    fn long_entities_are_clipped_to_max_len() {
        let (mut store, enc, tok, mut rng) = setup();
        let tmpl = PromptTemplate::new(
            &mut store,
            &tok,
            enc.cfg.d_model,
            TemplateId::T2,
            PromptMode::Continuous,
            &mut rng,
        );
        let long: Vec<usize> = tok.encode("blue cafe name red diner").repeat(20);
        let mut tape = Tape::inference();
        let (h, mask_row) = tmpl.forward(&mut tape, &store, &enc, &long, &long, &mut rng);
        assert!(tape.value(h).rows() <= enc.cfg.max_len);
        assert!(mask_row < tape.value(h).rows());
    }

    #[test]
    fn mask_row_forward_matches_the_sliced_full_forward_bitwise() {
        // Dropout on, train-mode tapes: the row path must reproduce the
        // full forward's mask row AND its RNG exit state for every
        // template/mode combination (the mask sits at a different row in
        // each), or scoring decisions would drift from the historical path.
        let (_, _, tok, _) = setup();
        let mut rng = StdRng::seed_from_u64(71);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: tok.vocab_size(),
            d_model: 16,
            n_layers: 2,
            n_heads: 2,
            d_ff: 32,
            max_len: 32,
            dropout: 0.1,
        };
        let enc = Encoder::new(&mut store, cfg, &mut rng);
        let a = tok.encode("blue cafe");
        let b = tok.encode("red diner");
        for template in [TemplateId::T1, TemplateId::T2] {
            for mode in [PromptMode::Hard, PromptMode::Continuous] {
                let tmpl = PromptTemplate::new(
                    &mut store,
                    &tok,
                    enc.cfg.d_model,
                    template,
                    mode,
                    &mut rng,
                );
                let fresh = || StdRng::seed_from_u64(72);
                let (mut ra, mut rb) = (fresh(), fresh());
                let mut ta = Tape::new();
                let (h, mask_row) =
                    tmpl.forward_with_rows(&mut ta, &store, &enc, &a, &b, None, &mut ra);
                let hr = ta.slice_rows(h, mask_row, 1);
                let mut tb = Tape::new();
                let hb = tmpl.forward_mask_row(&mut tb, &store, &enc, &a, &b, None, &mut rb);
                assert_eq!(
                    ta.value(hr).data(),
                    tb.value(hb).data(),
                    "{template:?}/{mode:?}: mask-row values diverged"
                );
                assert_eq!(
                    ra.state(),
                    rb.state(),
                    "{template:?}/{mode:?}: RNG streams diverged"
                );
            }
        }
    }

    #[test]
    fn continuous_prompts_receive_gradient() {
        let (mut store, enc, tok, mut rng) = setup();
        let verb = Verbalizer::new(&tok, &LabelWords::designed());
        let tmpl = PromptTemplate::new(
            &mut store,
            &tok,
            enc.cfg.d_model,
            TemplateId::T1,
            PromptMode::Continuous,
            &mut rng,
        );
        let head = crate::heads::MlmHead::new(&mut store, &enc, &mut rng);
        let a = tok.encode("blue cafe");
        let b = tok.encode("red diner");
        let mut tape = Tape::new();
        let (h, mask_row) = tmpl.forward(&mut tape, &store, &enc, &a, &b, &mut rng);
        let hm = tape.slice_rows(h, mask_row, 1);
        let logits = head.logits(&mut tape, &store, &enc, hm);
        let probs = verb.class_probs(&mut tape, logits);
        let loss = tape.nll_probs(probs, &[0]);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        let pe = tmpl.encoder.as_ref().unwrap();
        assert!(
            store.grad(pe.table).frobenius_norm() > 0.0,
            "prompt table got no gradient"
        );
    }

    /// Counts `next_u64` calls made through the template forward.
    struct CountingRng<'a> {
        inner: &'a mut StdRng,
        draws: u64,
    }

    impl rand::RngCore for CountingRng<'_> {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn seq_len_and_dropout_draws_pin_template_forwards() {
        let corpus = [
            "[COL] name [VAL] blue cafe they are matched similar relevant",
            "[COL] name [VAL] red diner is mismatched different irrelevant to this",
        ];
        let tokenizer = Tokenizer::fit(corpus, 1);
        let mut rng = StdRng::seed_from_u64(71);
        let mut store = ParamStore::new();
        let cfg = LmConfig {
            vocab: tokenizer.vocab_size(),
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            d_ff: 32,
            max_len: 32,
            dropout: 0.1,
        };
        let enc = Encoder::new(&mut store, cfg, &mut rng);
        let short = tokenizer.encode("blue cafe");
        let long: Vec<usize> = tokenizer.encode("blue cafe name red diner").repeat(20);
        for template in [TemplateId::T1, TemplateId::T2] {
            for mode in [PromptMode::Hard, PromptMode::Continuous] {
                let tmpl = PromptTemplate::new(
                    &mut store,
                    &tokenizer,
                    enc.cfg.d_model,
                    template,
                    mode,
                    &mut rng,
                );
                for (a, b) in [(&short, &short), (&long, &short), (&long, &long)] {
                    let predicted = tmpl.seq_len(enc.cfg.max_len, a.len(), b.len());
                    let mut counter = CountingRng {
                        inner: &mut rng,
                        draws: 0,
                    };
                    let mut tape = Tape::new();
                    let (h, _) = tmpl.forward(&mut tape, &store, &enc, a, b, &mut counter);
                    assert_eq!(
                        tape.value(h).rows(),
                        predicted,
                        "{template:?}/{mode:?} la={} lb={}",
                        a.len(),
                        b.len()
                    );
                    assert_eq!(
                        counter.draws,
                        enc.dropout_draws(predicted as u64),
                        "{template:?}/{mode:?}: the prompt stack must stay RNG-free"
                    );
                }
            }
        }
    }

    #[test]
    fn split_budget_properties() {
        for (la, lb, budget) in [(50, 50, 20), (100, 5, 20), (5, 100, 20), (3, 3, 20)] {
            let (ka, kb) = split_budget(la, lb, budget);
            assert!(ka <= la && kb <= lb);
            if la + lb > budget {
                assert_eq!(ka + kb, budget);
            } else {
                assert_eq!((ka, kb), (la, lb));
            }
        }
    }
}
