//! Model hyperparameters for the mini masked language model.

/// Transformer encoder configuration. The defaults are the "quick" scale
/// used by the experiment harness; `base()` is a larger variant for the
/// `PROMPTEM_SCALE=full` runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LmConfig {
    /// Vocabulary size (token-embedding rows).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Attention heads per layer.
    pub n_heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (learned positional embeddings).
    pub max_len: usize,
    /// Dropout probability used throughout the encoder.
    pub dropout: f32,
}

impl LmConfig {
    /// Tiny configuration: fast enough to train on one CPU core.
    pub fn tiny(vocab: usize) -> Self {
        LmConfig {
            vocab,
            d_model: 32,
            n_layers: 2,
            n_heads: 2,
            d_ff: 64,
            max_len: 64,
            dropout: 0.1,
        }
    }

    /// A larger configuration for full-scale runs.
    pub fn base(vocab: usize) -> Self {
        LmConfig {
            vocab,
            d_model: 64,
            n_layers: 3,
            n_heads: 4,
            d_ff: 128,
            max_len: 128,
            dropout: 0.1,
        }
    }

    /// Override the maximum sequence length.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// Override the dropout probability.
    pub fn with_dropout(mut self, p: f32) -> Self {
        self.dropout = p;
        self
    }

    /// Sanity-check invariants; panics with a clear message when violated.
    pub fn validate(&self) {
        assert!(
            self.vocab > super::tokenizer::SPECIALS.len(),
            "vocab too small"
        );
        assert!(
            self.d_model.is_multiple_of(self.n_heads),
            "d_model must divide into heads"
        );
        assert!(self.max_len >= 8, "max_len too small");
        assert!((0.0..1.0).contains(&self.dropout), "dropout out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        LmConfig::tiny(100).validate();
        LmConfig::base(100).validate();
    }

    #[test]
    #[should_panic(expected = "d_model must divide")]
    fn invalid_heads_rejected() {
        let mut c = LmConfig::tiny(100);
        c.n_heads = 5;
        c.validate();
    }
}
