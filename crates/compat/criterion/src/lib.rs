//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the surface its microbenchmarks use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Statistics are deliberately simple — a
//! warmup pass followed by timed samples, reporting mean / min / max —
//! which is enough to compare the relative cost of the repository's
//! kernels on one machine.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // Warmup (also primes lazy state inside the closure).
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        if b.samples.is_empty() {
            eprintln!("{name:<40} (no samples recorded)");
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = *b.samples.iter().min().expect("nonempty");
        let max = *b.samples.iter().max().expect("nonempty");
        eprintln!(
            "{name:<40} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            mean,
            min,
            max,
            b.samples.len()
        );
        self
    }
}

/// Records one timed closure invocation per [`Bencher::iter`] call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one run of `f` (upstream runs many iterations per sample; one
    /// suffices for the millisecond-scale routines benchmarked here).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// Declare a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut runs = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                })
            });
        // One warmup invocation plus five timed samples.
        assert_eq!(runs, 6);
    }

    criterion_group! {
        name = demo_group;
        config = Criterion::default().sample_size(2);
        targets = noop_target
    }

    fn noop_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_expands_to_runner() {
        demo_group();
    }
}
