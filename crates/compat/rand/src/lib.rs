//! An offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact surface it uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — not the upstream ChaCha12 stream, but deterministic for a
//! given seed, which is all the experiments rely on.

#![warn(missing_docs)]

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening multiply maps a u64 onto [0, span); the modulo
                // bias is < span / 2^64, negligible at experiment scales.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t; // [0, 1)
                let v = lo + (hi - lo) * unit;
                if v >= hi {
                    lo // rounding pushed us onto the open bound
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A value uniform in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type ("standard" distribution:
    /// floats in `[0, 1)`, uniform bools/integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p not a probability: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded via SplitMix64 (deterministic).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++ (upstream uses ChaCha12;
    /// the streams differ but determinism per seed is preserved).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a stream
        /// mid-flight (not part of the upstream rand API).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a previously captured [`StdRng::state`];
        /// the restored stream continues exactly where the original left
        /// off. An all-zero state (never produced by a live generator) gets
        /// the same nudge as `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E3779B97F4A7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Deterministic test generators.
    pub mod mock {
        use super::RngCore;

        /// Returns `initial`, `initial + increment`, … — matches the
        /// upstream `rand::rngs::mock::StepRng` used in tests.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Create a generator that starts at `initial` and steps by
            /// `increment` on each `next_u64`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::Rng;

    /// Shuffle-in-place support for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher-Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64_pub();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-3..4);
            assert!((-3..4).contains(&v));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let f: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn range_samples_cover_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampler missed a bucket: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 produced {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
