//! A small work-stealing thread pool for sharded, deterministic scoring.
//!
//! The workspace's em-lint gate keeps raw `thread::spawn` (and unjustified
//! atomic orderings) out of application crates; all thread machinery lives
//! here, vendored under `crates/compat/` like the rand/proptest/sched
//! subsets.
//!
//! Design: a run over `n` tasks pre-shards the indices contiguously across
//! `w` workers. Each task has one claim word; a worker *claims* a task with
//! a single atomic swap, which succeeds for exactly one caller — the
//! exactly-once guarantee is structural, not protocol-dependent. An idle
//! worker first drains its own shard front-to-back (cache-friendly order),
//! then steals from other shards back-to-front so thieves and owners
//! approach each shard from opposite ends. Results are returned to the
//! caller in task order, so the output is deterministic regardless of which
//! worker ran which task.
//!
//! The claim protocol is generic over [`ClaimWord`] (mirroring `em-nn`'s
//! `StatWord`) so the identical queue code can be model-checked under the
//! `em-sched` interleaving checker with its instrumented atomics — see
//! `crates/core/tests/sched_pool.rs`, which also proves the checker would
//! catch a torn (load-then-store) claim.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One task's claim flag. `try_claim` must return `true` for exactly one
/// caller per word, under any interleaving.
pub trait ClaimWord: Sync {
    /// A fresh, unclaimed word.
    fn new_unclaimed() -> Self;
    /// Attempt to claim; `true` iff this caller won the task.
    fn try_claim(&self) -> bool;
}

/// Production claim word: one atomic swap.
pub struct RelaxedClaim(AtomicU64);

impl ClaimWord for RelaxedClaim {
    fn new_unclaimed() -> Self {
        RelaxedClaim(AtomicU64::new(0))
    }

    fn try_claim(&self) -> bool {
        // ordering: Relaxed — the swap only elects which worker runs the
        // task; no data is published through the flag (task inputs are
        // immutable shared borrows, and results travel through each
        // worker's own buffer, joined before the caller reads them).
        self.0.swap(1, Ordering::Relaxed) == 0
    }
}

/// Pre-sharded claim queue over task indices `0..tasks` for `workers`
/// workers. Pure coordination — it holds no task data.
pub struct ShardQueue<W: ClaimWord> {
    claims: Vec<W>,
    workers: usize,
}

impl<W: ClaimWord> ShardQueue<W> {
    /// A queue of `tasks` unclaimed tasks sharded across `workers` workers.
    pub fn new(tasks: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ShardQueue {
            claims: (0..tasks).map(|_| W::new_unclaimed()).collect(),
            workers,
        }
    }

    /// Number of tasks in the queue.
    pub fn tasks(&self) -> usize {
        self.claims.len()
    }

    /// The contiguous task range owned by worker `w` (near-equal split;
    /// the first `tasks % workers` shards get one extra task).
    pub fn shard(&self, w: usize) -> std::ops::Range<usize> {
        let n = self.claims.len();
        let base = n / self.workers;
        let extra = n % self.workers;
        let start = w * base + w.min(extra);
        let len = base + usize::from(w < extra);
        start..(start + len).min(n)
    }

    /// The next task worker `w` should run: its own shard front-to-back,
    /// then other shards back-to-front (stealing). `None` when every task
    /// is claimed.
    pub fn next_for(&self, w: usize) -> Option<usize> {
        for i in self.shard(w) {
            if self.claims[i].try_claim() {
                return Some(i);
            }
        }
        for other in (0..self.workers).filter(|&o| o != w) {
            for i in self.shard(other).rev() {
                if self.claims[i].try_claim() {
                    return Some(i);
                }
            }
        }
        None
    }
}

/// Run `f(i)` for every `i in 0..tasks` across `threads` OS threads and
/// return the results in task order. `threads <= 1` (or a single task)
/// runs inline on the caller with no spawns at all, so the single-thread
/// path is byte-identical to a plain sequential loop.
///
/// Workers keep `(index, result)` pairs in worker-local buffers; the caller
/// joins every worker before assembling the output, so no result is read
/// while a worker could still be writing it.
///
/// Panics in `f` propagate to the caller after all workers are joined.
pub fn run_sharded<R, F>(threads: usize, tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let workers = threads.min(tasks);
    let queue = ShardQueue::<RelaxedClaim>::new(tasks, workers);
    let mut out: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let f = &f;
                s.spawn(move || {
                    let mut got = Vec::new();
                    while let Some(i) = queue.next_for(w) {
                        got.push((i, f(i)));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("pool worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("pool lost a task"))
        .collect()
}

/// Programmatic worker-count override (0 = not forced; fall back to the
/// `PROMPTEM_THREADS` environment variable). Same settable-global pattern
/// as the op profiler and heartbeat interval.
static FORCED_THREADS: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PROMPTEM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1)
    })
}

/// The active worker count for sharded scoring (always >= 1; 1 = fully
/// sequential). The programmatic setting wins over `PROMPTEM_THREADS`.
pub fn threads() -> usize {
    // ordering: Relaxed — a lone configuration word; readers only need to
    // see the most recent set eventually, and it guards no other data.
    match FORCED_THREADS.load(Ordering::Relaxed) {
        0 => env_threads().max(1),
        n => n,
    }
}

/// Set the worker count programmatically (the CLI's `--threads`). 0 clears
/// the override, falling back to the environment.
pub fn set_threads(n: usize) {
    // ordering: Relaxed — see threads(); the word guards no data.
    FORCED_THREADS.store(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn shards_cover_all_tasks_exactly_once() {
        for (tasks, workers) in [(0, 1), (1, 3), (7, 3), (12, 4), (5, 8)] {
            let q = ShardQueue::<RelaxedClaim>::new(tasks, workers);
            let mut seen = vec![0usize; tasks];
            for w in 0..workers {
                for i in q.shard(w) {
                    seen[i] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "tasks={tasks} workers={workers}: shards {seen:?}"
            );
        }
    }

    #[test]
    fn next_for_drains_every_task_exactly_once() {
        let q = ShardQueue::<RelaxedClaim>::new(10, 3);
        let mut runs = vec![0usize; 10];
        // A lone worker must still reach every task via stealing.
        while let Some(i) = q.next_for(2) {
            runs[i] += 1;
        }
        assert!(runs.iter().all(|&c| c == 1), "{runs:?}");
        for w in 0..3 {
            assert_eq!(q.next_for(w), None, "drained queue must stay empty");
        }
    }

    #[test]
    fn run_sharded_returns_results_in_task_order() {
        for threads in [1, 2, 4, 9] {
            let out = run_sharded(threads, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_sharded_runs_each_task_once_across_threads() {
        let counts: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        let _ = run_sharded(4, 50, |i| {
            // ordering: Relaxed — independent counters, read after join.
            counts[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn threads_default_is_sequential() {
        assert!(threads() >= 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
