//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_exact_and_ranged() {
        let mut rng = TestRng::for_case("collection", 0);
        for _ in 0..200 {
            assert_eq!(vec(0u8..5, 3).generate(&mut rng).len(), 3);
            let v = vec(0u8..5, 1..6).generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            let nested = vec(vec(0u8..2, 2), 2..4).generate(&mut rng);
            assert!(nested.iter().all(|inner| inner.len() == 2));
        }
    }
}
