//! The [`Strategy`] trait and its primitive implementations: numeric
//! ranges, constants, tuples, and `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_map_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy", 0);
        for _ in 0..500 {
            let v = (0usize..7).generate(&mut rng);
            assert!(v < 7);
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = (0u8..3, Just("x")).generate(&mut rng);
            assert!(a < 3);
            assert_eq!(b, "x");
            let doubled = (1i32..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!([2, 4, 6, 8].contains(&doubled));
        }
    }
}
