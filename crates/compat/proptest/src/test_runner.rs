//! Test configuration and the deterministic per-case RNG.

/// Runner configuration; only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator: seeded from the test name and case index so a
/// failure report ("case 17") is replayable.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_distinct_and_replayable() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other_case = TestRng::for_case("t", 1);
        let mut other_name = TestRng::for_case("u", 0);
        assert_ne!(a[0], other_case.next_u64());
        assert_ne!(a[0], other_name.next_u64());
    }
}
