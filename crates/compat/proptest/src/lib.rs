//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the surface its property tests use: the [`proptest!`] macro with
//! `pat in strategy` bindings and `#![proptest_config(..)]`, range and
//! regex-literal strategies, [`collection::vec`], tuples, `prop_map`,
//! [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! Shrinking is intentionally not implemented: a failing case panics with
//! its case number and seed so it can be replayed, which has proven enough
//! for this repository's invariant-style properties.

#![warn(missing_docs)]

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod string;
pub mod test_runner;

/// The glob import used by every property test.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that evaluates the body over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each test function of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {msg}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the enclosing property (with an optional formatted message) without
/// panicking, so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert!(a == b)` with a value dump on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                va,
                vb
            ));
        }
    }};
}

/// `prop_assert!(a != b)` with a value dump on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va != vb) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                va
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 0usize..10,
            v in crate::collection::vec(-1.0f32..1.0, 2..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!((2..8).contains(&v.len()));
            for f in &v {
                prop_assert!((-1.0..1.0).contains(f));
            }
            prop_assert!(flag || !flag);
        }

        #[test]
        fn regex_and_map(
            s in "[a-z]{1,4}",
            t in crate::strategy::Just(7u8),
            (a, b) in (0u64..5, "[0-9]{2}"),
        ) {
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert_eq!(t, 7u8);
            prop_assert!(a < 5);
            prop_assert_eq!(b.len(), 2);
        }
    }

    #[test]
    fn failing_property_panics_with_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0usize..3) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let err = result.expect_err("property unexpectedly passed");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "panic lacks test name: {msg}");
        assert!(
            msg.contains("x was"),
            "panic lacks formatted message: {msg}"
        );
    }
}
