//! The [`any`] entry point for canonical per-type strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_full_range_int {
    ($($t:ty => $name:ident),*) => {$(
        /// Full-range integer strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct $name;

        impl Strategy for $name {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;

            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}

impl_arbitrary_full_range_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, usize => AnyUsize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = TestRng::for_case("arbitrary", 0);
        let s = any::<bool>();
        let vals: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
