//! String strategies from regex-like literals.
//!
//! Supports the subset this repository's tests use: a sequence of atoms,
//! each a literal character, an escape (`\n`, `\t`, `\r`, `\\`, `\"`), or a
//! character class `[...]` (literal characters, `a-z` ranges, the same
//! escapes, and a trailing `-` taken literally), optionally followed by a
//! `{n}` or `{lo,hi}` repetition.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom may produce.
    choices: Vec<char>,
    /// Inclusive repetition bounds.
    lo: usize,
    hi: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if chars[j] == '\\' && j + 1 < close {
                        set.push(unescape(chars[j + 1]));
                        j += 2;
                    } else if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        assert!(a <= b, "reversed range {a}-{b} in pattern {pattern:?}");
                        set.extend((a..=b).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                assert!(
                    i + 1 < chars.len(),
                    "dangling escape in pattern {pattern:?}"
                );
                i += 2;
                vec![unescape(chars[i - 1])]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(
            !choices.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        // Optional {n} or {lo,hi} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad repetition lower bound"),
                    b.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "reversed repetition in pattern {pattern:?}");
        atoms.push(Atom { choices, lo, hi });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.lo + rng.below((atom.hi - atom.lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u32) -> String {
        let mut rng = TestRng::for_case("string", seed);
        pattern.generate(&mut rng)
    }

    #[test]
    fn class_with_repetition() {
        for seed in 0..200 {
            let s = gen("[a-z]{1,10}", seed);
            assert!((1..=10).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn class_mixing_ranges_literals_and_escapes() {
        for seed in 0..200 {
            let s = gen("[a-zA-Z0-9 \"\\\\\n\t]{0,20}", seed);
            assert!(s.len() <= 20);
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric()
                    || [' ', '"', '\\', '\n', '\t'].contains(&c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut saw_dash = false;
        for seed in 0..300 {
            let s = gen("[a./$-]{4}", seed);
            assert_eq!(s.len(), 4);
            assert!(
                s.chars().all(|c| ['a', '.', '/', '$', '-'].contains(&c)),
                "{s:?}"
            );
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash, "literal dash never generated");
    }

    #[test]
    fn literals_and_exact_counts() {
        assert_eq!(gen("abc", 0), "abc");
        assert_eq!(gen("[x]{3}", 1), "xxx");
    }
}
