//! `em-sched`: a shuttle-style randomized interleaving checker, vendored
//! for the PromptEM reproduction (no crates.io access in the build
//! environment).
//!
//! Concurrency bugs hide in the interleavings the OS rarely produces.
//! This crate makes interleavings a *controlled input*: checked code
//! runs its threads ([`thread::spawn`]) and shared state ([`sync`]
//! shims) under a seeded scheduler that serializes execution and, at
//! every shared access, randomly decides who runs next. One seed = one
//! interleaving, deterministically replayable; [`explore`] sweeps many
//! seeds and reports the first seed whose interleaving panics an
//! assertion, deadlocks, or exhausts the step budget.
//!
//! ```
//! use em_sched::{check, sync::AtomicU64, thread};
//! use std::sync::Arc;
//!
//! let report = check(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = thread::spawn(move || c2.fetch_add(1));
//!     c.fetch_add(1);
//!     t.join();
//!     assert_eq!(c.load(), 2); // fetch_add is atomic: holds on EVERY seed
//! });
//! assert!(report.failure.is_none());
//! ```
//!
//! ## Model and limits (vs. loom)
//!
//! * **Sequential consistency only.** The scheduler serializes tasks, so
//!   every explored execution is an SC interleaving. Weak-memory effects
//!   (store buffering, reordering under `Relaxed`/`Acquire`/`Release`)
//!   are *not* modeled — which is why the atomic shims take no
//!   `Ordering` argument. loom explores the C11 model; em-sched trades
//!   that power for zero dependencies and much faster runs.
//! * **Randomized, not exhaustive.** loom enumerates all executions
//!   (with DPOR pruning); em-sched samples one interleaving per seed.
//!   No failure found ⇒ evidence, not proof. In exchange, seed sweeps
//!   scale to state spaces loom cannot finish.
//! * **Deterministic replay.** A failing seed is a reproducer: pass it
//!   to [`replay`] (the scheduler's RNG is the only nondeterminism, so
//!   deterministic task code replays exactly).
//! * **Create checked state inside the closure.** The closure runs once
//!   per seed and must start from fresh state each time; shim atomics
//!   and mutexes built outside it would leak state across seeds.
//!
//! Failure modes reported per seed: task panic (assertion failures —
//! the usual signal), deadlock (every live task blocked, e.g. an ABBA
//! lock cycle), and step-budget exhaustion (livelock guard).

#![warn(missing_docs)]

mod runtime;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// How many seeds to try.
    pub seeds: u64,
    /// First seed (seeds run `first_seed..first_seed + seeds`).
    pub first_seed: u64,
    /// Per-execution scheduling-step budget; exceeding it is reported as
    /// a failure (livelock guard).
    pub max_steps: u64,
    /// Max times the scheduler may preempt a *runnable* task (switches at
    /// blocking points are free). `None` = unbounded. Small bounds (2–3)
    /// concentrate the search where most real bugs live.
    pub preemption_bound: Option<u64>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seeds: 64,
            first_seed: 0,
            max_steps: 100_000,
            preemption_bound: None,
        }
    }
}

/// Why a seed's execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A task panicked (assertion failure or explicit panic).
    Panic {
        /// Task id (0 is the root task).
        task: usize,
        /// The panic's location and message, as captured by the hook.
        message: String,
    },
    /// Every unfinished task was blocked — a lock or join cycle.
    Deadlock {
        /// Ids of the blocked tasks.
        blocked: Vec<usize>,
    },
    /// The execution exceeded its scheduling-step budget.
    StepBudgetExhausted {
        /// The budget that was exceeded.
        max_steps: u64,
    },
}

/// A failing seed and what went wrong under it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The seed that produced the failing interleaving; feed it to
    /// [`replay`] to reproduce.
    pub seed: u64,
    /// What went wrong.
    pub kind: FailureKind,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Panic { task, message } => {
                write!(f, "seed {}: task {} panicked: {}", self.seed, task, message)
            }
            FailureKind::Deadlock { blocked } => {
                write!(
                    f,
                    "seed {}: deadlock (blocked tasks {:?})",
                    self.seed, blocked
                )
            }
            FailureKind::StepBudgetExhausted { max_steps } => {
                write!(
                    f,
                    "seed {}: exceeded {} scheduling steps",
                    self.seed, max_steps
                )
            }
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Seeds actually executed (stops early at the first failure).
    pub seeds_run: u64,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic with the failure's seed and reason, if one was found. For
    /// tests asserting a property *holds*.
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            panic!("em-sched found a failing interleaving: {failure}");
        }
    }
}

/// Run `f` once per seed under the scheduler; stop at the first failing
/// interleaving.
pub fn explore<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    runtime::install_panic_hook();
    let f = Arc::new(f);
    let mut seeds_run = 0;
    for seed in config.first_seed..config.first_seed.saturating_add(config.seeds) {
        let exec = runtime::Execution::new(seed, &config);
        let task = Arc::clone(&f);
        seeds_run += 1;
        if let Some(kind) = exec.run(Box::new(move || task())) {
            return Report {
                seeds_run,
                failure: Some(Failure { seed, kind }),
            };
        }
    }
    Report {
        seeds_run,
        failure: None,
    }
}

/// [`explore`] with the default [`Config`] (64 seeds).
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    explore(Config::default(), f)
}

/// Re-run exactly one seed's interleaving (the reproducer for a failure
/// reported by [`explore`]).
pub fn replay<F>(seed: u64, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    explore(
        Config {
            seeds: 1,
            first_seed: seed,
            ..Config::default()
        },
        f,
    )
}
