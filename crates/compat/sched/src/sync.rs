//! Instrumented shared-state shims: every operation is a scheduling
//! point, so the checker can interleave tasks *between* any two shared
//! accesses.
//!
//! The atomic shims deliberately take **no `Ordering` argument**: the
//! scheduler serializes tasks, so an execution only ever explores
//! sequentially-consistent interleavings and offering per-call orderings
//! would imply modeling power em-sched does not have (see DESIGN §11 for
//! the comparison with loom). The real operation runs with `SeqCst` on a
//! real `std` atomic, so the shims remain correct — just unremarkable —
//! when used outside an execution.

use std::cell::UnsafeCell;
use std::sync::atomic::{self, Ordering};
use std::sync::OnceLock;

use crate::runtime::{current_ctx, yield_point};

macro_rules! atomic_shim {
    ($(#[$doc:meta])* $name:ident, $std:ty, $val:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $name($std);

        impl $name {
            /// A new shim atomic holding `v`.
            pub const fn new(v: $val) -> Self {
                Self(<$std>::new(v))
            }

            /// Read the value (a scheduling point).
            pub fn load(&self) -> $val {
                yield_point();
                // ordering: SeqCst — the shim models sequential
                // consistency only, so every real operation uses the
                // strongest ordering; weaker orderings are out of scope.
                self.0.load(Ordering::SeqCst)
            }

            /// Write the value (a scheduling point).
            pub fn store(&self, v: $val) {
                yield_point();
                self.0.store(v, Ordering::SeqCst)
            }

            /// Atomically replace the value (a scheduling point).
            pub fn swap(&self, v: $val) -> $val {
                yield_point();
                self.0.swap(v, Ordering::SeqCst)
            }

            /// Atomically add (a scheduling point).
            pub fn fetch_add(&self, v: $val) -> $val {
                yield_point();
                self.0.fetch_add(v, Ordering::SeqCst)
            }

            /// Atomically subtract (a scheduling point).
            pub fn fetch_sub(&self, v: $val) -> $val {
                yield_point();
                self.0.fetch_sub(v, Ordering::SeqCst)
            }

            /// Atomically take the maximum (a scheduling point).
            pub fn fetch_max(&self, v: $val) -> $val {
                yield_point();
                self.0.fetch_max(v, Ordering::SeqCst)
            }

            /// Compare-and-exchange (a scheduling point).
            pub fn compare_exchange(&self, expected: $val, new: $val) -> Result<$val, $val> {
                yield_point();
                self.0
                    .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        }
    };
}

atomic_shim!(
    /// Scheduler-instrumented `AtomicU64`.
    AtomicU64,
    atomic::AtomicU64,
    u64
);
atomic_shim!(
    /// Scheduler-instrumented `AtomicUsize`.
    AtomicUsize,
    atomic::AtomicUsize,
    usize
);

/// Scheduler-instrumented `AtomicBool`.
#[derive(Default)]
pub struct AtomicBool(atomic::AtomicBool);

impl AtomicBool {
    /// A new shim atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        Self(atomic::AtomicBool::new(v))
    }

    /// Read the value (a scheduling point).
    pub fn load(&self) -> bool {
        yield_point();
        self.0.load(Ordering::SeqCst)
    }

    /// Write the value (a scheduling point).
    pub fn store(&self, v: bool) {
        yield_point();
        self.0.store(v, Ordering::SeqCst)
    }

    /// Atomically replace the value (a scheduling point).
    pub fn swap(&self, v: bool) -> bool {
        yield_point();
        self.0.swap(v, Ordering::SeqCst)
    }
}

/// Scheduler-instrumented mutex. Inside an execution, contention is
/// modeled by the scheduler (a blocked task hands the token on, and an
/// ABBA cycle is reported as a deadlock failure rather than hanging the
/// test). There is no poisoning: a panicked task fails the whole seed.
pub struct Mutex<T> {
    /// Lock id within the owning execution, registered on first use.
    id: OnceLock<usize>,
    /// Fallback exclusion for use outside any execution.
    fallback: std::sync::Mutex<()>,
    value: UnsafeCell<T>,
}

// safety: inside an execution the scheduler token serializes every
// access between acquire_lock/release_lock; outside one the `fallback`
// std mutex provides real exclusion. Either way `&mut T` handed out by
// `lock()` is unique for the guard's lifetime.
unsafe impl<T: Send> Sync for Mutex<T> {}
// safety: moving the mutex moves the T it owns, same as std's Mutex.
unsafe impl<T: Send> Send for Mutex<T> {}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'m, T> {
    mutex: &'m Mutex<T>,
    /// Held only outside executions.
    _fallback: Option<std::sync::MutexGuard<'m, ()>>,
    /// (execution task id, lock id) when held inside an execution.
    scheduled: Option<(usize, usize)>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            id: OnceLock::new(),
            fallback: std::sync::Mutex::new(()),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the mutex (a scheduling point; may block in scheduler
    /// terms). Unlike `std`, this cannot return a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current_ctx() {
            Some((exec, me)) => {
                let id = *self.id.get_or_init(|| exec.register_lock());
                exec.acquire_lock(me, id);
                MutexGuard {
                    mutex: self,
                    _fallback: None,
                    scheduled: Some((me, id)),
                }
            }
            None => {
                let guard = self
                    .fallback
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                MutexGuard {
                    mutex: self,
                    _fallback: Some(guard),
                    scheduled: None,
                }
            }
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((me, id)) = self.scheduled {
            if let Some((exec, _)) = current_ctx() {
                exec.release_lock(me, id);
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // safety: the guard proves exclusion (scheduler token inside an
        // execution, fallback std guard outside), so no aliasing &mut
        // exists while this & borrow lives.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // safety: as in Deref — the guard is exclusive, and &mut self
        // makes this the only path to the cell.
        unsafe { &mut *self.mutex.value.get() }
    }
}
