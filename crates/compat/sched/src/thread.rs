//! Task spawning inside an execution — the shim for `std::thread`.

use std::sync::{Arc, Mutex};

use crate::runtime::{self, current_ctx};

/// Handle to a task spawned with [`spawn`]; [`join`](JoinHandle::join)
/// returns the closure's value.
pub struct JoinHandle<T> {
    task_id: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawn a task inside the current execution. Panics if called outside
/// one — em-sched tasks are *model-checked* threads; code paths that
/// spawn real threads don't belong under the checker.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, me) = current_ctx()
        .expect("em_sched::thread::spawn outside an execution; use explore/check/replay");
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let task_id = exec.spawn_task(Box::new(move || {
        let value = f();
        *slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
    }));
    // Spawn is a scheduling point: the child may run before the parent's
    // next instruction, exactly like a real OS thread.
    exec.yield_point(me);
    JoinHandle { task_id, result }
}

impl<T> JoinHandle<T> {
    /// Wait for the task to finish and take its return value. Returns
    /// `None` when the task panicked (the execution is failing then —
    /// the scheduler records the panic as the seed's failure).
    pub fn join(self) -> Option<T> {
        let (exec, me) = current_ctx().expect("em_sched::JoinHandle::join outside an execution");
        exec.join_task(me, self.task_id);
        self.result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// A pure scheduling point: lets the scheduler preempt here without any
/// shared access. No-op outside an execution.
pub fn yield_now() {
    runtime::yield_point();
}
