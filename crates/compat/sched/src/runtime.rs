//! The serialized token-passing scheduler behind `em-sched`.
//!
//! Checked code runs on real OS threads, but a token (the `current`
//! field of [`ExecState`]) guarantees at most one task thread executes
//! user code at any instant. Every shim operation is a *yield point*
//! where the seeded RNG may hand the token to another runnable task —
//! so an execution is exactly one interleaving, chosen deterministically
//! by the seed, and replaying a seed replays the interleaving.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::{Config, FailureKind};

/// Panic payload used to tear a task out of a doomed execution (after a
/// failure is recorded, every other task unwinds via this signal). Never
/// surfaces to user code: the task wrapper swallows it.
pub(crate) struct AbortSignal;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskState {
    Runnable,
    /// Waiting for the given task to finish.
    BlockedJoin(usize),
    /// Waiting for the given shim mutex to be released.
    BlockedLock(usize),
    Finished,
}

pub(crate) struct LockInfo {
    held_by: Option<usize>,
}

pub(crate) struct ExecState {
    /// xorshift64* state; never zero.
    rng: u64,
    steps: u64,
    max_steps: u64,
    preemptions: u64,
    preemption_bound: Option<u64>,
    /// The task holding the execution token.
    current: usize,
    tasks: Vec<TaskState>,
    locks: Vec<LockInfo>,
    failure: Option<FailureKind>,
    /// Set once a failure is recorded; every waiting task unwinds.
    abort: bool,
}

impl ExecState {
    fn next_rand(&mut self) -> u64 {
        // xorshift64*; the state is seeded via splitmix64 and never zero.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn runnable(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TaskState::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn blocked(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TaskState::BlockedJoin(_) | TaskState::BlockedLock(_)))
            .map(|(i, _)| i)
            .collect()
    }

    fn pick(&mut self, cands: &[usize]) -> usize {
        cands[(self.next_rand() % cands.len() as u64) as usize]
    }

    fn fail(&mut self, kind: FailureKind) {
        if self.failure.is_none() {
            self.failure = Some(kind);
        }
        self.abort = true;
    }
}

/// One seeded execution: the shared scheduler state plus the OS-thread
/// handles of its tasks.
pub(crate) struct Execution {
    pub(crate) state: Mutex<ExecState>,
    pub(crate) cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// (execution, task id) for threads running inside an execution.
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
    /// True while a task runs user code; the panic hook stays quiet then.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
    /// The panic hook's capture of the last in-task panic (location+msg).
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The execution + task id of the calling thread, if it is a task.
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Install (once per process) a panic hook that suppresses the default
/// stderr backtrace for panics *inside* checked tasks — expected-failure
/// tests would otherwise spray scary output — while recording the
/// location+message so the [`crate::Failure`] can carry it. Panics on
/// non-task threads go to the previous hook untouched.
pub(crate) fn install_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_TASK.with(Cell::get) {
                LAST_PANIC.with(|p| *p.borrow_mut() = Some(info.to_string()));
            } else {
                prev(info);
            }
        }));
    });
}

impl Execution {
    pub(crate) fn new(seed: u64, cfg: &Config) -> Arc<Execution> {
        let mut rng = splitmix64(seed);
        if rng == 0 {
            rng = 0x9E37_79B9_7F4A_7C15;
        }
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                rng,
                steps: 0,
                max_steps: cfg.max_steps,
                preemptions: 0,
                preemption_bound: cfg.preemption_bound,
                current: 0,
                tasks: Vec::new(),
                locks: Vec::new(),
                failure: None,
                abort: false,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // The scheduler never leaves its own state inconsistent on panic
        // (AbortSignal is only thrown between mutations), so poison is
        // recoverable.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register and start a new task running `f`. Returns its id. The
    /// spawned thread waits for the token before touching user code.
    pub(crate) fn spawn_task(self: &Arc<Execution>, f: Box<dyn FnOnce() + Send>) -> usize {
        let id = {
            let mut st = self.lock_state();
            st.tasks.push(TaskState::Runnable);
            st.tasks.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("em-sched-task-{id}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
                {
                    let mut st = exec.lock_state();
                    loop {
                        if st.abort {
                            exec.finish_task_locked(st, id);
                            return;
                        }
                        if st.current == id && st.tasks[id] == TaskState::Runnable {
                            break;
                        }
                        st = exec
                            .cv
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
                IN_TASK.with(|c| c.set(true));
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                IN_TASK.with(|c| c.set(false));
                if let Err(payload) = result {
                    if !payload.is::<AbortSignal>() {
                        let message = LAST_PANIC
                            .with(|p| p.borrow_mut().take())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "panic with non-string payload".to_string());
                        let mut st = exec.lock_state();
                        st.fail(FailureKind::Panic { task: id, message });
                    }
                }
                let st = exec.lock_state();
                exec.finish_task_locked(st, id);
            })
            .expect("em-sched: OS refused to spawn a task thread");
        self.handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(handle);
        id
    }

    /// Mark `me` finished, wake joiners, and pass the token on. Called
    /// with the state lock held; consumes it. Detects the end of the
    /// execution (all finished) and deadlocks among the survivors.
    fn finish_task_locked(&self, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize) {
        st.tasks[me] = TaskState::Finished;
        for s in st.tasks.iter_mut() {
            if *s == TaskState::BlockedJoin(me) {
                *s = TaskState::Runnable;
            }
        }
        let cands = st.runnable();
        if !cands.is_empty() {
            let next = st.pick(&cands);
            st.current = next;
        } else {
            let blocked = st.blocked();
            if !blocked.is_empty() && !st.abort {
                st.fail(FailureKind::Deadlock { blocked });
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Unwind the calling task out of the execution. The state lock must
    /// NOT be held.
    fn abort_current_task(&self) -> ! {
        self.cv.notify_all();
        panic::panic_any(AbortSignal);
    }

    /// Wait (state lock held on entry, reacquired across waits) until the
    /// token comes back to `me`; unwinds if the execution aborted.
    fn wait_for_token(&self, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.abort {
                drop(st);
                self.abort_current_task();
            }
            if st.current == me && st.tasks[me] == TaskState::Runnable {
                return;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A scheduling point: charge one step, then maybe hand the token to
    /// another runnable task (bounded by `preemption_bound`).
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.abort_current_task();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let max_steps = st.max_steps;
            st.fail(FailureKind::StepBudgetExhausted { max_steps });
            drop(st);
            self.abort_current_task();
        }
        let can_preempt = st.preemption_bound.is_none_or(|b| st.preemptions < b);
        if can_preempt {
            let cands = st.runnable();
            let next = st.pick(&cands);
            if next != me {
                st.preemptions += 1;
                st.current = next;
                self.cv.notify_all();
                self.wait_for_token(st, me);
            }
        }
    }

    /// Block `me` with `make_blocked`, hand the token to someone runnable
    /// (deadlock if nobody is), and wait to be unblocked and rescheduled.
    fn block_current(&self, me: usize, make_blocked: TaskState) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.abort_current_task();
        }
        st.tasks[me] = make_blocked;
        let cands = st.runnable();
        if cands.is_empty() {
            let blocked = st.blocked();
            st.fail(FailureKind::Deadlock { blocked });
            drop(st);
            self.abort_current_task();
        }
        let next = st.pick(&cands);
        st.current = next;
        self.cv.notify_all();
        self.wait_for_token(st, me);
    }

    /// Join shim: wait until `target` finishes.
    pub(crate) fn join_task(&self, me: usize, target: usize) {
        self.yield_point(me);
        loop {
            let st = self.lock_state();
            if st.abort {
                drop(st);
                self.abort_current_task();
            }
            if st.tasks[target] == TaskState::Finished {
                return;
            }
            drop(st);
            self.block_current(me, TaskState::BlockedJoin(target));
        }
    }

    /// Register a shim mutex; returns its lock id.
    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.lock_state();
        st.locks.push(LockInfo { held_by: None });
        st.locks.len() - 1
    }

    /// Acquire shim-mutex `lock` for `me`, blocking (in scheduler terms)
    /// while another task holds it.
    pub(crate) fn acquire_lock(&self, me: usize, lock: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.abort {
                drop(st);
                self.abort_current_task();
            }
            if st.locks[lock].held_by.is_none() {
                st.locks[lock].held_by = Some(me);
                return;
            }
            drop(st);
            self.block_current(me, TaskState::BlockedLock(lock));
        }
    }

    /// Release shim-mutex `lock`. Runs from guard drops — including drops
    /// during an `AbortSignal` unwind — so it must never panic.
    pub(crate) fn release_lock(&self, me: usize, lock: usize) {
        let mut st = self.lock_state();
        debug_assert_eq!(st.locks[lock].held_by, Some(me));
        st.locks[lock].held_by = None;
        for s in st.tasks.iter_mut() {
            if *s == TaskState::BlockedLock(lock) {
                // Woken tasks re-contend in acquire_lock's loop.
                *s = TaskState::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Drive one execution to completion: spawn the root task, then join
    /// every task thread (tasks spawned later are joined too). Returns
    /// the recorded failure, if any.
    pub(crate) fn run(
        self: &Arc<Execution>,
        root: Box<dyn FnOnce() + Send>,
    ) -> Option<FailureKind> {
        self.spawn_task(root);
        loop {
            let handle = self
                .handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        self.lock_state().failure.take()
    }
}

/// A scheduling point for the calling thread; no-op outside an execution
/// (shims stay usable — and real — in ordinary code).
pub(crate) fn yield_point() {
    if let Some((exec, me)) = current_ctx() {
        exec.yield_point(me);
    }
}
