//! `em-prof`: offline analysis of `em-obs` JSONL traces.
//!
//! Where `em-obs` records what a run did, this crate answers what that
//! recording *means*: where the time and memory went, what the training
//! loop converged to, and whether a new run regressed against a baseline.
//! Four layers, each usable on its own:
//!
//! * [`reader`] — parse a `--metrics-out` JSONL file back into typed
//!   [`em_obs::Event`]s, with line-numbered errors.
//! * [`tree`] / [`flame`] — rebuild the span tree and aggregate it into
//!   flamegraph-style rows (calls, total/self wall time, heap deltas).
//! * [`manifest`] — boil a whole trace down to one [`manifest::RunManifest`]:
//!   seed, wall time, peak heap, optimizer steps, per-epoch training
//!   telemetry, pseudo-label quality, and final/best F1.
//! * [`ops`] — attribute tape-profiler `op_stats` events to their owning
//!   phase: per-(phase, op) call counts, forward/backward wall time,
//!   element counts, and allocated bytes.
//! * [`diff`] / [`report`] — compare two manifests under configurable
//!   [`diff::Thresholds`] (the perf-regression gate `scripts/ci.sh` runs),
//!   and render TTY reports plus the machine-readable `BENCH_report.json`.
//! * [`canonical`] — the timing-stripped canonical form of a trace, and
//!   the byte-exact equivalence check behind the `--threads N` vs
//!   `--threads 1` determinism gate (`promptem report --diff --canonical`).
//! * [`stream`] / [`live`] — tail a trace while it is being written
//!   (partial-last-line tolerant) and fold it into the `promptem top`
//!   dashboard frame.
//! * [`history`] — the append-only `BENCH_history.jsonl` ledger of
//!   distilled runs, with a rolling-median trend gate
//!   (`promptem history --gate`).
//!
//! The CLI front ends are `promptem report`, `promptem top`, and
//! `promptem history` (see `crates/cli`).

#![warn(missing_docs)]

pub mod canonical;
pub mod diff;
pub mod flame;
pub mod history;
pub mod live;
pub mod manifest;
pub mod ops;
pub mod reader;
pub mod report;
pub mod stream;
pub mod tree;

pub use canonical::{canonical_lines, first_divergence, Divergence};
pub use diff::{diff, DiffReport, Thresholds};
pub use flame::FlameRow;
pub use history::HistoryEntry;
pub use live::LiveState;
pub use manifest::RunManifest;
pub use ops::OpRow;
pub use reader::{load_trace, parse_trace};
pub use stream::TraceStream;
pub use tree::SpanTree;
