//! Render a run manifest for humans (TTY) and machines
//! (`BENCH_report.json`).
//!
//! The JSON schema is versioned via the `schema` field so downstream
//! tooling can reject files it doesn't understand:
//!
//! ```json
//! {
//!   "schema": "promptem-bench-report/v2",
//!   "seed": 42, "events": 1234,
//!   "total_wall_us": 0, "peak_heap_bytes": 0,
//!   "optimizer_steps": 0, "pretrain_steps": 0, "epochs": 0,
//!   "best_valid_f1": null, "test_f1": null, "final_train_loss": null,
//!   "pseudo_selected": 0, "pseudo_tpr": null, "pseudo_tnr": null,
//!   "pruned": 0, "non_finite_events": 0,
//!   "ckpt_saves": 0, "ckpt_restores": 0,
//!   "recovered_batches": 0, "io_retries": 0,
//!   "serve_requests": 0, "serve_ok": 0, "serve_rejects": 0,
//!   "serve_restarts": 0, "serve_drains": 0,
//!   "phases": [
//!     {"name": "pretrain", "calls": 1, "total_us": 0, "self_us": 0,
//!      "heap_delta": 0, "heap_peak": 0}
//!   ],
//!   "ops": [
//!     {"phase": "pretrain", "op": "matmul", "fwd_calls": 0, "fwd_us": 0,
//!      "bwd_calls": 0, "bwd_us": 0, "elems": 0, "bytes": 0}
//!   ]
//! }
//! ```
//!
//! v2 added the `ops` array (tape-profiler attribution; empty when the
//! run was traced without `--op-profile`).

use crate::manifest::RunManifest;
use std::fmt::Write as _;

/// The `schema` field value this module emits.
pub const BENCH_REPORT_SCHEMA: &str = "promptem-bench-report/v2";

fn push_opt(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Serialize the manifest as a `BENCH_report.json` body (pretty-printed,
/// trailing newline, key order fixed so reports diff cleanly).
pub fn bench_report_json(m: &RunManifest) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{BENCH_REPORT_SCHEMA}\",");
    let _ = writeln!(s, "  \"seed\": {},", m.seed);
    let _ = writeln!(s, "  \"events\": {},", m.events);
    let _ = writeln!(s, "  \"total_wall_us\": {},", m.total_wall_us);
    let _ = writeln!(s, "  \"peak_heap_bytes\": {},", m.peak_heap);
    let _ = writeln!(s, "  \"optimizer_steps\": {},", m.optimizer_steps);
    let _ = writeln!(s, "  \"pretrain_steps\": {},", m.pretrain_steps);
    let _ = writeln!(s, "  \"epochs\": {},", m.epochs);
    s.push_str("  \"best_valid_f1\": ");
    push_opt(&mut s, m.best_valid_f1);
    s.push_str(",\n  \"test_f1\": ");
    push_opt(&mut s, m.test_f1);
    s.push_str(",\n  \"final_train_loss\": ");
    push_opt(&mut s, m.final_train_loss);
    let _ = writeln!(s, ",\n  \"pseudo_selected\": {},", m.pseudo_selected);
    s.push_str("  \"pseudo_tpr\": ");
    push_opt(&mut s, m.pseudo_tpr);
    s.push_str(",\n  \"pseudo_tnr\": ");
    push_opt(&mut s, m.pseudo_tnr);
    let _ = writeln!(s, ",\n  \"pruned\": {},", m.pruned);
    let _ = writeln!(s, "  \"non_finite_events\": {},", m.non_finite_events);
    let _ = writeln!(s, "  \"ckpt_saves\": {},", m.ckpt_saves);
    let _ = writeln!(s, "  \"ckpt_restores\": {},", m.ckpt_restores);
    let _ = writeln!(s, "  \"recovered_batches\": {},", m.recovered_batches);
    let _ = writeln!(s, "  \"io_retries\": {},", m.io_retries);
    let _ = writeln!(s, "  \"serve_requests\": {},", m.serve_requests);
    let _ = writeln!(s, "  \"serve_ok\": {},", m.serve_ok);
    let _ = writeln!(s, "  \"serve_rejects\": {},", m.serve_rejects);
    let _ = writeln!(s, "  \"serve_restarts\": {},", m.serve_restarts);
    let _ = writeln!(s, "  \"serve_drains\": {},", m.serve_drains);
    s.push_str("  \"phases\": [");
    for (i, p) in m.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"name\": \"{}\", \"calls\": {}, \"total_us\": {}, \"self_us\": {}, \"heap_delta\": {}, \"heap_peak\": {}}}",
            p.name, p.calls, p.total_us, p.self_us, p.heap_delta, p.heap_peak
        );
    }
    if !m.phases.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"ops\": [");
    for (i, o) in m.ops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"phase\": \"{}\", \"op\": \"{}\", \"fwd_calls\": {}, \"fwd_us\": {}, \"bwd_calls\": {}, \"bwd_us\": {}, \"elems\": {}, \"bytes\": {}}}",
            o.phase, o.op, o.fwd_calls, o.fwd_us, o.bwd_calls, o.bwd_us, o.elems, o.bytes
        );
    }
    if !m.ops.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Render the TTY report `promptem report` prints: a run summary
/// followed by the top-`top` profile rows.
pub fn render_report(m: &RunManifest, top: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "run seed {} · {} events · {:.1}ms wall · peak heap {}",
        m.seed,
        m.events,
        m.total_wall_us as f64 / 1e3,
        em_obs::alloc::format_bytes(m.peak_heap as usize),
    );
    if let Some(meta) = &m.meta {
        let _ = writeln!(
            s,
            "identity: config {} · git {} · {} build",
            meta.config,
            meta.git_sha.as_deref().unwrap_or("unknown"),
            meta.build,
        );
    }
    let _ = writeln!(
        s,
        "training: {} optimizer steps ({} pretrain + {} fine-tune) over {} epochs",
        m.optimizer_steps, m.pretrain_steps, m.epoch_batches, m.epochs
    );
    let fmt_f1 = |v: Option<f64>| match v {
        Some(v) => format!("{v:.2}"),
        None => "-".to_string(),
    };
    let _ = writeln!(
        s,
        "quality: best valid F1 {} · test F1 {} · final loss {}",
        fmt_f1(m.best_valid_f1),
        fmt_f1(m.test_f1),
        match m.final_train_loss {
            Some(l) => format!("{l:.4}"),
            None => "-".to_string(),
        },
    );
    let _ = writeln!(
        s,
        "self-training: {} pseudo-labels (TPR {} / TNR {}) · {} pruned",
        m.pseudo_selected,
        fmt_f1(m.pseudo_tpr),
        fmt_f1(m.pseudo_tnr),
        m.pruned
    );
    if m.ckpt_saves + m.ckpt_restores + m.recovered_batches + m.io_retries > 0 {
        let _ = writeln!(
            s,
            "resilience: {} checkpoints saved · {} restores · {} batches recovered · {} io retries",
            m.ckpt_saves, m.ckpt_restores, m.recovered_batches, m.io_retries
        );
    }
    if m.serve_requests + m.serve_rejects + m.serve_restarts + m.serve_drains > 0 {
        let lat = match m.serve_latency {
            Some((p50, p95, p99)) => format!(
                " · p50/p95/p99 {:.1}/{:.1}/{:.1}ms",
                p50 * 1e3,
                p95 * 1e3,
                p99 * 1e3
            ),
            None => String::new(),
        };
        let _ = writeln!(
            s,
            "serving: {} requests ({} ok) · {} rejected · {} worker restarts · {} drains{}",
            m.serve_requests, m.serve_ok, m.serve_rejects, m.serve_restarts, m.serve_drains, lat
        );
    }
    if m.non_finite_events > 0 {
        let _ = writeln!(
            s,
            "WARNING: {} non-finite sanitizer events",
            m.non_finite_events
        );
    }
    if m.unclosed_spans > 0 || m.orphan_spans > 0 {
        let _ = writeln!(
            s,
            "WARNING: partial trace — {} unclosed span(s), {} orphaned span(s); timings are reconstructed",
            m.unclosed_spans, m.orphan_spans
        );
    }
    s.push('\n');
    s.push_str(&crate::flame::render_table(&m.phases, top));
    if !m.ops.is_empty() {
        s.push('\n');
        s.push_str(&crate::ops::render_tables(&m.ops, top));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flame::FlameRow;

    fn sample() -> RunManifest {
        RunManifest {
            seed: 42,
            events: 10,
            total_wall_us: 2_000,
            peak_heap: 4096,
            pretrain_steps: 5,
            epoch_batches: 8,
            optimizer_steps: 13,
            epochs: 2,
            best_valid_f1: Some(81.25),
            final_train_loss: Some(0.5),
            test_f1: None,
            pseudo_selected: 6,
            pseudo_tpr: Some(1.0),
            pseudo_tnr: None,
            pruned: 3,
            non_finite_events: 0,
            ckpt_saves: 2,
            ckpt_restores: 0,
            recovered_batches: 0,
            io_retries: 0,
            serve_requests: 0,
            serve_ok: 0,
            serve_rejects: 0,
            serve_restarts: 0,
            serve_drains: 0,
            serve_latency: None,
            unclosed_spans: 0,
            orphan_spans: 0,
            meta: None,
            phases: vec![FlameRow {
                name: "tune".into(),
                calls: 1,
                total_us: 1500,
                self_us: 900,
                heap_delta: 256,
                heap_peak: 4096,
            }],
            ops: vec![crate::ops::OpRow {
                phase: "tune".into(),
                op: "matmul".into(),
                fwd_calls: 40,
                fwd_us: 700,
                bwd_calls: 20,
                bwd_us: 300,
                elems: 65536,
                bytes: 262144,
            }],
        }
    }

    #[test]
    fn json_carries_schema_and_all_fields() {
        let json = bench_report_json(&sample());
        for needle in [
            "\"schema\": \"promptem-bench-report/v2\"",
            "\"seed\": 42",
            "\"total_wall_us\": 2000",
            "\"peak_heap_bytes\": 4096",
            "\"optimizer_steps\": 13",
            "\"best_valid_f1\": 81.25",
            "\"test_f1\": null",
            "\"pseudo_selected\": 6",
            "\"name\": \"tune\"",
            "\"self_us\": 900",
            "\"ckpt_saves\": 2",
            "\"op\": \"matmul\"",
            "\"fwd_us\": 700",
            "\"bwd_calls\": 20",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn json_round_trips_through_the_obs_parser_style_check() {
        // Not a full JSON parser here — just the structural invariants a
        // consumer relies on: balanced braces/brackets, one object.
        let json = bench_report_json(&sample());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        let empty = bench_report_json(&RunManifest::default());
        assert!(empty.contains("\"phases\": []"), "{empty}");
        assert!(empty.contains("\"ops\": []"), "{empty}");
    }

    #[test]
    fn tty_report_summarizes_and_tabulates() {
        let text = render_report(&sample(), 10);
        assert!(text.contains("run seed 42"), "{text}");
        assert!(text.contains("13 optimizer steps"), "{text}");
        assert!(text.contains("best valid F1 81.25"), "{text}");
        assert!(text.contains("tune"), "{text}");
        assert!(text.contains("ops — tune"), "{text}");
        assert!(text.contains("matmul"), "{text}");
        assert!(!text.contains("WARNING"), "{text}");
    }

    #[test]
    fn tty_report_surfaces_identity_and_trace_health() {
        let mut m = sample();
        m.meta = Some(crate::manifest::MetaInfo {
            config: "abc123".into(),
            git_sha: None,
            build: "release".into(),
            schema: 1,
        });
        m.unclosed_spans = 3;
        m.orphan_spans = 1;
        let text = render_report(&m, 10);
        assert!(
            text.contains("identity: config abc123 · git unknown · release build"),
            "{text}"
        );
        assert!(
            text.contains("WARNING: partial trace — 3 unclosed span(s), 1 orphaned span(s)"),
            "{text}"
        );
    }

    #[test]
    fn serving_line_appears_only_for_serving_runs() {
        // A pure-training manifest stays quiet...
        let text = render_report(&sample(), 10);
        assert!(!text.contains("serving:"), "{text}");

        // ...a serving one gets the full row, latency included.
        let mut m = sample();
        m.serve_requests = 40;
        m.serve_ok = 37;
        m.serve_rejects = 3;
        m.serve_restarts = 2;
        m.serve_drains = 1;
        m.serve_latency = Some((0.002, 0.010, 0.0305));
        let text = render_report(&m, 10);
        assert!(
            text.contains(
                "serving: 40 requests (37 ok) · 3 rejected · 2 worker restarts · 1 drains"
            ),
            "{text}"
        );
        assert!(text.contains("p50/p95/p99 2.0/10.0/30.5ms"), "{text}");

        let json = bench_report_json(&m);
        for needle in [
            "\"serve_requests\": 40",
            "\"serve_ok\": 37",
            "\"serve_rejects\": 3",
            "\"serve_restarts\": 2",
            "\"serve_drains\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn tty_report_omits_op_tables_without_profiling() {
        let mut m = sample();
        m.ops.clear();
        let text = render_report(&m, 10);
        assert!(!text.contains("ops —"), "{text}");
    }
}
