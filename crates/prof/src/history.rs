//! The cross-run bench ledger: `BENCH_history.jsonl`.
//!
//! Where `BENCH_report.json` is a single point and `--diff` compares two
//! chosen traces, the history file is a trajectory: one flat JSON line
//! per run, distilled from its [`RunManifest`] and keyed by the
//! `run_meta` identity (seed, config fingerprint, git SHA, build
//! profile). `promptem history --gate` compares the newest entry against
//! a rolling baseline — the median of the previous `window` entries —
//! under the same [`Thresholds`] the pairwise diff uses, so a slow drift
//! that each individual PR slips under still trips the gate once the
//! trend crosses the slack.
//!
//! Only wall, heap, and the two F1 figures gate. Optimizer steps are
//! *recorded* but deliberately not gated across runs: the ledger spans
//! commits that legitimately change step counts, unlike a same-commit
//! base/new diff where zero step drift is the right default.

use crate::diff::{self, DiffReport, Thresholds};
use crate::manifest::RunManifest;
use em_obs::event::{parse_flat_object, JsonVal};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// The `schema` field value of every history line.
pub const HISTORY_SCHEMA: &str = "promptem-bench-history/v1";

/// One distilled run in the ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistoryEntry {
    /// The run seed.
    pub seed: u64,
    /// Config fingerprint from `run_meta` (empty when the trace predates
    /// the event).
    pub config: String,
    /// Git SHA from `run_meta`, when the traced binary ran in a checkout.
    pub git_sha: Option<String>,
    /// Build profile from `run_meta` (`"debug"`/`"release"`/`"unknown"`).
    pub build: String,
    /// Events in the source trace.
    pub events: u64,
    /// Trace wall coverage, µs.
    pub total_wall_us: u64,
    /// Peak heap, bytes (0 without the counting allocator).
    pub peak_heap: u64,
    /// Total optimizer steps (recorded, not gated).
    pub optimizer_steps: u64,
    /// Finished epochs.
    pub epochs: u64,
    /// Best validation F1 (percent).
    pub best_valid_f1: Option<f64>,
    /// Test F1 (percent).
    pub test_f1: Option<f64>,
    /// Pseudo-labels selected.
    pub pseudo_selected: u64,
    /// Sanitizer findings (health flag).
    pub non_finite_events: u64,
    /// Unclosed spans in the source trace (health flag).
    pub unclosed_spans: u64,
    /// Orphaned spans in the source trace (health flag).
    pub orphan_spans: u64,
}

/// Distill a manifest (and its `run_meta`, if the trace carried one)
/// into a ledger entry.
pub fn distill(m: &RunManifest) -> HistoryEntry {
    let (config, git_sha, build) = match &m.meta {
        Some(meta) => (
            meta.config.clone(),
            meta.git_sha.clone(),
            meta.build.clone(),
        ),
        None => (String::new(), None, "unknown".to_string()),
    };
    HistoryEntry {
        seed: m.seed,
        config,
        git_sha,
        build,
        events: m.events,
        total_wall_us: m.total_wall_us,
        peak_heap: m.peak_heap,
        optimizer_steps: m.optimizer_steps,
        epochs: m.epochs,
        best_valid_f1: m.best_valid_f1,
        test_f1: m.test_f1,
        pseudo_selected: m.pseudo_selected,
        non_finite_events: m.non_finite_events,
        unclosed_spans: m.unclosed_spans,
        orphan_spans: m.orphan_spans,
    }
}

fn push_str_field(out: &mut String, key: &str, v: &str) {
    let _ = write!(out, ",\"{key}\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl HistoryEntry {
    /// Encode as one flat JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(s, "{{\"schema\":\"{HISTORY_SCHEMA}\"");
        let _ = write!(s, ",\"seed\":{}", self.seed);
        push_str_field(&mut s, "config", &self.config);
        match &self.git_sha {
            Some(sha) => push_str_field(&mut s, "git_sha", sha),
            None => s.push_str(",\"git_sha\":null"),
        }
        push_str_field(&mut s, "build", &self.build);
        let _ = write!(s, ",\"events\":{}", self.events);
        let _ = write!(s, ",\"total_wall_us\":{}", self.total_wall_us);
        let _ = write!(s, ",\"peak_heap\":{}", self.peak_heap);
        let _ = write!(s, ",\"optimizer_steps\":{}", self.optimizer_steps);
        let _ = write!(s, ",\"epochs\":{}", self.epochs);
        for (key, v) in [
            ("best_valid_f1", self.best_valid_f1),
            ("test_f1", self.test_f1),
        ] {
            match v {
                Some(v) => {
                    let _ = write!(s, ",\"{key}\":{v}");
                }
                None => {
                    let _ = write!(s, ",\"{key}\":null");
                }
            }
        }
        let _ = write!(s, ",\"pseudo_selected\":{}", self.pseudo_selected);
        let _ = write!(s, ",\"non_finite_events\":{}", self.non_finite_events);
        let _ = write!(s, ",\"unclosed_spans\":{}", self.unclosed_spans);
        let _ = write!(s, ",\"orphan_spans\":{}", self.orphan_spans);
        s.push('}');
        s
    }

    /// Parse one ledger line.
    pub fn parse(line: &str) -> Result<HistoryEntry, String> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{key}' in {line}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            match get(key)? {
                JsonVal::Num(n) => Ok(*n as u64),
                other => Err(format!("field '{key}' is not a number: {other:?}")),
            }
        };
        let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
            match get(key)? {
                JsonVal::Num(n) => Ok(Some(*n)),
                JsonVal::Null => Ok(None),
                other => Err(format!("field '{key}' is not a number or null: {other:?}")),
            }
        };
        let text = |key: &str| -> Result<String, String> {
            match get(key)? {
                JsonVal::Str(s) => Ok(s.clone()),
                other => Err(format!("field '{key}' is not a string: {other:?}")),
            }
        };
        let schema = text("schema")?;
        if schema != HISTORY_SCHEMA {
            return Err(format!(
                "unsupported history schema '{schema}' (want {HISTORY_SCHEMA})"
            ));
        }
        Ok(HistoryEntry {
            seed: num("seed")?,
            config: text("config")?,
            git_sha: match get("git_sha")? {
                JsonVal::Str(s) => Some(s.clone()),
                JsonVal::Null => None,
                other => return Err(format!("field 'git_sha' bad: {other:?}")),
            },
            build: text("build")?,
            events: num("events")?,
            total_wall_us: num("total_wall_us")?,
            peak_heap: num("peak_heap")?,
            optimizer_steps: num("optimizer_steps")?,
            epochs: num("epochs")?,
            best_valid_f1: opt_f64("best_valid_f1")?,
            test_f1: opt_f64("test_f1")?,
            pseudo_selected: num("pseudo_selected")?,
            non_finite_events: num("non_finite_events")?,
            unclosed_spans: num("unclosed_spans")?,
            orphan_spans: num("orphan_spans")?,
        })
    }
}

/// Load a ledger file, oldest entry first. A missing file is an empty
/// ledger, not an error (the first append creates it).
pub fn load(path: &Path) -> Result<Vec<HistoryEntry>, String> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut out = Vec::new();
    for (idx, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let entry = HistoryEntry::parse(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), idx + 1))?;
        out.push(entry);
    }
    Ok(out)
}

/// Append one entry to the ledger (creating the file on first use). The
/// ledger is an append-only stream like the trace itself, so a plain
/// append is the right durability model — each line is whole or absent.
pub fn append(path: &Path, entry: &HistoryEntry) -> Result<(), String> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(f, "{}", entry.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(())
}

fn median_u64(mut vs: Vec<u64>) -> u64 {
    vs.sort_unstable();
    let n = vs.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        vs[n / 2]
    } else {
        (vs[n / 2 - 1] + vs[n / 2]) / 2
    }
}

fn median_f64(mut vs: Vec<f64>) -> Option<f64> {
    if vs.is_empty() {
        return None;
    }
    vs.sort_by(|a, b| a.total_cmp(b));
    let n = vs.len();
    Some(if n % 2 == 1 {
        vs[n / 2]
    } else {
        (vs[n / 2 - 1] + vs[n / 2]) / 2.0
    })
}

/// Gate the newest entry against the median of the up-to-`window`
/// entries preceding it. Needs at least two entries; wall and heap gate
/// on relative increase, the F1 figures on absolute point drops.
pub fn gate(entries: &[HistoryEntry], window: usize, t: &Thresholds) -> Result<DiffReport, String> {
    let (newest, prior) = match entries {
        [] => return Err("history is empty — append a run first".into()),
        [_] => {
            return Err("history has a single entry — nothing to gate against".into());
        }
        [prior @ .., newest] => (newest, prior),
    };
    let window = window.max(1);
    let base = &prior[prior.len().saturating_sub(window)..];
    let base_wall = median_u64(base.iter().map(|e| e.total_wall_us).collect());
    let base_heap = median_u64(base.iter().map(|e| e.peak_heap).collect());
    let base_valid = median_f64(base.iter().filter_map(|e| e.best_valid_f1).collect());
    let base_test = median_f64(base.iter().filter_map(|e| e.test_f1).collect());
    let rows = vec![
        diff::increase_row(
            format!("total_wall_us (median of {})", base.len()),
            base_wall,
            newest.total_wall_us,
            t.wall_frac,
        ),
        diff::increase_row(
            format!("peak_heap (median of {})", base.len()),
            base_heap,
            newest.peak_heap,
            t.heap_frac,
        ),
        diff::f1_row(
            "best_valid_f1",
            base_valid,
            newest.best_valid_f1,
            t.f1_points,
        ),
        diff::f1_row("test_f1", base_test, newest.test_f1, t.f1_points),
    ];
    let mut warnings = Vec::new();
    if newest.unclosed_spans > 0 || newest.orphan_spans > 0 {
        warnings.push(format!(
            "newest entry came from a partial trace ({} unclosed, {} orphaned span(s))",
            newest.unclosed_spans, newest.orphan_spans
        ));
    }
    if newest.non_finite_events > 0 {
        warnings.push(format!(
            "newest entry recorded {} non-finite sanitizer event(s)",
            newest.non_finite_events
        ));
    }
    Ok(DiffReport { rows, warnings })
}

/// Render the trajectory as an aligned table, oldest first.
pub fn render_trend(entries: &[HistoryEntry]) -> String {
    let fmt_f1 = |v: Option<f64>| match v {
        Some(v) => format!("{v:.2}"),
        None => "-".to_string(),
    };
    let mut lines = vec![vec![
        "#".to_string(),
        "git".to_string(),
        "build".to_string(),
        "seed".to_string(),
        "wall ms".to_string(),
        "peak heap".to_string(),
        "steps".to_string(),
        "test F1".to_string(),
        "valid F1".to_string(),
    ]];
    for (i, e) in entries.iter().enumerate() {
        let sha = e.git_sha.as_deref().unwrap_or("-");
        lines.push(vec![
            format!("{}", i + 1),
            sha.chars().take(9).collect(),
            e.build.clone(),
            format!("{}", e.seed),
            format!("{:.1}", e.total_wall_us as f64 / 1e3),
            em_obs::alloc::format_bytes(e.peak_heap as usize),
            format!("{}", e.optimizer_steps),
            fmt_f1(e.test_f1),
            fmt_f1(e.best_valid_f1),
        ]);
    }
    let cols = lines[0].len();
    let mut widths = vec![0usize; cols];
    for line in &lines {
        for (w, cell) in widths.iter_mut().zip(line) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for line in &lines {
        for (col, (cell, w)) in line.iter().zip(&widths).enumerate() {
            if col == 0 {
                let _ = write!(out, "{cell:>w$}");
            } else {
                let _ = write!(out, "  {cell:>w$}");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(wall: u64, f1: f64) -> HistoryEntry {
        HistoryEntry {
            seed: 7,
            config: "abc123".into(),
            git_sha: Some("272a3fc".into()),
            build: "release".into(),
            events: 100,
            total_wall_us: wall,
            peak_heap: 1_000_000,
            optimizer_steps: 60,
            epochs: 5,
            best_valid_f1: Some(f1),
            test_f1: Some(f1),
            pseudo_selected: 6,
            non_finite_events: 0,
            unclosed_spans: 0,
            orphan_spans: 0,
        }
    }

    #[test]
    fn entries_round_trip() {
        let e = entry(1_000_000, 88.5);
        assert_eq!(HistoryEntry::parse(&e.to_json()).unwrap(), e);
        let mut bare = e.clone();
        bare.git_sha = None;
        bare.test_f1 = None;
        bare.config = String::new();
        assert_eq!(HistoryEntry::parse(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        let line = entry(1, 1.0).to_json().replace("/v1", "/v9");
        let err = HistoryEntry::parse(&line).unwrap_err();
        assert!(err.contains("unsupported history schema"), "{err}");
    }

    #[test]
    fn append_and_load_keep_order() {
        let dir = std::env::temp_dir().join(format!("em_prof_history_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        std::fs::remove_file(&path).ok();
        assert_eq!(load(&path).unwrap(), vec![], "missing file = empty ledger");
        append(&path, &entry(100, 80.0)).unwrap();
        append(&path, &entry(200, 81.0)).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].total_wall_us, 100);
        assert_eq!(loaded[1].total_wall_us, 200);
    }

    #[test]
    fn gate_needs_two_entries() {
        assert!(gate(&[], 5, &Thresholds::default()).is_err());
        assert!(gate(&[entry(1, 1.0)], 5, &Thresholds::default()).is_err());
    }

    #[test]
    fn self_append_passes_and_wall_blowup_fails() {
        let base: Vec<HistoryEntry> = (0..4).map(|_| entry(1_000_000, 85.0)).collect();
        let t = Thresholds::default();
        let clean = gate(&base, 8, &t).unwrap();
        assert_eq!(clean.regressions(), 0, "{}", clean.render());
        // +200% wall against a flat baseline: must trip the +75% gate.
        let mut with_spike = base.clone();
        with_spike.push(entry(3_000_000, 85.0));
        let tripped = gate(&with_spike, 8, &t).unwrap();
        assert_eq!(tripped.regressions(), 1, "{}", tripped.render());
        assert!(tripped.rows[0].regressed, "wall row must be the trip");
    }

    #[test]
    fn baseline_is_a_rolling_median_not_the_whole_file() {
        // Ancient slow entries fall outside the window; only the recent
        // fast ones anchor the gate.
        let mut entries: Vec<HistoryEntry> = (0..4).map(|_| entry(9_000_000, 85.0)).collect();
        entries.extend((0..3).map(|_| entry(1_000_000, 85.0)));
        entries.push(entry(2_500_000, 85.0)); // +150% vs recent median
        let t = Thresholds::default();
        assert_eq!(gate(&entries, 3, &t).unwrap().regressions(), 1);
        // With a window wide enough that the slow era dominates the
        // median, the same entry reads as an improvement and passes.
        assert_eq!(gate(&entries, 7, &t).unwrap().regressions(), 0);
    }

    #[test]
    fn f1_trend_drop_gates() {
        let mut entries: Vec<HistoryEntry> = (0..3).map(|_| entry(1_000_000, 85.0)).collect();
        entries.push(entry(1_000_000, 82.0)); // -3 pts > 1.0 allowed
        let report = gate(&entries, 8, &Thresholds::default()).unwrap();
        assert_eq!(report.regressions(), 2, "both F1 rows trip");
    }

    #[test]
    fn partial_trace_entries_warn_in_the_gate() {
        let mut e = entry(1_000_000, 85.0);
        e.unclosed_spans = 2;
        let entries = vec![entry(1_000_000, 85.0), e];
        let report = gate(&entries, 8, &Thresholds::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
    }

    #[test]
    fn distill_prefers_run_meta_identity() {
        let mut m = RunManifest {
            seed: 7,
            total_wall_us: 5,
            ..RunManifest::default()
        };
        let bare = distill(&m);
        assert_eq!(bare.build, "unknown");
        assert_eq!(bare.config, "");
        m.meta = Some(crate::manifest::MetaInfo {
            config: "deadbeef".into(),
            git_sha: Some("272a3fc".into()),
            build: "release".into(),
            schema: 1,
        });
        let keyed = distill(&m);
        assert_eq!(keyed.config, "deadbeef");
        assert_eq!(keyed.git_sha.as_deref(), Some("272a3fc"));
        assert_eq!(keyed.build, "release");
    }

    #[test]
    fn trend_table_lists_every_entry() {
        let table = render_trend(&[entry(100_000, 80.0), entry(200_000, 81.0)]);
        assert!(table.contains("wall ms"), "{table}");
        assert!(table.contains("100.0"), "{table}");
        assert!(table.contains("200.0"), "{table}");
        assert!(table.contains("272a3fc"), "{table}");
    }
}
