//! Op-level attribution: fold `op_stats` events into per-phase, per-op
//! rows.
//!
//! The tape profiler (`em_nn::tape`) accumulates per-op counters in a
//! process-global table and flushes one `op_stats` event per op at stage
//! boundaries, while the owning phase span is still live. `emit` stamps
//! the current span id on every event, so attribution here is a lookup:
//! `event.span` → span node → phase name. Events flushed outside any
//! span land in an `(unattributed)` bucket rather than vanishing.

use crate::tree::SpanTree;
use em_obs::{Event, EventKind};
use std::collections::HashMap;

/// Totals for one tape op within one phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpRow {
    /// Owning span name, or `(unattributed)` when the flush happened
    /// outside any live span.
    pub phase: String,
    /// Tape op name (from `em_obs::names::ALL_OP_NAMES`).
    pub op: String,
    /// Forward executions recorded.
    pub fwd_calls: u64,
    /// Forward wall time, microseconds.
    pub fwd_us: u64,
    /// Backward executions recorded.
    pub bwd_calls: u64,
    /// Backward wall time, microseconds.
    pub bwd_us: u64,
    /// Output elements produced across all forward calls.
    pub elems: u64,
    /// Bytes allocated during forward calls (0 without the counting
    /// allocator).
    pub bytes: u64,
}

/// Phase name used for op stats flushed outside any live span.
pub const UNATTRIBUTED: &str = "(unattributed)";

impl OpRow {
    /// Forward plus backward wall time, microseconds.
    pub fn total_us(&self) -> u64 {
        self.fwd_us + self.bwd_us
    }
}

/// Fold every `op_stats` event into per-(phase, op) rows, sorted by
/// total time descending (ties broken by phase then op name so output
/// is deterministic).
pub fn aggregate(events: &[Event], tree: &SpanTree) -> Vec<OpRow> {
    let mut by_key: HashMap<(String, String), OpRow> = HashMap::new();
    for e in events {
        let EventKind::OpStats {
            op,
            fwd_calls,
            fwd_us,
            bwd_calls,
            bwd_us,
            elems,
            bytes,
        } = &e.kind
        else {
            continue;
        };
        let phase = e
            .span
            .and_then(|id| tree.get(id))
            .map(|n| n.name.clone())
            .unwrap_or_else(|| UNATTRIBUTED.to_string());
        let row = by_key
            .entry((phase.clone(), op.clone()))
            .or_insert_with(|| OpRow {
                phase,
                op: op.clone(),
                ..OpRow::default()
            });
        row.fwd_calls += fwd_calls;
        row.fwd_us += fwd_us;
        row.bwd_calls += bwd_calls;
        row.bwd_us += bwd_us;
        row.elems += elems;
        row.bytes += bytes;
    }
    let mut rows: Vec<OpRow> = by_key.into_values().collect();
    rows.sort_by(|a, b| {
        b.total_us()
            .cmp(&a.total_us())
            .then_with(|| a.phase.cmp(&b.phase))
            .then_with(|| a.op.cmp(&b.op))
    });
    rows
}

/// Per-op totals across all phases: `op → (wall_us, bytes)`. The diff
/// gate compares these, since phase membership can shift when spans are
/// added without the op-level cost changing.
pub fn totals_by_op(rows: &[OpRow]) -> HashMap<String, (u64, u64)> {
    let mut totals: HashMap<String, (u64, u64)> = HashMap::new();
    for r in rows {
        let t = totals.entry(r.op.clone()).or_insert((0, 0));
        t.0 += r.total_us();
        t.1 += r.bytes;
    }
    totals
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e3)
}

/// Render per-phase top-`top` op tables. Phases are ordered by their
/// total op time descending; within a phase, rows keep the aggregate's
/// total-time ordering.
pub fn render_tables(rows: &[OpRow], top: usize) -> String {
    // Phase ordering: total op time descending, name as tiebreak.
    let mut phase_totals: HashMap<&str, u64> = HashMap::new();
    for r in rows {
        *phase_totals.entry(&r.phase).or_insert(0) += r.total_us();
    }
    let mut phases: Vec<(&str, u64)> = phase_totals.into_iter().collect();
    phases.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    let mut out = String::new();
    for (phase, total) in phases {
        let phase_rows: Vec<&OpRow> = rows.iter().filter(|r| r.phase == phase).collect();
        out.push_str(&format!("ops — {phase} ({} total)\n", fmt_ms(total)));
        let mut lines = vec![vec![
            "op".to_string(),
            "fwd".to_string(),
            "fwd ms".to_string(),
            "bwd".to_string(),
            "bwd ms".to_string(),
            "elems".to_string(),
            "alloc".to_string(),
        ]];
        for row in phase_rows.iter().take(top) {
            lines.push(vec![
                row.op.clone(),
                row.fwd_calls.to_string(),
                fmt_ms(row.fwd_us),
                row.bwd_calls.to_string(),
                fmt_ms(row.bwd_us),
                row.elems.to_string(),
                em_obs::alloc::format_bytes(row.bytes as usize),
            ]);
        }
        let mut widths = vec![0usize; 7];
        for line in &lines {
            for (w, cell) in widths.iter_mut().zip(line) {
                *w = (*w).max(cell.chars().count());
            }
        }
        for line in &lines {
            for (col, (cell, w)) in line.iter().zip(&widths).enumerate() {
                if col == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("  {cell:>w$}"));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        if phase_rows.len() > top {
            out.push_str(&format!("... and {} more ops\n", phase_rows.len() - top));
        }
        out.push('\n');
    }
    while out.ends_with('\n') && out.len() >= 2 && out[..out.len() - 1].ends_with('\n') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_event(seq: u64, span: Option<u64>, op: &str, fwd_us: u64, bytes: u64) -> Event {
        Event {
            seq,
            seed: 0,
            t_us: seq,
            span,
            kind: EventKind::OpStats {
                op: op.into(),
                fwd_calls: 2,
                fwd_us,
                bwd_calls: 1,
                bwd_us: fwd_us / 2,
                elems: 64,
                bytes,
            },
        }
    }

    fn span_open(seq: u64, id: u64, name: &str) -> Event {
        Event {
            seq,
            seed: 0,
            t_us: seq,
            span: None,
            kind: EventKind::SpanOpen {
                id,
                parent: None,
                name: name.into(),
                detail: None,
            },
        }
    }

    #[test]
    fn ops_attribute_to_their_span_and_fold_across_flushes() {
        let events = vec![
            span_open(1, 1, "teacher"),
            span_open(2, 2, "pseudo_score"),
            op_event(3, Some(2), "matmul", 800, 4096),
            op_event(4, Some(2), "matmul", 200, 1024),
            op_event(5, Some(2), "tanh", 100, 0),
            op_event(6, Some(1), "matmul", 50, 0),
            op_event(7, None, "add", 10, 0),
        ];
        let rows = aggregate(&events, &SpanTree::build(&events));
        assert_eq!(rows.len(), 4);
        // Two pseudo_score matmul flushes fold into one row, and it sorts
        // first on total time.
        assert_eq!(
            (rows[0].phase.as_str(), rows[0].op.as_str()),
            ("pseudo_score", "matmul")
        );
        assert_eq!(rows[0].fwd_calls, 4);
        assert_eq!(rows[0].fwd_us, 1000);
        assert_eq!(rows[0].bwd_us, 500);
        assert_eq!(rows[0].bytes, 5120);
        // Span-less flushes get the fallback bucket.
        assert!(rows
            .iter()
            .any(|r| r.phase == UNATTRIBUTED && r.op == "add"));
        let totals = totals_by_op(&rows);
        assert_eq!(totals["matmul"], (1575, 5120), "1000+500 + 50+25");
    }

    #[test]
    fn tables_group_by_phase_and_truncate() {
        let events = vec![
            span_open(1, 1, "pseudo_score"),
            op_event(2, Some(1), "matmul", 900, 0),
            op_event(3, Some(1), "tanh", 300, 0),
            op_event(4, Some(1), "add", 100, 0),
        ];
        let rows = aggregate(&events, &SpanTree::build(&events));
        let text = render_tables(&rows, 2);
        assert!(text.starts_with("ops — pseudo_score"), "{text}");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("op"), "{text}");
        assert!(lines[2].starts_with("matmul"), "sorted by total: {text}");
        assert!(lines[3].starts_with("tanh"), "{text}");
        assert!(text.contains("... and 1 more ops"), "{text}");
    }

    #[test]
    fn no_op_events_render_nothing() {
        let rows = aggregate(&[], &SpanTree::build(&[]));
        assert!(rows.is_empty());
        assert_eq!(render_tables(&rows, 5), "");
    }
}
