//! Compare two run manifests under explicit regression thresholds.
//!
//! The gate's philosophy: quantities that are *deterministic* given the
//! seed (optimizer steps) get zero slack by default — any drift means
//! behavior changed, not the machine. Quantities the OS perturbs (wall
//! time, peak heap) get generous slack so the gate catches real
//! regressions without flaking on a busy CI box. F1 thresholds are in
//! absolute points, matching how the paper reports quality.

use crate::manifest::RunManifest;
use std::fmt::Write as _;

/// Allowed movement per metric before the diff counts a regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Allowed relative wall-time increase (0.75 = +75%).
    pub wall_frac: f64,
    /// Allowed relative peak-heap increase.
    pub heap_frac: f64,
    /// Allowed relative optimizer-step drift, in *either* direction —
    /// steps are seed-deterministic, so a change either way means the
    /// training loop itself changed.
    pub steps_frac: f64,
    /// Allowed F1 drop in absolute points (percent scale).
    pub f1_points: f64,
    /// Allowed relative per-op wall-time increase (op timings are
    /// noisier than phase wall, so the default slack is wider).
    pub op_wall_frac: f64,
    /// Allowed relative per-op allocated-bytes increase.
    pub op_bytes_frac: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            wall_frac: 0.75,
            heap_frac: 0.50,
            steps_frac: 0.0,
            f1_points: 1.0,
            op_wall_frac: 1.0,
            op_bytes_frac: 1.0,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric name (`total_wall_us`, `peak_heap`, `op matmul wall_us`, ...).
    pub name: String,
    /// Baseline value, when the baseline trace carried it.
    pub base: Option<f64>,
    /// New value, when the new trace carried it.
    pub new: Option<f64>,
    /// Whether the movement breached the threshold.
    pub regressed: bool,
    /// Human note: the movement and the limit applied.
    pub note: String,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every compared metric, in fixed order.
    pub rows: Vec<DiffRow>,
    /// Non-gating caveats about the inputs (e.g. a side with unclosed or
    /// orphaned spans, whose wall/heap numbers are reconstructions).
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// How many metrics regressed.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// Render an aligned TTY table plus a verdict line.
    pub fn render(&self) -> String {
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) if v == v.trunc() && v.abs() < 1e15 => format!("{v}"),
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        let mut lines = vec![vec![
            "measure".to_string(),
            "base".to_string(),
            "new".to_string(),
            "verdict".to_string(),
        ]];
        for row in &self.rows {
            lines.push(vec![
                row.name.clone(),
                fmt_opt(row.base),
                fmt_opt(row.new),
                format!(
                    "{} ({})",
                    if row.regressed { "REGRESSED" } else { "ok" },
                    row.note
                ),
            ]);
        }
        let mut widths = vec![0usize; 4];
        for line in &lines {
            for (w, cell) in widths.iter_mut().zip(line) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for line in &lines {
            for (col, (cell, w)) in line.iter().zip(&widths).enumerate() {
                if col == 3 {
                    // Last column left-aligned, no padding needed.
                    let _ = write!(out, "  {cell}");
                } else if col == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        let n = self.regressions();
        if n == 0 {
            out.push_str("no regressions\n");
        } else {
            let _ = writeln!(out, "{n} regression(s)");
        }
        out
    }
}

/// Relative increase check: regress when `new > base * (1 + frac)`.
/// A zero baseline can't anchor a ratio, so those rows never regress
/// (the absolute values still print for eyeballing).
pub(crate) fn increase_row(name: impl Into<String>, base: u64, new: u64, frac: f64) -> DiffRow {
    let regressed = base > 0 && (new as f64) > (base as f64) * (1.0 + frac);
    let note = if base == 0 {
        "no baseline".to_string()
    } else {
        format!(
            "{:+.1}% vs +{:.0}% allowed",
            (new as f64 / base as f64 - 1.0) * 100.0,
            frac * 100.0
        )
    };
    DiffRow {
        name: name.into(),
        base: Some(base as f64),
        new: Some(new as f64),
        regressed,
        note,
    }
}

/// Symmetric drift check: regress when `|new - base| > base * frac`.
fn drift_row(name: impl Into<String>, base: u64, new: u64, frac: f64) -> DiffRow {
    let allowed = base as f64 * frac;
    let drift = (new as f64 - base as f64).abs();
    DiffRow {
        name: name.into(),
        base: Some(base as f64),
        new: Some(new as f64),
        regressed: drift > allowed,
        note: format!("drift {drift:.0} vs {allowed:.0} allowed"),
    }
}

/// Quality check: regress when F1 dropped more than `points`. Missing on
/// either side is reported but never gates (a run without validation
/// can't be scored).
pub(crate) fn f1_row(
    name: impl Into<String>,
    base: Option<f64>,
    new: Option<f64>,
    points: f64,
) -> DiffRow {
    let (regressed, note) = match (base, new) {
        (Some(b), Some(n)) => (
            b - n > points,
            format!("{:+.2} pts vs -{points:.2} allowed", n - b),
        ),
        _ => (false, "not comparable".to_string()),
    };
    DiffRow {
        name: name.into(),
        base,
        new,
        regressed,
        note,
    }
}

/// Compare `new` against `base` under `t`. When both manifests carry
/// op-profiler rows, each op's cross-phase wall/byte totals are gated
/// too, so an op-level regression names the op rather than drowning in
/// the phase totals.
pub fn diff(base: &RunManifest, new: &RunManifest, t: &Thresholds) -> DiffReport {
    let mut rows = vec![
        increase_row(
            "total_wall_us",
            base.total_wall_us,
            new.total_wall_us,
            t.wall_frac,
        ),
        increase_row("peak_heap", base.peak_heap, new.peak_heap, t.heap_frac),
        drift_row(
            "optimizer_steps",
            base.optimizer_steps,
            new.optimizer_steps,
            t.steps_frac,
        ),
        f1_row(
            "best_valid_f1",
            base.best_valid_f1,
            new.best_valid_f1,
            t.f1_points,
        ),
        f1_row("test_f1", base.test_f1, new.test_f1, t.f1_points),
    ];
    if !base.ops.is_empty() && !new.ops.is_empty() {
        let base_ops = crate::ops::totals_by_op(&base.ops);
        let new_ops = crate::ops::totals_by_op(&new.ops);
        let mut names: Vec<&String> = base_ops.keys().chain(new_ops.keys()).collect();
        names.sort();
        names.dedup();
        for op in names {
            let (bw, bb) = base_ops.get(op).copied().unwrap_or((0, 0));
            let (nw, nb) = new_ops.get(op).copied().unwrap_or((0, 0));
            rows.push(op_gate_row(
                format!("op {op} wall_us"),
                bw,
                nw,
                t.op_wall_frac,
                OP_WALL_GATE_FLOOR_US,
            ));
            rows.push(op_gate_row(
                format!("op {op} bytes"),
                bb,
                nb,
                t.op_bytes_frac,
                OP_BYTES_GATE_FLOOR,
            ));
        }
    }
    let mut warnings = Vec::new();
    for (side, m) in [("base", base), ("new", new)] {
        if m.unclosed_spans > 0 || m.orphan_spans > 0 {
            warnings.push(format!(
                "{side} trace has {} unclosed and {} orphaned span(s) — its wall/heap figures are reconstructed from a partial trace",
                m.unclosed_spans, m.orphan_spans
            ));
        }
    }
    DiffReport { rows, warnings }
}

/// Op wall baselines below this (µs) never gate: a ratio anchored on a
/// few microseconds is scheduler noise, not a regression signal.
pub const OP_WALL_GATE_FLOOR_US: u64 = 1_000;

/// Op byte baselines below this (bytes, 1 MiB) never gate, for the same
/// reason: tiny allocations wobble with allocator bookkeeping.
pub const OP_BYTES_GATE_FLOOR: u64 = 1 << 20;

/// Per-op variant of [`increase_row`]: baselines under `floor` print but
/// never regress.
fn op_gate_row(name: String, base: u64, new: u64, frac: f64, floor: u64) -> DiffRow {
    if base < floor {
        return DiffRow {
            name,
            base: Some(base as f64),
            new: Some(new as f64),
            regressed: false,
            note: "below gate floor".to_string(),
        };
    }
    increase_row(name, base, new, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> RunManifest {
        RunManifest {
            total_wall_us: 1_000_000,
            peak_heap: 1_000_000,
            optimizer_steps: 100,
            best_valid_f1: Some(80.0),
            test_f1: Some(75.0),
            ..RunManifest::default()
        }
    }

    #[test]
    fn identical_runs_report_zero_regressions() {
        let report = diff(&base(), &base(), &Thresholds::default());
        assert_eq!(report.regressions(), 0, "{}", report.render());
        assert!(report.render().contains("no regressions"));
    }

    #[test]
    fn wall_time_within_slack_passes_and_beyond_fails() {
        let mut new = base();
        new.total_wall_us = 1_700_000; // +70% < +75%
        assert_eq!(diff(&base(), &new, &Thresholds::default()).regressions(), 0);
        new.total_wall_us = 1_800_000; // +80% > +75%
        let report = diff(&base(), &new, &Thresholds::default());
        assert_eq!(report.regressions(), 1);
        assert!(report.rows[0].regressed);
        assert!(report.render().contains("REGRESSED"), "{}", report.render());
    }

    #[test]
    fn step_drift_is_symmetric_and_exact_by_default() {
        for steps in [99, 101] {
            let mut new = base();
            new.optimizer_steps = steps;
            let report = diff(&base(), &new, &Thresholds::default());
            assert_eq!(report.regressions(), 1, "steps {steps} must regress");
        }
        // With slack, small drift passes.
        let mut new = base();
        new.optimizer_steps = 104;
        let loose = Thresholds {
            steps_frac: 0.05,
            ..Thresholds::default()
        };
        assert_eq!(diff(&base(), &new, &loose).regressions(), 0);
    }

    #[test]
    fn f1_drop_gates_in_points_and_gains_never_do() {
        let mut new = base();
        new.test_f1 = Some(73.5); // -1.5 pts > 1.0 allowed
        assert_eq!(diff(&base(), &new, &Thresholds::default()).regressions(), 1);
        new.test_f1 = Some(99.0);
        new.best_valid_f1 = Some(99.0);
        assert_eq!(diff(&base(), &new, &Thresholds::default()).regressions(), 0);
    }

    #[test]
    fn missing_f1_never_gates() {
        let mut new = base();
        new.test_f1 = None;
        let report = diff(&base(), &new, &Thresholds::default());
        assert_eq!(report.regressions(), 0);
        assert!(report.render().contains("not comparable"));
    }

    #[test]
    fn zero_baseline_heap_never_gates() {
        let mut b = base();
        b.peak_heap = 0; // traced without the counting allocator
        let mut new = base();
        new.peak_heap = 123_456;
        assert_eq!(diff(&b, &new, &Thresholds::default()).regressions(), 0);
    }

    fn op_row(op: &str, fwd_us: u64, bytes: u64) -> crate::ops::OpRow {
        crate::ops::OpRow {
            phase: "tune".into(),
            op: op.into(),
            fwd_calls: 1,
            fwd_us,
            bwd_calls: 0,
            bwd_us: 0,
            elems: 0,
            bytes,
        }
    }

    #[test]
    fn op_rows_gate_per_op_wall_and_bytes() {
        let mut b = base();
        b.ops = vec![op_row("matmul", 1_000, 1_000), op_row("tanh", 100, 0)];
        // Same totals: clean.
        let mut new = base();
        new.ops = b.ops.clone();
        let report = diff(&b, &new, &Thresholds::default());
        assert_eq!(report.regressions(), 0, "{}", report.render());
        assert!(report.render().contains("op matmul wall_us"));
        // matmul wall beyond +100% default slack: exactly one regression,
        // named after the op.
        new.ops = vec![op_row("matmul", 2_500, 1_000), op_row("tanh", 100, 0)];
        let report = diff(&b, &new, &Thresholds::default());
        assert_eq!(report.regressions(), 1, "{}", report.render());
        let bad: Vec<&str> = report
            .rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(bad, ["op matmul wall_us"]);
        // A brand-new op has no baseline to anchor a ratio: reported, not
        // gated.
        new.ops = vec![op_row("matmul", 1_000, 1_000), op_row("gelu", 900, 900)];
        assert_eq!(diff(&b, &new, &Thresholds::default()).regressions(), 0);
    }

    #[test]
    fn tiny_op_baselines_sit_below_the_gate_floor() {
        // tanh base wall 100µs < 1ms floor: even a 50x blowup only
        // prints; µs-scale ratios are scheduler noise.
        let mut b = base();
        b.ops = vec![op_row("tanh", 100, 0)];
        let mut new = base();
        new.ops = vec![op_row("tanh", 5_000, 0)];
        let report = diff(&b, &new, &Thresholds::default());
        assert_eq!(report.regressions(), 0, "{}", report.render());
        assert!(report.render().contains("below gate floor"));
    }

    #[test]
    fn partial_traces_warn_without_gating() {
        let mut new = base();
        new.unclosed_spans = 2;
        new.orphan_spans = 1;
        let report = diff(&base(), &new, &Thresholds::default());
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.warnings.len(), 1);
        let rendered = report.render();
        assert!(
            rendered.contains("warning: new trace has 2 unclosed and 1 orphaned span(s)"),
            "{rendered}"
        );
        // Clean traces stay warning-free.
        assert!(diff(&base(), &base(), &Thresholds::default())
            .warnings
            .is_empty());
    }

    #[test]
    fn op_rows_absent_on_either_side_skip_the_op_gate() {
        let mut new = base();
        new.ops = vec![op_row("matmul", 9_999_999, 9_999_999)];
        let report = diff(&base(), &new, &Thresholds::default());
        assert_eq!(report.regressions(), 0);
        assert!(
            !report.render().contains("op matmul"),
            "{}",
            report.render()
        );
    }
}
