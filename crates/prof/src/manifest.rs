//! Boil a whole trace down to one comparable record.
//!
//! The manifest is the unit the diff engine and `BENCH_report.json`
//! operate on: everything a perf/quality gate needs, nothing that varies
//! between identical runs except wall-clock and heap fields (which the
//! gate compares under explicit tolerances).

use crate::flame::{self, FlameRow};
use crate::ops::{self, OpRow};
use crate::tree::SpanTree;
use em_obs::{Event, EventKind};

/// The distilled record of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// The run seed (from the trace events; 0 when never set).
    pub seed: u64,
    /// Total events in the trace.
    pub events: u64,
    /// Wall time covered by the trace: last event minus first, µs.
    pub total_wall_us: u64,
    /// Largest process peak heap seen at any span close, bytes. Stays 0
    /// when the counting allocator was not installed in the traced binary.
    pub peak_heap: u64,
    /// MLM pretraining optimizer steps (`pretrain_step` events).
    pub pretrain_steps: u64,
    /// Fine-tuning optimizer steps (summed `batches` of epoch summaries).
    pub epoch_batches: u64,
    /// Total optimizer steps: pretraining plus fine-tuning.
    pub optimizer_steps: u64,
    /// Finished training epochs across all phases.
    pub epochs: u64,
    /// Best validation F1 (percent) any epoch reported.
    pub best_valid_f1: Option<f64>,
    /// Training loss of the last reported epoch.
    pub final_train_loss: Option<f64>,
    /// Test F1 (percent), from the `core_test_f1` gauge sampled into the
    /// trace at shutdown.
    pub test_f1: Option<f64>,
    /// Pseudo-labels selected across all LST iterations.
    pub pseudo_selected: u64,
    /// Pseudo-label true-positive rate (last audited selection).
    pub pseudo_tpr: Option<f64>,
    /// Pseudo-label true-negative rate (last audited selection).
    pub pseudo_tnr: Option<f64>,
    /// Training examples dropped by dynamic pruning.
    pub pruned: u64,
    /// NaN/Inf sanitizer findings (should be 0 on a healthy run).
    pub non_finite_events: u64,
    /// Checkpoints written during the run.
    pub ckpt_saves: u64,
    /// Checkpoint restores (0 on an uninterrupted run).
    pub ckpt_restores: u64,
    /// Batches skipped by the non-finite-loss guard.
    pub recovered_batches: u64,
    /// I/O retries taken by the atomic writer.
    pub io_retries: u64,
    /// Serve requests answered (any terminal outcome).
    pub serve_requests: u64,
    /// Serve requests answered with outcome `"ok"`.
    pub serve_ok: u64,
    /// Serve requests shed by admission control.
    pub serve_rejects: u64,
    /// Serve worker restarts performed by the supervisor.
    pub serve_restarts: u64,
    /// Graceful serve drains completed (0 for a non-serving run).
    pub serve_drains: u64,
    /// Serve request latency percentiles (p50, p95, p99) in seconds,
    /// from the `serve_request_secs` histogram snapshot the drain
    /// epilogue flushes into the trace.
    pub serve_latency: Option<(f64, f64, f64)>,
    /// Spans whose close event never arrived (0 on a complete trace).
    pub unclosed_spans: u64,
    /// Spans whose recorded parent the trace never opened.
    pub orphan_spans: u64,
    /// The run's identity card, when the trace carries a `run_meta` line.
    pub meta: Option<MetaInfo>,
    /// Per-span-name profile rows, sorted by total time descending.
    pub phases: Vec<FlameRow>,
    /// Per-(phase, op) tape profiler rows, sorted by total time
    /// descending. Empty unless the run was traced with `--op-profile`.
    pub ops: Vec<OpRow>,
}

/// The metric-event name carrying the pipeline's test F1 gauge (label
/// part excluded; the emitter attaches `{dataset="..."}`).
pub const TEST_F1_METRIC: &str = "core_test_f1";

/// The histogram name em-serve feeds once per answered request (mirrors
/// `em_serve::REQUEST_SECS_METRIC`; duplicated so em-prof does not link
/// the service to read its traces).
pub const SERVE_LATENCY_METRIC: &str = "serve_request_secs";

/// The run identity distilled from a `run_meta` event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetaInfo {
    /// FNV-1a fingerprint of the resolved config, as hex.
    pub config: String,
    /// Git commit SHA of the traced checkout, when discoverable.
    pub git_sha: Option<String>,
    /// Build profile: `"debug"` or `"release"`.
    pub build: String,
    /// `run_meta` schema version.
    pub schema: u64,
}

/// Distill a trace into its manifest.
pub fn manifest(events: &[Event]) -> RunManifest {
    let tree = SpanTree::build(events);
    let mut m = RunManifest {
        events: events.len() as u64,
        unclosed_spans: tree.unclosed_count(),
        orphan_spans: tree.orphan_count(),
        phases: flame::aggregate(&tree),
        ops: ops::aggregate(events, &tree),
        ..RunManifest::default()
    };
    let mut t_range: Option<(u64, u64)> = None;
    for e in events {
        m.seed = m.seed.max(e.seed);
        t_range = Some(match t_range {
            None => (e.t_us, e.t_us),
            Some((lo, hi)) => (lo.min(e.t_us), hi.max(e.t_us)),
        });
        match &e.kind {
            EventKind::SpanClose { heap_peak, .. } => {
                m.peak_heap = m.peak_heap.max(*heap_peak);
            }
            EventKind::PretrainStep { .. } => m.pretrain_steps += 1,
            EventKind::EpochSummary {
                train_loss,
                valid_f1,
                batches,
                ..
            } => {
                m.epochs += 1;
                m.epoch_batches += batches;
                m.final_train_loss = Some(*train_loss);
                if let Some(f1) = valid_f1 {
                    m.best_valid_f1 = Some(m.best_valid_f1.map_or(*f1, |best: f64| best.max(*f1)));
                }
            }
            EventKind::PseudoSelect { count, tpr, tnr } => {
                m.pseudo_selected += count;
                if tpr.is_some() {
                    m.pseudo_tpr = *tpr;
                }
                if tnr.is_some() {
                    m.pseudo_tnr = *tnr;
                }
            }
            EventKind::Prune { dropped, .. } => m.pruned += dropped,
            EventKind::NonFinite { .. } => m.non_finite_events += 1,
            EventKind::CkptSave { .. } => m.ckpt_saves += 1,
            // A restore carries the work the interrupted run had already
            // banked: fold it back in so a resumed trace accounts for the
            // same optimizer steps as an uninterrupted one.
            EventKind::CkptRestore {
                pretrain_steps,
                epochs,
                batches,
                ..
            } => {
                m.ckpt_restores += 1;
                m.pretrain_steps += pretrain_steps;
                m.epochs += epochs;
                m.epoch_batches += batches;
            }
            EventKind::RecoveredBatch { .. } => m.recovered_batches += 1,
            EventKind::IoRetry { .. } => m.io_retries += 1,
            EventKind::Request { outcome, .. } => {
                m.serve_requests += 1;
                if outcome == "ok" {
                    m.serve_ok += 1;
                }
            }
            EventKind::Reject { .. } => m.serve_rejects += 1,
            EventKind::WorkerRestart { .. } => m.serve_restarts += 1,
            EventKind::Drain { .. } => m.serve_drains += 1,
            EventKind::RunMeta {
                config,
                git_sha,
                build,
                schema,
                ..
            } => {
                m.meta = Some(MetaInfo {
                    config: config.clone(),
                    git_sha: git_sha.clone(),
                    build: build.clone(),
                    schema: *schema,
                });
            }
            // Gauge names carry folded labels: `core_test_f1{dataset="x"}`.
            EventKind::Metric { name, value, .. }
                if name == TEST_F1_METRIC || name.starts_with(&format!("{TEST_F1_METRIC}{{")) =>
            {
                m.test_f1 = Some(*value);
            }
            EventKind::Metric {
                name,
                p50,
                p95,
                p99,
                ..
            } if name == SERVE_LATENCY_METRIC
                || name.starts_with(&format!("{SERVE_LATENCY_METRIC}{{")) =>
            {
                if let (Some(a), Some(b), Some(c)) = (p50, p95, p99) {
                    m.serve_latency = Some((*a, *b, *c));
                }
            }
            _ => {}
        }
    }
    m.optimizer_steps = m.pretrain_steps + m.epoch_batches;
    if let Some((lo, hi)) = t_range {
        m.total_wall_us = hi - lo;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, kind: EventKind) -> Event {
        Event {
            seq,
            seed: 13,
            t_us,
            span: None,
            kind,
        }
    }

    #[test]
    fn manifest_distills_the_training_story() {
        let events = vec![
            ev(
                0,
                100,
                EventKind::RunMeta {
                    seed: 13,
                    config: "abc123".into(),
                    git_sha: Some("272a3fc0".into()),
                    build: "release".into(),
                    schema: 1,
                },
            ),
            ev(
                1,
                100,
                EventKind::SpanOpen {
                    id: 1,
                    parent: None,
                    name: "tune".into(),
                    detail: None,
                },
            ),
            ev(
                2,
                150,
                EventKind::PretrainStep {
                    step: 0,
                    mlm_loss: 3.0,
                },
            ),
            ev(
                3,
                200,
                EventKind::EpochSummary {
                    epoch: 0,
                    train_loss: 0.9,
                    valid_f1: Some(70.0),
                    threshold: Some(0.5),
                    examples: 32,
                    batches: 4,
                    wall_us: 90,
                },
            ),
            ev(
                4,
                300,
                EventKind::EpochSummary {
                    epoch: 1,
                    train_loss: 0.4,
                    valid_f1: Some(85.0),
                    threshold: Some(0.45),
                    examples: 32,
                    batches: 4,
                    wall_us: 80,
                },
            ),
            ev(
                5,
                350,
                EventKind::PseudoSelect {
                    count: 6,
                    tpr: Some(1.0),
                    tnr: Some(0.9),
                },
            ),
            ev(
                6,
                380,
                EventKind::Prune {
                    dropped: 3,
                    passes: 2,
                },
            ),
            ev(
                7,
                400,
                EventKind::SpanClose {
                    id: 1,
                    name: "tune".into(),
                    wall_us: 300,
                    heap_delta: -10,
                    heap_peak: 5000,
                },
            ),
            ev(
                8,
                410,
                EventKind::CkptRestore {
                    step: 5,
                    pretrain_steps: 5,
                    epochs: 1,
                    batches: 4,
                },
            ),
            ev(
                9,
                420,
                EventKind::Metric {
                    name: "core_test_f1{dataset=\"rel-heter\"}".into(),
                    kind: "gauge".into(),
                    value: 88.5,
                    count: None,
                    p50: None,
                    p95: None,
                    p99: None,
                },
            ),
            // An op-profiler flush inside the tune span (span id 1).
            Event {
                seq: 10,
                seed: 13,
                t_us: 390,
                span: Some(1),
                kind: EventKind::OpStats {
                    op: "matmul".into(),
                    fwd_calls: 8,
                    fwd_us: 120,
                    bwd_calls: 4,
                    bwd_us: 60,
                    elems: 512,
                    bytes: 4096,
                },
            },
        ];
        let m = manifest(&events);
        assert_eq!(m.seed, 13);
        assert_eq!(m.events, 11);
        let meta = m.meta.as_ref().expect("run_meta distilled");
        assert_eq!(meta.config, "abc123");
        assert_eq!(meta.git_sha.as_deref(), Some("272a3fc0"));
        assert_eq!(meta.build, "release");
        assert_eq!((m.unclosed_spans, m.orphan_spans), (0, 0));
        assert_eq!(m.total_wall_us, 320, "420 - 100");
        assert_eq!(m.peak_heap, 5000);
        assert_eq!(m.pretrain_steps, 6, "1 live + 5 banked in the restore");
        assert_eq!(m.epoch_batches, 12, "8 live + 4 banked");
        assert_eq!(m.optimizer_steps, 18);
        assert_eq!(m.epochs, 3, "2 live + 1 banked");
        assert_eq!(m.ckpt_restores, 1);
        assert_eq!(m.best_valid_f1, Some(85.0));
        assert_eq!(m.final_train_loss, Some(0.4));
        assert_eq!(m.test_f1, Some(88.5));
        assert_eq!((m.pseudo_selected, m.pruned), (6, 3));
        assert_eq!((m.pseudo_tpr, m.pseudo_tnr), (Some(1.0), Some(0.9)));
        assert_eq!(m.non_finite_events, 0);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].name, "tune");
        assert_eq!(m.ops.len(), 1);
        assert_eq!(m.ops[0].phase, "tune");
        assert_eq!(m.ops[0].op, "matmul");
        assert_eq!((m.ops[0].fwd_us, m.ops[0].bwd_us), (120, 60));
    }

    #[test]
    fn empty_trace_yields_a_zero_manifest() {
        let m = manifest(&[]);
        assert_eq!(m, RunManifest::default());
    }

    #[test]
    fn manifest_tallies_the_serving_story() {
        let events = vec![
            ev(
                0,
                100,
                EventKind::Request {
                    id: "r1".into(),
                    pairs: 4,
                    queue: 0,
                    wall_us: 800,
                    outcome: "ok".into(),
                },
            ),
            ev(
                1,
                200,
                EventKind::Request {
                    id: "r2".into(),
                    pairs: 1,
                    queue: 2,
                    wall_us: 90,
                    outcome: "deadline".into(),
                },
            ),
            ev(
                2,
                300,
                EventKind::Reject {
                    id: "r3".into(),
                    reason: "queue_full".into(),
                    retry_after_ms: 25,
                },
            ),
            ev(
                3,
                400,
                EventKind::WorkerRestart {
                    worker: 0,
                    restarts: 1,
                    backoff_ms: 10,
                    reason: "panic".into(),
                },
            ),
            // The drain epilogue flushes the latency histogram snapshot.
            ev(
                4,
                500,
                EventKind::Metric {
                    name: "serve_request_secs".into(),
                    kind: "histogram".into(),
                    value: 0.0009,
                    count: Some(2),
                    p50: Some(0.0008),
                    p95: Some(0.0009),
                    p99: Some(0.0009),
                },
            ),
            ev(
                5,
                600,
                EventKind::Drain {
                    completed: 2,
                    rejected: 1,
                    failed: 0,
                    restarts: 1,
                },
            ),
        ];
        let m = manifest(&events);
        assert_eq!((m.serve_requests, m.serve_ok), (2, 1));
        assert_eq!(m.serve_rejects, 1);
        assert_eq!(m.serve_restarts, 1);
        assert_eq!(m.serve_drains, 1);
        assert_eq!(m.serve_latency, Some((0.0008, 0.0009, 0.0009)));
    }
}
