//! Canonical trace form: the determinism contract of a run, with the
//! timing stripped out.
//!
//! Two runs of the same seed and config must produce the *same decisions*
//! — spans opened in the same order, the same optimizer steps, the same
//! pseudo-label selections, the same metrics counts — even though wall
//! times, throughputs, and heap peaks differ on every run. The `--threads`
//! bit-exactness gate needs exactly that split: a 4-thread scoring run is
//! required to be byte-identical to the 1-thread run *after* zeroing the
//! fields that merely measure time and memory.
//!
//! Canonicalization maps each typed [`Event`] to a copy with volatile
//! fields zeroed, re-encodes it with the standard writer, and compares the
//! resulting line sequences. Zeroed rather than removed, so canonical lines
//! still parse with [`Event::parse`] and line numbers match the original
//! trace one-to-one.
//!
//! What is volatile (zeroed) vs semantic (kept):
//!
//! | event | zeroed | kept |
//! |---|---|---|
//! | envelope | `t_us` | `seq`, `seed`, `span` |
//! | `span_close` | `wall_us`, `heap_delta`, `heap_peak` | `id`, `name` |
//! | `epoch_summary` | `wall_us` | loss, F1, threshold, counts |
//! | `op_stats` | `fwd_us`, `bwd_us`, `bytes` | op, call counts, `elems` |
//! | `progress` | `ex_per_sec`, `eta_us`, `heap_peak` | phase, ticks, examples, `tape_nodes` |
//! | `metric` (histogram) | `value`, `count`, percentiles | name, kind |
//! | `ckpt_save` | `bytes` | `step`, `kept` |
//! | everything else | — | all fields |
//!
//! `op_stats` call counts and `elems` are global sums over a swap-drain
//! table, so they are invariant under worker interleaving; their wall
//! times and allocator bytes are not. Histogram metrics are timing
//! distributions, so only their identity survives. `progress.tape_nodes`
//! is deliberately kept: scoring is tape-free on every thread count, so a
//! divergence there means a recording tape leaked into an inference path.

use em_obs::{Event, EventKind};

/// The canonical (volatile-fields-zeroed) copy of one event.
pub fn canonical_event(e: &Event) -> Event {
    let kind = match e.kind.clone() {
        EventKind::SpanClose { id, name, .. } => EventKind::SpanClose {
            id,
            name,
            wall_us: 0,
            heap_delta: 0,
            heap_peak: 0,
        },
        EventKind::EpochSummary {
            epoch,
            train_loss,
            valid_f1,
            threshold,
            examples,
            batches,
            ..
        } => EventKind::EpochSummary {
            epoch,
            train_loss,
            valid_f1,
            threshold,
            examples,
            batches,
            wall_us: 0,
        },
        EventKind::OpStats {
            op,
            fwd_calls,
            bwd_calls,
            elems,
            ..
        } => EventKind::OpStats {
            op,
            fwd_calls,
            fwd_us: 0,
            bwd_calls,
            bwd_us: 0,
            elems,
            bytes: 0,
        },
        EventKind::Progress {
            phase,
            done,
            total,
            examples,
            loss,
            tape_nodes,
            ..
        } => EventKind::Progress {
            phase,
            done,
            total,
            examples,
            ex_per_sec: 0.0,
            loss,
            eta_us: None,
            tape_nodes,
            heap_peak: 0,
        },
        EventKind::Metric {
            name, kind, value, ..
        } if kind != "histogram" => EventKind::Metric {
            name,
            kind,
            value,
            count: None,
            p50: None,
            p95: None,
            p99: None,
        },
        EventKind::Metric { name, kind, .. } => EventKind::Metric {
            name,
            kind,
            value: 0.0,
            count: None,
            p50: None,
            p95: None,
            p99: None,
        },
        EventKind::CkptSave { step, kept, .. } => EventKind::CkptSave {
            step,
            bytes: 0,
            kept,
        },
        other => other,
    };
    Event {
        seq: e.seq,
        seed: e.seed,
        t_us: 0,
        span: e.span,
        kind,
    }
}

/// The canonical JSONL lines of a trace, one per event, in trace order.
pub fn canonical_lines(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| canonical_event(e).to_json())
        .collect()
}

/// The first place two canonicalized traces disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 0-based event index of the first mismatch (== the shorter length
    /// when one trace is a strict prefix of the other).
    pub index: usize,
    /// Canonical line from the left trace, if it has one at `index`.
    pub left: Option<String>,
    /// Canonical line from the right trace, if it has one at `index`.
    pub right: Option<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first divergence at event {}:", self.index)?;
        writeln!(
            f,
            "  left:  {}",
            self.left.as_deref().unwrap_or("<end of trace>")
        )?;
        write!(
            f,
            "  right: {}",
            self.right.as_deref().unwrap_or("<end of trace>")
        )
    }
}

/// Compare two traces in canonical form. `None` means the runs made
/// identical decisions; `Some` carries the first mismatching lines.
pub fn first_divergence(left: &[Event], right: &[Event]) -> Option<Divergence> {
    let la = canonical_lines(left);
    let lb = canonical_lines(right);
    for (i, (a, b)) in la.iter().zip(&lb).enumerate() {
        if a != b {
            return Some(Divergence {
                index: i,
                left: Some(a.clone()),
                right: Some(b.clone()),
            });
        }
    }
    if la.len() != lb.len() {
        let i = la.len().min(lb.len());
        return Some(Divergence {
            index: i,
            left: la.get(i).cloned(),
            right: lb.get(i).cloned(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, kind: EventKind) -> Event {
        Event {
            seq,
            seed: 7,
            t_us,
            span: None,
            kind,
        }
    }

    #[test]
    fn timing_differences_cancel_out() {
        let slow = ev(
            1,
            999,
            EventKind::SpanClose {
                id: 1,
                name: "pseudo_score".into(),
                wall_us: 2_000_000,
                heap_delta: 4096,
                heap_peak: 1 << 30,
            },
        );
        let fast = ev(
            1,
            5,
            EventKind::SpanClose {
                id: 1,
                name: "pseudo_score".into(),
                wall_us: 480_000,
                heap_delta: -64,
                heap_peak: 1 << 20,
            },
        );
        assert_eq!(first_divergence(&[slow], &[fast]), None);
    }

    #[test]
    fn decision_differences_do_not() {
        let a = ev(
            1,
            0,
            EventKind::PseudoSelect {
                count: 6,
                tpr: Some(1.0),
                tnr: Some(0.875),
            },
        );
        let b = ev(
            1,
            0,
            EventKind::PseudoSelect {
                count: 7,
                tpr: Some(1.0),
                tnr: Some(0.875),
            },
        );
        let d = first_divergence(&[a], &[b]).expect("count change must diverge");
        assert_eq!(d.index, 0);
        assert!(d.left.unwrap().contains("\"count\":6"));
    }

    #[test]
    fn op_stats_keep_counts_drop_times() {
        let mk = |fwd_us, bytes| {
            ev(
                3,
                0,
                EventKind::OpStats {
                    op: "matmul".into(),
                    fwd_calls: 118_700,
                    fwd_us,
                    bwd_calls: 0,
                    bwd_us: 0,
                    elems: 42,
                    bytes,
                },
            )
        };
        assert_eq!(first_divergence(&[mk(718_000, 10)], &[mk(5, 99)]), None);
        let a = ev(
            3,
            0,
            EventKind::OpStats {
                op: "matmul".into(),
                fwd_calls: 118_700,
                fwd_us: 0,
                bwd_calls: 0,
                bwd_us: 0,
                elems: 42,
                bytes: 0,
            },
        );
        let b = ev(
            3,
            0,
            EventKind::OpStats {
                op: "matmul".into(),
                fwd_calls: 118_701,
                fwd_us: 0,
                bwd_calls: 0,
                bwd_us: 0,
                elems: 42,
                bytes: 0,
            },
        );
        assert!(
            first_divergence(&[a], &[b]).is_some(),
            "call counts are semantic"
        );
    }

    #[test]
    fn histogram_metrics_reduce_to_identity() {
        let mk = |value, count| {
            ev(
                4,
                0,
                EventKind::Metric {
                    name: "lm_encoder_forward_secs".into(),
                    kind: "histogram".into(),
                    value,
                    count: Some(count),
                    p50: Some(value),
                    p95: Some(value * 2.0),
                    p99: Some(value * 3.0),
                },
            )
        };
        assert_eq!(first_divergence(&[mk(0.5, 10)], &[mk(0.125, 99)]), None);
        // Counter metrics keep their value.
        let c1 = ev(
            4,
            0,
            EventKind::Metric {
                name: "nn_optimizer_steps".into(),
                kind: "counter".into(),
                value: 412.0,
                count: None,
                p50: None,
                p95: None,
                p99: None,
            },
        );
        let mut c2 = c1.clone();
        c2.kind = EventKind::Metric {
            name: "nn_optimizer_steps".into(),
            kind: "counter".into(),
            value: 413.0,
            count: None,
            p50: None,
            p95: None,
            p99: None,
        };
        assert!(
            first_divergence(&[c1], &[c2]).is_some(),
            "counter totals are semantic"
        );
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a = ev(1, 0, EventKind::Block { candidates: 3 });
        let b = ev(2, 0, EventKind::Block { candidates: 3 });
        let d = first_divergence(&[a.clone(), b], &[a]).expect("prefix must diverge");
        assert_eq!(d.index, 1);
        assert!(d.right.is_none());
    }

    #[test]
    fn canonical_lines_still_parse() {
        let e = ev(
            9,
            123,
            EventKind::Progress {
                phase: "mc_dropout".into(),
                done: 3,
                total: 10,
                examples: 300,
                ex_per_sec: 99.5,
                loss: None,
                eta_us: Some(77),
                tape_nodes: 0,
                heap_peak: 4096,
            },
        );
        let line = &canonical_lines(&[e])[0];
        let back = Event::parse(line).expect("canonical line must stay schema-valid");
        assert_eq!(back.t_us, 0);
    }
}
