//! The `promptem top` view model: fold a (possibly still-growing) trace
//! into one renderable frame.
//!
//! [`LiveState`] is pure — feed it events from a [`crate::stream::TraceStream`]
//! and ask for a frame; the CLI owns the polling loop and the terminal.
//! Keeping the model I/O-free is what makes the dashboard snapshot-testable
//! against a truncated fixture trace.

use crate::tree::SpanTree;
use em_obs::{Event, EventKind};
use std::fmt::Write as _;

/// Latest heartbeat numbers for one training phase, plus a bounded loss
/// history for the sparkline.
#[derive(Debug, Clone, Default)]
pub struct PhaseProgress {
    /// Ticks done at the last beat.
    pub done: u64,
    /// Expected ticks (0 = unknown).
    pub total: u64,
    /// Examples processed at the last beat.
    pub examples: u64,
    /// Examples/second at the last beat.
    pub ex_per_sec: f64,
    /// Running loss at the last beat.
    pub loss: Option<f64>,
    /// ETA at the last beat, µs.
    pub eta_us: Option<u64>,
    /// Recent running-loss values, oldest first (bounded).
    pub loss_history: Vec<f64>,
}

/// How many loss points the sparkline keeps per phase.
const LOSS_HISTORY: usize = 32;

/// The folded view of a live trace.
#[derive(Debug, Default)]
pub struct LiveState {
    events: Vec<Event>,
    /// Phases in first-heartbeat order, with their latest numbers.
    progress: Vec<(String, PhaseProgress)>,
    meta: Option<(u64, String, Option<String>, String)>,
    t_first_us: Option<u64>,
    t_last_us: u64,
    seed: u64,
    /// Serve requests seen (terminal outcomes), and how many were ok.
    serve_requests: u64,
    serve_ok: u64,
    /// Admission-control sheds, with the most recent reason.
    serve_rejects: u64,
    last_reject: Option<String>,
    /// Supervisor worker replacements, with the most recent reason.
    serve_restarts: u64,
    last_restart: Option<String>,
}

impl LiveState {
    /// An empty state (no events seen yet).
    pub fn new() -> LiveState {
        LiveState::default()
    }

    /// Events folded in so far.
    pub fn events(&self) -> u64 {
        self.events.len() as u64
    }

    /// Fold one event into the view.
    pub fn apply(&mut self, e: Event) {
        self.seed = self.seed.max(e.seed);
        self.t_first_us = Some(self.t_first_us.map_or(e.t_us, |t| t.min(e.t_us)));
        self.t_last_us = self.t_last_us.max(e.t_us);
        match &e.kind {
            EventKind::Progress {
                phase,
                done,
                total,
                examples,
                ex_per_sec,
                loss,
                eta_us,
                ..
            } => {
                let idx = match self.progress.iter().position(|(p, _)| p == phase) {
                    Some(i) => i,
                    None => {
                        self.progress
                            .push((phase.clone(), PhaseProgress::default()));
                        self.progress.len() - 1
                    }
                };
                let slot = &mut self.progress[idx].1;
                slot.done = *done;
                slot.total = *total;
                slot.examples = *examples;
                slot.ex_per_sec = *ex_per_sec;
                slot.loss = *loss;
                slot.eta_us = *eta_us;
                if let Some(l) = loss {
                    if slot.loss_history.len() == LOSS_HISTORY {
                        slot.loss_history.remove(0);
                    }
                    slot.loss_history.push(*l);
                }
            }
            EventKind::RunMeta {
                seed,
                config,
                git_sha,
                build,
                ..
            } => {
                self.meta = Some((*seed, config.clone(), git_sha.clone(), build.clone()));
            }
            EventKind::Request { outcome, .. } => {
                self.serve_requests += 1;
                if outcome == "ok" {
                    self.serve_ok += 1;
                }
            }
            EventKind::Reject { reason, .. } => {
                self.serve_rejects += 1;
                self.last_reject = Some(reason.clone());
            }
            EventKind::WorkerRestart { reason, .. } => {
                self.serve_restarts += 1;
                self.last_restart = Some(reason.clone());
            }
            _ => {}
        }
        self.events.push(e);
    }

    /// Fold a batch of events (the output of one stream poll).
    pub fn apply_all(&mut self, events: impl IntoIterator<Item = Event>) {
        for e in events {
            self.apply(e);
        }
    }

    /// The chain of currently-open spans, outermost first (the "where is
    /// the run right now" line).
    pub fn open_chain(&self, tree: &SpanTree) -> Vec<String> {
        // The innermost open span is the last-opened node that hasn't
        // closed; walking its parent links gives the active stack.
        let Some(tip) = tree.nodes().iter().rev().find(|n| !n.closed) else {
            return Vec::new();
        };
        let mut chain = vec![label(tree, tip.id)];
        let mut cur = tip.parent;
        while let Some(p) = cur {
            match tree.get(p) {
                Some(node) => {
                    chain.push(label(tree, p));
                    cur = node.parent;
                }
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Render one dashboard frame: header, identity, active span chain,
    /// per-phase heartbeats with loss sparklines, phase flame table, and
    /// the top-`top_k` op rows. Deterministic for a fixed event sequence.
    pub fn render(&self, top_k: usize) -> String {
        let tree = SpanTree::build(&self.events);
        let mut s = String::new();
        let elapsed_us = self
            .t_first_us
            .map_or(0, |first| self.t_last_us.saturating_sub(first));
        let _ = writeln!(
            s,
            "promptem top — seed {} · {} events · {:.1}s elapsed",
            self.seed,
            self.events.len(),
            elapsed_us as f64 / 1e6
        );
        if let Some((_, config, git_sha, build)) = &self.meta {
            let _ = writeln!(
                s,
                "identity: config {} · git {} · {} build",
                config,
                git_sha.as_deref().unwrap_or("unknown"),
                build
            );
        }
        let chain = self.open_chain(&tree);
        if chain.is_empty() {
            s.push_str("live: (no open span — run finished or not started)\n");
        } else {
            let _ = writeln!(s, "live: {}", chain.join(" > "));
        }
        let unclosed = tree.unclosed_count();
        let orphans = tree.orphan_count();
        if orphans > 0 {
            let _ = writeln!(s, "note: {orphans} orphaned span(s) — trace starts mid-run");
        }

        if !self.progress.is_empty() {
            s.push('\n');
            for (phase, p) in &self.progress {
                let frac = match p.total {
                    0 => format!("{} done", p.done),
                    t => format!("{}/{t}", p.done),
                };
                let _ = write!(s, "{phase:<12} {frac:>10}  {:>7.0} ex/s", p.ex_per_sec);
                match p.loss {
                    Some(l) => {
                        let _ = write!(s, "  loss {l:>8.4}");
                    }
                    None => s.push_str("  loss        -"),
                }
                match p.eta_us {
                    Some(eta) => {
                        let _ = write!(s, "  eta {:>6.1}s", eta as f64 / 1e6);
                    }
                    None => s.push_str("  eta      -"),
                }
                if p.loss_history.len() > 1 {
                    let _ = write!(s, "  {}", sparkline(&p.loss_history));
                }
                s.push('\n');
            }
        }

        if self.serve_requests + self.serve_rejects + self.serve_restarts > 0 {
            s.push('\n');
            let _ = writeln!(
                s,
                "{:<16} {:>10}  ({} ok)",
                em_obs::names::EV_REQUEST,
                self.serve_requests,
                self.serve_ok
            );
            let _ = writeln!(
                s,
                "{:<16} {:>10}  {}",
                em_obs::names::EV_REJECT,
                self.serve_rejects,
                self.last_reject.as_deref().unwrap_or("-")
            );
            let _ = writeln!(
                s,
                "{:<16} {:>10}  {}",
                em_obs::names::EV_WORKER_RESTART,
                self.serve_restarts,
                self.last_restart.as_deref().unwrap_or("-")
            );
        }

        let phases = crate::flame::aggregate(&tree);
        if !phases.is_empty() {
            s.push('\n');
            s.push_str(&crate::flame::render_table(&phases, top_k));
            // Flag in-flight phases: the flame table only sums closed spans.
            if unclosed > 0 {
                let _ = writeln!(
                    s,
                    "({unclosed} span(s) still open; their time is not in the table yet)"
                );
            }
        }

        let ops = crate::ops::aggregate(&self.events, &tree);
        if !ops.is_empty() {
            let totals = crate::ops::totals_by_op(&ops);
            let mut rows: Vec<(&String, u64, u64)> = totals
                .iter()
                .map(|(op, &(wall, bytes))| (op, wall, bytes))
                .collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            rows.truncate(top_k);
            s.push('\n');
            let _ = writeln!(s, "{:<16} {:>10} {:>12}", "op", "wall ms", "bytes");
            for (op, wall, bytes) in rows {
                let _ = writeln!(s, "{op:<16} {:>10.1} {bytes:>12}", wall as f64 / 1e3);
            }
        }
        s
    }
}

fn label(tree: &SpanTree, id: u64) -> String {
    match tree.get(id) {
        Some(n) => match &n.detail {
            Some(d) => format!("{}({d})", n.name),
            None => n.name.clone(),
        },
        None => format!("#{id}"),
    }
}

/// Render values as a unicode sparkline, scaled to the observed range
/// (a flat series renders as a flat mid-height bar).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if hi > lo {
                let t = (v - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            } else {
                BARS[3]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[0.0, 0.5, 1.0]), "▁▅█");
        assert_eq!(sparkline(&[2.0, 2.0]), "▄▄");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn serve_rows_fold_request_reject_and_restart_events() {
        let mut st = LiveState::new();
        let ev = |seq: u64, kind: EventKind| Event {
            seq,
            seed: 7,
            t_us: seq * 1000,
            span: None,
            kind,
        };
        st.apply(ev(
            1,
            EventKind::Request {
                id: "r1".into(),
                pairs: 4,
                queue: 0,
                wall_us: 900,
                outcome: "ok".into(),
            },
        ));
        st.apply(ev(
            2,
            EventKind::Request {
                id: "r2".into(),
                pairs: 1,
                queue: 3,
                wall_us: 100,
                outcome: "deadline".into(),
            },
        ));
        st.apply(ev(
            3,
            EventKind::Reject {
                id: "r3".into(),
                reason: "queue_full".into(),
                retry_after_ms: 25,
            },
        ));
        st.apply(ev(
            4,
            EventKind::WorkerRestart {
                worker: 1,
                restarts: 1,
                backoff_ms: 10,
                reason: "panic".into(),
            },
        ));
        let frame = st.render(5);
        assert!(
            frame.contains("request                   2  (1 ok)"),
            "{frame}"
        );
        assert!(
            frame.contains("reject                    1  queue_full"),
            "{frame}"
        );
        assert!(
            frame.contains("worker_restart            1  panic"),
            "{frame}"
        );

        // A run with no serve traffic keeps the dashboard unchanged.
        let quiet = LiveState::new().render(5);
        assert!(!quiet.contains("worker_restart"), "{quiet}");
    }

    #[test]
    fn progress_tracks_latest_beat_and_history() {
        let mut st = LiveState::new();
        for (i, loss) in [(4u64, 3.0), (8, 2.0), (12, 1.0)] {
            st.apply(Event {
                seq: i,
                seed: 7,
                t_us: i * 1000,
                span: None,
                kind: EventKind::Progress {
                    phase: "pretrain".into(),
                    done: i,
                    total: 40,
                    examples: i * 16,
                    ex_per_sec: 100.0,
                    loss: Some(loss),
                    eta_us: Some(1_000_000),
                    tape_nodes: 0,
                    heap_peak: 0,
                },
            });
        }
        assert_eq!(st.progress.len(), 1);
        let (_, p) = &st.progress[0];
        assert_eq!((p.done, p.total), (12, 40));
        assert_eq!(p.loss_history, vec![3.0, 2.0, 1.0]);
        let frame = st.render(5);
        assert!(frame.contains("pretrain"), "{frame}");
        assert!(frame.contains("12/40"), "{frame}");
        assert!(frame.contains("█▅▁"), "{frame}");
    }
}
