//! Rebuild the span tree a run emitted.
//!
//! Span open/close events carry process-global ids and parent links, so
//! the tree is reconstructible from the trace alone. The builder is
//! tolerant of truncated traces: a span that never closed keeps
//! `closed = false` with zeroed timing rather than poisoning the tree.

use em_obs::{Event, EventKind};
use std::collections::HashMap;

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span id from the trace (process-global, not densified).
    pub id: u64,
    /// Static span name (`"pretrain"`, `"teacher"`, ...).
    pub name: String,
    /// Optional free-form label (dataset name, method id).
    pub detail: Option<String>,
    /// Parent span id, when nested.
    pub parent: Option<u64>,
    /// Child span ids in open order.
    pub children: Vec<u64>,
    /// Sequence number of the open event (orders siblings).
    pub open_seq: u64,
    /// Wall-clock duration in microseconds (0 until closed).
    pub wall_us: u64,
    /// Live-heap delta across the span in bytes (0 until closed).
    pub heap_delta: i64,
    /// Process peak heap at close in bytes (0 until closed).
    pub heap_peak: u64,
    /// Whether the close event was seen.
    pub closed: bool,
}

/// The reconstructed span forest of one trace (usually a single root).
#[derive(Debug, Default)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    index: HashMap<u64, usize>,
    roots: Vec<u64>,
    orphans: u64,
}

impl SpanTree {
    /// Build the tree from a trace's events.
    pub fn build(events: &[Event]) -> SpanTree {
        let mut tree = SpanTree::default();
        for e in events {
            match &e.kind {
                EventKind::SpanOpen {
                    id,
                    parent,
                    name,
                    detail,
                } => {
                    let node = SpanNode {
                        id: *id,
                        name: name.clone(),
                        detail: detail.clone(),
                        parent: *parent,
                        children: Vec::new(),
                        open_seq: e.seq,
                        wall_us: 0,
                        heap_delta: 0,
                        heap_peak: 0,
                        closed: false,
                    };
                    let idx = tree.nodes.len();
                    tree.nodes.push(node);
                    tree.index.insert(*id, idx);
                    match parent.and_then(|p| tree.index.get(&p).copied()) {
                        Some(pidx) => tree.nodes[pidx].children.push(*id),
                        None => {
                            // A named parent the trace never opened means
                            // the slice starts mid-run: count it so
                            // reports can say so instead of silently
                            // promoting the span to a root.
                            if parent.is_some() {
                                tree.orphans += 1;
                            }
                            tree.roots.push(*id);
                        }
                    }
                }
                EventKind::SpanClose {
                    id,
                    wall_us,
                    heap_delta,
                    heap_peak,
                    ..
                } => {
                    if let Some(&idx) = tree.index.get(id) {
                        let node = &mut tree.nodes[idx];
                        node.wall_us = *wall_us;
                        node.heap_delta = *heap_delta;
                        node.heap_peak = *heap_peak;
                        node.closed = true;
                    }
                }
                _ => {}
            }
        }
        tree
    }

    /// Look up a span by id.
    pub fn get(&self, id: u64) -> Option<&SpanNode> {
        self.index.get(&id).map(|&i| &self.nodes[i])
    }

    /// All spans in open order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Root span ids in open order (spans with no parent in the trace).
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// Spans whose close event never arrived (truncated or live trace).
    pub fn unclosed_count(&self) -> u64 {
        self.nodes.iter().filter(|n| !n.closed).count() as u64
    }

    /// Spans promoted to roots because their recorded parent was never
    /// opened in this trace (the slice starts mid-run).
    pub fn orphan_count(&self) -> u64 {
        self.orphans
    }

    /// Wall time spent in a span *excluding* its children — the "self"
    /// column of the flame table. Saturates at zero when child clocks
    /// overlap the parent close (possible on truncated traces).
    pub fn self_wall_us(&self, id: u64) -> u64 {
        let Some(node) = self.get(id) else { return 0 };
        let child_total: u64 = node
            .children
            .iter()
            .filter_map(|c| self.get(*c))
            .map(|c| c.wall_us)
            .sum();
        node.wall_us.saturating_sub(child_total)
    }

    /// Nesting depth of a span (roots are depth 0).
    pub fn depth(&self, id: u64) -> usize {
        let mut depth = 0;
        let mut cur = self.get(id).and_then(|n| n.parent);
        while let Some(p) = cur {
            depth += 1;
            cur = self.get(p).and_then(|n| n.parent);
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(seq: u64, id: u64, parent: Option<u64>, name: &str) -> Event {
        Event {
            seq,
            seed: 0,
            t_us: seq * 10,
            span: parent,
            kind: EventKind::SpanOpen {
                id,
                parent,
                name: name.into(),
                detail: None,
            },
        }
    }

    fn close(seq: u64, id: u64, name: &str, wall_us: u64) -> Event {
        Event {
            seq,
            seed: 0,
            t_us: seq * 10,
            span: None,
            kind: EventKind::SpanClose {
                id,
                name: name.into(),
                wall_us,
                heap_delta: 64,
                heap_peak: 1024,
            },
        }
    }

    #[test]
    fn rebuilds_nesting_and_self_time() {
        let events = vec![
            open(1, 1, None, "outer"),
            open(2, 2, Some(1), "inner_a"),
            close(3, 2, "inner_a", 30),
            open(4, 3, Some(1), "inner_b"),
            close(5, 3, "inner_b", 50),
            close(6, 1, "outer", 100),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.roots(), &[1]);
        let outer = tree.get(1).unwrap();
        assert_eq!(outer.children, vec![2, 3]);
        assert_eq!(outer.wall_us, 100);
        assert!(outer.closed);
        assert_eq!(tree.self_wall_us(1), 20, "100 - 30 - 50");
        assert_eq!(tree.self_wall_us(2), 30, "leaf self == total");
        assert_eq!(tree.depth(1), 0);
        assert_eq!(tree.depth(3), 1);
    }

    #[test]
    fn unclosed_spans_survive_truncation() {
        let events = vec![open(1, 1, None, "outer"), open(2, 2, Some(1), "inner")];
        let tree = SpanTree::build(&events);
        assert!(!tree.get(1).unwrap().closed);
        assert_eq!(tree.self_wall_us(1), 0);
        assert_eq!(tree.unclosed_count(), 2);
        assert_eq!(tree.orphan_count(), 0);
    }

    #[test]
    fn orphan_parents_become_roots() {
        // A trace sliced mid-run can reference a parent it never opened.
        let events = vec![open(5, 9, Some(4), "late")];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.roots(), &[9]);
        assert_eq!(tree.orphan_count(), 1);
        // A genuine root is not an orphan.
        let clean = SpanTree::build(&[open(1, 1, None, "outer")]);
        assert_eq!(clean.orphan_count(), 0);
    }
}
