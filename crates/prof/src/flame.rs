//! Flamegraph-style aggregation of the span tree.
//!
//! Spans are grouped by name (the pipeline opens e.g. one `teacher` span
//! per LST iteration; the aggregate row sums them). `total` is inclusive
//! wall time, `self` excludes child spans, so the `self` column across
//! all rows partitions the run's measured time. Span names never
//! self-nest in this codebase, so summing inclusive time per name does
//! not double-count.

use crate::tree::SpanTree;
use std::collections::HashMap;

/// One aggregate row: every span with the same name, folded.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameRow {
    /// Span name.
    pub name: String,
    /// How many spans carried this name.
    pub calls: u64,
    /// Inclusive wall time across all calls, microseconds.
    pub total_us: u64,
    /// Wall time excluding child spans, microseconds.
    pub self_us: u64,
    /// Net live-heap delta across all calls, bytes.
    pub heap_delta: i64,
    /// Largest process peak heap observed at any close, bytes.
    pub heap_peak: u64,
}

/// Fold a span tree into per-name rows, sorted by total time descending
/// (ties broken by name so output is deterministic).
pub fn aggregate(tree: &SpanTree) -> Vec<FlameRow> {
    let mut by_name: HashMap<&str, FlameRow> = HashMap::new();
    for node in tree.nodes() {
        let row = by_name.entry(&node.name).or_insert_with(|| FlameRow {
            name: node.name.clone(),
            calls: 0,
            total_us: 0,
            self_us: 0,
            heap_delta: 0,
            heap_peak: 0,
        });
        row.calls += 1;
        row.total_us += node.wall_us;
        row.self_us += tree.self_wall_us(node.id);
        row.heap_delta += node.heap_delta;
        row.heap_peak = row.heap_peak.max(node.heap_peak);
    }
    let mut rows: Vec<FlameRow> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    rows
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1e3)
}

fn fmt_heap_delta(bytes: i64) -> String {
    let formatted = em_obs::alloc::format_bytes(bytes.unsigned_abs() as usize);
    if bytes < 0 {
        format!("-{formatted}")
    } else {
        format!("+{formatted}")
    }
}

/// Render the top-`top` rows as an aligned TTY table.
pub fn render_table(rows: &[FlameRow], top: usize) -> String {
    let mut lines = vec![vec![
        "phase".to_string(),
        "calls".to_string(),
        "total ms".to_string(),
        "self ms".to_string(),
        "heap".to_string(),
        "peak".to_string(),
    ]];
    for row in rows.iter().take(top) {
        lines.push(vec![
            row.name.clone(),
            row.calls.to_string(),
            fmt_ms(row.total_us),
            fmt_ms(row.self_us),
            fmt_heap_delta(row.heap_delta),
            em_obs::alloc::format_bytes(row.heap_peak as usize),
        ]);
    }
    let mut widths = vec![0usize; 6];
    for line in &lines {
        for (w, cell) in widths.iter_mut().zip(line) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for line in &lines {
        for (col, (cell, w)) in line.iter().zip(&widths).enumerate() {
            if col == 0 {
                // Left-align the name column, right-align the numbers.
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("  {cell:>w$}"));
            }
        }
        // Trailing spaces from the left-aligned column would be invisible
        // noise in diffs; trim per line.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    if rows.len() > top {
        out.push_str(&format!("... and {} more phases\n", rows.len() - top));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_obs::{Event, EventKind};

    fn span_events(spec: &[(u64, Option<u64>, &str, u64)]) -> Vec<Event> {
        // (id, parent, name, wall) — opens in order, closes in reverse.
        let mut events = Vec::new();
        let mut seq = 0;
        for &(id, parent, name, _) in spec {
            seq += 1;
            events.push(Event {
                seq,
                seed: 0,
                t_us: 0,
                span: parent,
                kind: EventKind::SpanOpen {
                    id,
                    parent,
                    name: name.into(),
                    detail: None,
                },
            });
        }
        for &(id, _, name, wall) in spec.iter().rev() {
            seq += 1;
            events.push(Event {
                seq,
                seed: 0,
                t_us: 0,
                span: None,
                kind: EventKind::SpanClose {
                    id,
                    name: name.into(),
                    wall_us: wall,
                    heap_delta: 100,
                    heap_peak: id * 1000,
                },
            });
        }
        events
    }

    #[test]
    fn same_name_spans_fold_into_one_row() {
        let events = span_events(&[
            (1, None, "lst", 100),
            (2, Some(1), "teacher", 30),
            (3, Some(1), "teacher", 50),
        ]);
        let rows = aggregate(&SpanTree::build(&events));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "lst");
        assert_eq!(rows[0].total_us, 100);
        assert_eq!(rows[0].self_us, 20, "100 - 30 - 50");
        let teacher = &rows[1];
        assert_eq!((teacher.calls, teacher.total_us), (2, 80));
        assert_eq!(teacher.self_us, 80, "leaves keep all their time");
        assert_eq!(teacher.heap_delta, 200);
        assert_eq!(teacher.heap_peak, 3000, "max across calls");
    }

    #[test]
    fn table_renders_aligned_and_truncates() {
        let events = span_events(&[
            (1, None, "pretrain", 500),
            (2, None, "tune", 300),
            (3, None, "encode", 100),
        ]);
        let table = render_table(&aggregate(&SpanTree::build(&events)), 2);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("phase"), "{table}");
        assert!(lines[1].starts_with("pretrain"), "sorted by total: {table}");
        assert!(lines[2].starts_with("tune"), "{table}");
        assert_eq!(lines[3], "... and 1 more phases");
    }
}
