//! Incrementally read a JSONL trace while it is being written.
//!
//! The sink writes one whole line per event and flushes, but a reader
//! polling the file can still observe a partial final line (the OS
//! exposes writes at byte granularity, and a crash can truncate
//! mid-line). [`TraceStream`] therefore only parses up to the last
//! newline it has seen and carries the unterminated tail across polls,
//! so `promptem top` never trips over a line that is still landing.

use em_obs::Event;
use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::{Path, PathBuf};

/// A tailing trace reader: call [`poll`](TraceStream::poll) repeatedly;
/// each call returns the events that became complete since the last one.
#[derive(Debug)]
pub struct TraceStream {
    path: PathBuf,
    /// Byte offset of the next unread byte in the file.
    offset: u64,
    /// An unterminated final line carried until its newline arrives.
    carry: String,
    /// Complete lines consumed so far (for error line numbers).
    lines: u64,
}

impl TraceStream {
    /// Start tailing `path`. The file need not exist yet; polls simply
    /// return nothing until it does.
    pub fn open(path: impl Into<PathBuf>) -> TraceStream {
        TraceStream {
            path: path.into(),
            offset: 0,
            carry: String::new(),
            lines: 0,
        }
    }

    /// The path being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read whatever the writer has appended since the last poll and
    /// parse every *complete* line into events. A trailing line without
    /// its newline is buffered, not an error. A complete line that fails
    /// to parse is a real error (`"line N: <why>"`). A file that shrank
    /// (writer restarted with truncation) resets the stream to the top.
    pub fn poll(&mut self) -> Result<Vec<Event>, String> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            // Not-yet-created is the normal "run hasn't started" state.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("{}: {e}", self.path.display())),
        };
        let len = file
            .metadata()
            .map_err(|e| format!("{}: {e}", self.path.display()))?
            .len();
        if len < self.offset {
            // The writer truncated and started over; follow it.
            self.offset = 0;
            self.carry.clear();
            self.lines = 0;
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        let mut fresh = String::new();
        file.take(len - self.offset)
            .read_to_string(&mut fresh)
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        self.offset = len;

        let mut buf = std::mem::take(&mut self.carry);
        buf.push_str(&fresh);
        // Everything before the last newline is complete; the rest waits.
        let complete_end = match buf.rfind('\n') {
            Some(i) => i + 1,
            None => {
                self.carry = buf;
                return Ok(Vec::new());
            }
        };
        self.carry = buf[complete_end..].to_string();
        let mut out = Vec::new();
        for raw in buf[..complete_end].lines() {
            self.lines += 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let e = Event::parse(line).map_err(|err| format!("line {}: {err}", self.lines))?;
            out.push(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_obs::EventKind;
    use std::io::Write as _;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            seed: 7,
            t_us: seq * 100,
            span: None,
            kind: EventKind::Block { candidates: seq },
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("em_prof_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn missing_file_polls_empty_then_follows_appends() {
        let path = scratch("appends.jsonl");
        std::fs::remove_file(&path).ok();
        let mut s = TraceStream::open(&path);
        assert_eq!(s.poll().unwrap(), vec![]);

        std::fs::write(&path, format!("{}\n", ev(1).to_json())).unwrap();
        assert_eq!(s.poll().unwrap(), vec![ev(1)]);
        assert_eq!(s.poll().unwrap(), vec![], "no growth, no events");

        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "{}", ev(2).to_json()).unwrap();
        writeln!(f, "{}", ev(3).to_json()).unwrap();
        drop(f);
        assert_eq!(s.poll().unwrap(), vec![ev(2), ev(3)]);
    }

    #[test]
    fn partial_last_line_is_carried_not_failed() {
        let path = scratch("partial.jsonl");
        let full = ev(1).to_json();
        let (head, tail) = full.split_at(full.len() / 2);
        // First write: a complete line plus half of the next one.
        std::fs::write(&path, format!("{}\n{head}", ev(9).to_json())).unwrap();
        let mut s = TraceStream::open(&path);
        assert_eq!(s.poll().unwrap(), vec![ev(9)], "the torn line must wait");
        // The writer finishes the line: the event appears on the next poll.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(f, "{tail}").unwrap();
        drop(f);
        assert_eq!(s.poll().unwrap(), vec![ev(1)]);
    }

    #[test]
    fn corrupt_complete_line_reports_its_number() {
        let path = scratch("corrupt.jsonl");
        std::fs::write(&path, format!("{}\nnot json\n", ev(1).to_json())).unwrap();
        let mut s = TraceStream::open(&path);
        let err = s.poll().unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn truncation_restart_resets_to_the_top() {
        let path = scratch("truncate.jsonl");
        std::fs::write(&path, format!("{}\n{}\n", ev(1).to_json(), ev(2).to_json())).unwrap();
        let mut s = TraceStream::open(&path);
        assert_eq!(s.poll().unwrap().len(), 2);
        // A fresh, shorter file means the writer restarted.
        std::fs::write(&path, format!("{}\n", ev(5).to_json())).unwrap();
        assert_eq!(s.poll().unwrap(), vec![ev(5)]);
    }
}
