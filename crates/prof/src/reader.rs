//! Read a JSONL trace file back into typed events.
//!
//! The writer side (`em_obs::sink`) emits one [`Event`] per line via
//! [`Event::to_json`]; this is the matching consumer. Blank lines are
//! skipped (a crash mid-write can truncate the final line — that still
//! fails, but with the line number attached so the cut is findable).

use em_obs::Event;
use std::path::Path;

/// Parse a whole trace body. Returns every event in file order, or the
/// first parse failure as `"line N: <why>"`.
pub fn parse_trace(body: &str) -> Result<Vec<Event>, String> {
    let mut out = Vec::new();
    for (idx, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        match Event::parse(line) {
            Ok(e) => out.push(e),
            Err(err) => return Err(format!("line {}: {err}", idx + 1)),
        }
    }
    Ok(out)
}

/// Read and parse a trace file; errors carry the path.
pub fn load_trace(path: &Path) -> Result<Vec<Event>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_trace(&body).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_obs::EventKind;

    #[test]
    fn parses_events_in_order_and_skips_blanks() {
        let a = Event {
            seq: 1,
            seed: 7,
            t_us: 10,
            span: None,
            kind: EventKind::Block { candidates: 4 },
        };
        let b = Event {
            seq: 2,
            seed: 7,
            t_us: 20,
            span: Some(1),
            kind: EventKind::PretrainStep {
                step: 0,
                mlm_loss: 2.5,
            },
        };
        let body = format!("{}\n\n{}\n", a.to_json(), b.to_json());
        let events = parse_trace(&body).unwrap();
        assert_eq!(events, vec![a, b]);
    }

    #[test]
    fn errors_carry_the_line_number() {
        let good = Event {
            seq: 1,
            seed: 0,
            t_us: 0,
            span: None,
            kind: EventKind::Block { candidates: 1 },
        };
        let body = format!("{}\nnot json\n", good.to_json());
        let err = parse_trace(&body).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn load_trace_names_the_file_on_failure() {
        let err = load_trace(Path::new("/nonexistent/trace.jsonl")).unwrap_err();
        assert!(err.contains("/nonexistent/trace.jsonl"), "{err}");
    }
}
