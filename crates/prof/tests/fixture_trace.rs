//! End-to-end over checked-in traces: two same-seed `promptem match`
//! runs (seed 7, REL-HETER export, 40 pretrain steps, 2 epochs) captured
//! with `--metrics-out --op-profile`. They differ only in
//! wall-clock/heap noise, so the manifest must distill both to the same
//! training story and the diff gate must pass clean under default
//! thresholds — including the per-op wall/byte gates.

use std::path::Path;

fn fixture(name: &str) -> Vec<em_obs::Event> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    em_prof::load_trace(&path).unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn fixture_manifest_tells_the_training_story() {
    let m = em_prof::manifest::manifest(&fixture("run_a.jsonl"));
    assert_eq!(m.seed, 7);
    assert!(
        m.events > 50,
        "suspiciously small trace: {} events",
        m.events
    );
    assert!(m.total_wall_us > 0);
    assert!(m.peak_heap > 0, "CLI installs the counting allocator");
    assert_eq!(m.pretrain_steps, 40);
    assert!(m.epoch_batches > 0);
    assert_eq!(m.optimizer_steps, m.pretrain_steps + m.epoch_batches);
    assert!(m.epochs >= 4, "pretrain + teacher + student epochs");
    assert!(m.best_valid_f1.is_some(), "teacher/student report valid F1");
    assert!(m.final_train_loss.is_some());
    assert!(
        m.test_f1.is_some(),
        "core_test_f1 gauge sampled at shutdown"
    );
    assert!(m.pseudo_selected > 0, "LST selected pseudo-labels");
    assert_eq!(m.non_finite_events, 0);

    let names: Vec<&str> = m.phases.iter().map(|p| p.name.as_str()).collect();
    for phase in ["match", "pretrain", "tune", "lst", "teacher", "student"] {
        assert!(names.contains(&phase), "phase {phase} missing: {names:?}");
    }
    // `match` wraps the whole pipeline, so it must top the table.
    assert_eq!(m.phases[0].name, "match");
    assert!(m.phases[0].self_us < m.phases[0].total_us);
}

#[test]
fn same_seed_fixtures_diff_clean() {
    let a = em_prof::manifest::manifest(&fixture("run_a.jsonl"));
    let b = em_prof::manifest::manifest(&fixture("run_b.jsonl"));
    // Everything deterministic matches exactly...
    assert_eq!(a.optimizer_steps, b.optimizer_steps);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.pseudo_selected, b.pseudo_selected);
    assert_eq!(a.best_valid_f1, b.best_valid_f1);
    assert_eq!(a.test_f1, b.test_f1);
    // ...and the gate agrees, in both directions.
    let t = em_prof::Thresholds::default();
    let forward = em_prof::diff(&a, &b, &t);
    assert_eq!(forward.regressions(), 0, "{}", forward.render());
    let backward = em_prof::diff(&b, &a, &t);
    assert_eq!(backward.regressions(), 0, "{}", backward.render());
}

#[test]
fn fixture_ops_explain_the_pseudo_select_blob() {
    let m = em_prof::manifest::manifest(&fixture("run_a.jsonl"));
    assert!(!m.ops.is_empty(), "op-profiled run must carry op rows");
    for r in &m.ops {
        assert!(
            em_obs::names::ALL_OP_NAMES.contains(&r.op.as_str()),
            "op {} not in the registry",
            r.op
        );
        assert!(r.phase != "(unattributed)", "flush outside a span: {r:?}");
    }
    // The MC-Dropout scoring child span owns the bulk of pseudo_select,
    // and its named tape ops account for ≥90% of its wall time — the
    // blob is explained, not just renamed.
    let score = m
        .phases
        .iter()
        .find(|p| p.name == "pseudo_score")
        .expect("scoring child span present");
    let attributed: u64 = m
        .ops
        .iter()
        .filter(|r| r.phase == "pseudo_score")
        .map(|r| r.total_us())
        .sum();
    assert!(
        attributed * 10 >= score.total_us * 9,
        "ops explain {attributed}µs of the {}µs scoring phase (<90%)",
        score.total_us
    );
    // And pseudo_select itself is no longer a single self-time leaf.
    let select = m
        .phases
        .iter()
        .find(|p| p.name == "pseudo_select")
        .expect("pseudo_select span present");
    assert!(
        select.self_us * 10 <= select.total_us,
        "pseudo_select still holds {}µs of {}µs as self time",
        select.self_us,
        select.total_us
    );
}

#[test]
fn fixture_bench_report_is_populated() {
    let m = em_prof::manifest::manifest(&fixture("run_a.jsonl"));
    let json = em_prof::report::bench_report_json(&m);
    assert!(json.contains("\"schema\": \"promptem-bench-report/v2\""));
    assert!(json.contains("\"seed\": 7"));
    assert!(json.contains("\"name\": \"pretrain\""));
    assert!(!json.contains("\"total_wall_us\": 0,"), "{json}");
    assert!(!json.contains("\"peak_heap_bytes\": 0,"), "{json}");
    assert!(!json.contains("\"test_f1\": null"), "{json}");
}

#[test]
fn live_partial_fixture_renders_the_dashboard_mid_write() {
    // A real traced run cut off mid-write: 133 complete lines and a torn
    // final line (the writer was mid-flush when the reader polled). The
    // stream must surface every complete event and the dashboard must
    // render a coherent frame from them.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/live_partial.jsonl");
    let mut stream = em_prof::TraceStream::open(&path);
    let mut state = em_prof::LiveState::new();
    state.apply_all(stream.poll().unwrap_or_else(|e| panic!("{e}")));
    assert_eq!(state.events(), 133, "torn line must wait, not fail");
    assert_eq!(stream.poll().unwrap(), vec![], "no growth, no events");

    let frame = state.render(5);
    assert!(
        frame.contains("promptem top — seed 7 · 133 events"),
        "{frame}"
    );
    assert!(frame.contains("identity: config "), "{frame}");
    assert!(frame.contains("release build"), "{frame}");
    // The active stack at the cut: the student is training inside LST.
    assert!(
        frame.contains("live: match(cli) > tune(cli) > lst > lst_iter(iter 0) > student"),
        "{frame}"
    );
    // Heartbeat rows for every phase that beat before the cut, with the
    // finished pretrain pinned at its full tick count.
    for phase in ["pretrain", "mc_dropout", "tune"] {
        assert!(frame.contains(phase), "no {phase} row in: {frame}");
    }
    assert!(frame.contains("20/20"), "{frame}");
    // The flame table exists but flags the spans still in flight.
    assert!(frame.contains("span(s) still open"), "{frame}");
    // Op-profiled run: the op table has rows.
    assert!(frame.contains("matmul"), "{frame}");
    // The fold is pure: rendering is deterministic.
    assert_eq!(frame, state.render(5));
}
