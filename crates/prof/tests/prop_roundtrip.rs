//! Property test: every `em-obs` event kind survives the writer → reader
//! round trip losslessly. The writer is `Event::to_json` (what the JSONL
//! sink emits); the reader is `em_prof::parse_trace` (what `promptem
//! report` consumes). Any field a new event variant adds must round-trip
//! or this test catches it.

use em_obs::{Event, EventKind, Level};
use proptest::prelude::*;

/// Build one event kind from shared raw material. `idx` selects the
/// variant; `opt` bits toggle the optional fields so both the `null` and
/// the populated encodings get exercised.
#[allow(clippy::too_many_arguments)]
fn make_kind(
    idx: usize,
    a: u64,
    b: u64,
    x: f64,
    y: f64,
    text: String,
    counts: Vec<u64>,
    opt: u8,
) -> EventKind {
    let opt_f = |bit: u8, v: f64| (opt & bit != 0).then_some(v);
    let opt_u = |bit: u8, v: u64| (opt & bit != 0).then_some(v);
    match idx {
        0 => EventKind::SpanOpen {
            id: a,
            parent: opt_u(1, b),
            name: text.clone(),
            detail: (opt & 2 != 0).then_some(text),
        },
        1 => EventKind::SpanClose {
            id: a,
            name: text,
            wall_us: b,
            heap_delta: a as i64 - b as i64,
            heap_peak: a.wrapping_mul(3),
        },
        2 => EventKind::EpochSummary {
            epoch: a,
            train_loss: x,
            valid_f1: opt_f(1, y),
            threshold: opt_f(2, y / 2.0),
            examples: b,
            batches: a % 97,
            wall_us: b.wrapping_mul(7),
        },
        3 => EventKind::PseudoSelect {
            count: a,
            tpr: opt_f(1, y),
            tnr: opt_f(2, y / 3.0),
        },
        4 => EventKind::Prune {
            dropped: a,
            passes: b,
        },
        5 => EventKind::PretrainStep {
            step: a,
            mlm_loss: x,
        },
        6 => EventKind::Block { candidates: a },
        7 => EventKind::NonFinite {
            op: text,
            node: a,
            stage: if opt & 1 != 0 { "value" } else { "grad" }.into(),
            bad: a.min(b),
            total: a.max(b),
        },
        8 => EventKind::Audit {
            nodes: a,
            dead: b,
            detached: a % 13,
            unused: b % 17,
        },
        9 => EventKind::Message {
            level: [
                Level::Error,
                Level::Warn,
                Level::Info,
                Level::Debug,
                Level::Trace,
            ][(a % 5) as usize],
            text,
        },
        10 => EventKind::UncHist {
            source: text,
            lo: x.min(y),
            hi: x.max(y),
            mean: (x + y) / 2.0,
            counts,
        },
        11 => EventKind::RunMeta {
            seed: a,
            config: format!("{b:016x}"),
            git_sha: (opt & 1 != 0).then(|| format!("{a:07x}")),
            build: if opt & 2 != 0 { "release" } else { "debug" }.into(),
            schema: b % 5,
        },
        12 => EventKind::CkptSave {
            step: a,
            bytes: b,
            kept: a % 7,
        },
        13 => EventKind::CkptRestore {
            step: a,
            pretrain_steps: b,
            epochs: a % 11,
            batches: b % 19,
        },
        14 => EventKind::RecoveredBatch {
            phase: text,
            step: a,
            consecutive: b % 5,
        },
        15 => EventKind::IoRetry {
            op: text,
            attempt: a % 4,
            delay_ms: b % 1000,
            gave_up: opt & 1 != 0,
        },
        16 => EventKind::OpStats {
            op: text,
            fwd_calls: a,
            fwd_us: b,
            bwd_calls: a % 23,
            bwd_us: b % 29,
            elems: a.wrapping_mul(5),
            bytes: b.wrapping_mul(11),
        },
        17 => EventKind::Progress {
            phase: text,
            done: a,
            total: b,
            examples: a.wrapping_mul(16),
            ex_per_sec: x.abs(),
            loss: opt_f(1, y),
            eta_us: opt_u(2, b.wrapping_mul(3)),
            tape_nodes: a % 31,
            heap_peak: b % 37,
        },
        18 => EventKind::Metric {
            name: text,
            kind: ["counter", "gauge", "histogram"][(a % 3) as usize].into(),
            value: x,
            count: opt_u(1, b),
            p50: opt_f(2, y),
            p95: opt_f(4, y * 2.0),
            p99: opt_f(8, y * 3.0),
        },
        19 => EventKind::Request {
            id: text,
            pairs: a % 64,
            queue: b % 128,
            wall_us: a.wrapping_mul(13),
            outcome: if opt & 1 != 0 { "ok" } else { "deadline" }.into(),
        },
        20 => EventKind::Reject {
            id: text,
            reason: if opt & 1 != 0 {
                "queue_full"
            } else {
                "draining"
            }
            .into(),
            retry_after_ms: b % 1000,
        },
        21 => EventKind::WorkerRestart {
            worker: a % 8,
            restarts: b % 32,
            backoff_ms: a % 500,
            reason: if opt & 1 != 0 { "panic" } else { "wedged" }.into(),
        },
        _ => EventKind::Drain {
            completed: a,
            rejected: b % 100,
            failed: a % 9,
            restarts: b % 7,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_event_kind_round_trips_through_the_reader(
        kind_idx in 0usize..23,
        ints in (0u64..1_000_000_000, 0u64..1_000_000, 0u64..1 << 40, 0u8..16),
        floats in (-1e9f64..1e9, 0.0f64..100.0),
        text in "[a-zA-Z0-9_ .\"\\\\/-]{0,16}",
        counts in proptest::collection::vec(0u64..100_000, 0..9),
    ) {
        let (a, b, t_us, opt) = ints;
        let (x, y) = floats;
        let event = Event {
            seq: a + 1,
            seed: b,
            t_us,
            span: (opt & 8 != 0).then_some(a % 1000),
            kind: make_kind(kind_idx, a, b, x, y, text, counts, opt),
        };
        let body = format!("{}\n", event.to_json());
        let parsed = em_prof::parse_trace(&body)
            .unwrap_or_else(|e| panic!("{e}\nbody: {body}"));
        prop_assert_eq!(&parsed, &vec![event.clone()]);
    }

    #[test]
    fn multi_line_traces_preserve_order(
        steps in proptest::collection::vec((0u64..1000, -10.0f64..10.0), 1..20),
    ) {
        let events: Vec<Event> = steps
            .iter()
            .enumerate()
            .map(|(i, &(step, loss))| Event {
                seq: i as u64 + 1,
                seed: 7,
                t_us: i as u64,
                span: None,
                kind: EventKind::PretrainStep { step, mlm_loss: loss },
            })
            .collect();
        let body: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let parsed = em_prof::parse_trace(&body).unwrap();
        prop_assert_eq!(parsed, events);
    }
}
