//! A process-wide metrics registry: counters, gauges, and log-bucket
//! histograms addressable by name plus label set.
//!
//! Handles are cheap `Arc` clones; fetch them once (e.g. in a `OnceLock`)
//! and update them with single atomic operations on the hot path. The
//! registry itself is a mutex-guarded map touched only at handle-creation
//! time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets between the underflow and
/// overflow buckets: exponents [`MIN_EXP`] ..= [`MAX_EXP`].
const EXP_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Smallest finite bucket holds values in `[2^MIN_EXP, 2^(MIN_EXP+1))`.
const MIN_EXP: i32 = -16;
/// Largest finite bucket holds values in `[2^MAX_EXP, 2^(MAX_EXP+1))`.
const MAX_EXP: i32 = 31;
/// Total bucket count: underflow + exponent buckets + overflow.
pub const BUCKETS: usize = EXP_BUCKETS + 2;

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    Key {
        name: name.to_string(),
        labels,
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramInner>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<HashMap<Key, Metric>> {
    static REGISTRY: OnceLock<Mutex<HashMap<Key, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn get_or_insert<T>(
    name: &str,
    labels: &[(&str, &str)],
    make: impl FnOnce() -> Metric,
    extract: impl Fn(&Metric) -> Option<T>,
) -> T {
    let key = key(name, labels);
    // Poison recovery: the map is only inserted into under the lock, so a
    // panicked registrant leaves it structurally intact.
    let mut map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let metric = map.entry(key).or_insert_with(make);
    let extracted = extract(metric);
    let type_name = metric.type_name();
    // Release the lock before panicking so a type-mismatch doesn't poison
    // the whole registry for unrelated threads.
    drop(map);
    extracted.unwrap_or_else(|| panic!("metric '{name}' already registered as a {type_name}"))
}

/// Monotonic counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle (stores an `f64`).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    counts: [AtomicU64; BUCKETS],
    sum_bits: AtomicU64,
}

/// Log-bucket histogram handle: power-of-two buckets spanning
/// `2^-16 ..= 2^32`, plus underflow and overflow buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// The bucket a value lands in: 0 is underflow (everything below
/// `2^-16`, including zero, negatives, and NaN), `BUCKETS - 1` is overflow
/// (`>= 2^32`), and bucket `i` in between holds `[2^(i-1-16), 2^(i-16))`.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < f64::powi(2.0, MIN_EXP) {
        return 0;
    }
    if v >= f64::powi(2.0, MAX_EXP + 1) {
        return BUCKETS - 1;
    }
    // log2(v) in [MIN_EXP, MAX_EXP+1); floor gives the bucket exponent.
    let exp = v.log2().floor() as i32;
    let exp = exp.clamp(MIN_EXP, MAX_EXP);
    (exp - MIN_EXP) as usize + 1
}

/// The half-open value range `[lo, hi)` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    assert!(i < BUCKETS, "bucket {i} out of range");
    if i == 0 {
        return (f64::NEG_INFINITY, f64::powi(2.0, MIN_EXP));
    }
    if i == BUCKETS - 1 {
        return (f64::powi(2.0, MAX_EXP + 1), f64::INFINITY);
    }
    let exp = MIN_EXP + (i as i32 - 1);
    (f64::powi(2.0, exp), f64::powi(2.0, exp + 1))
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: f64) {
        self.0.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// A consistent-enough copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            counts,
        }
    }
}

/// Point-in-time histogram contents.
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; index with [`bucket_index`].
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: f64,
}

/// The representative value reported for bucket `i`: the midpoint of its
/// bounds, except the underflow bucket (whose lower bound is -inf) reports
/// half its upper bound and the overflow bucket (upper bound +inf) reports
/// its lower bound.
fn bucket_midpoint(i: usize) -> f64 {
    let (lo, hi) = bucket_bounds(i);
    if i == 0 {
        hi / 2.0
    } else if i == BUCKETS - 1 {
        lo
    } else {
        (lo + hi) / 2.0
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// The estimated `q`-quantile (`q` in `[0, 1]`), read from bucket
    /// midpoints: the rank-`ceil(q·n)` observation's bucket reports its
    /// midpoint. Log buckets bound the relative error at ~±33% within a
    /// bucket, which is enough for regression gating. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_midpoint(i);
            }
        }
        bucket_midpoint(BUCKETS - 1)
    }

    /// The (p50, p95, p99) triple reports quote.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
        )
    }
}

/// Fetch (or create) the counter `name{labels}`. Panics if the key is
/// already registered as a different metric type.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    get_or_insert(
        name,
        labels,
        || Metric::Counter(Arc::new(AtomicU64::new(0))),
        |m| match m {
            Metric::Counter(c) => Some(Counter(c.clone())),
            _ => None,
        },
    )
}

/// Fetch (or create) the gauge `name{labels}`. Panics if the key is already
/// registered as a different metric type.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    get_or_insert(
        name,
        labels,
        || Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        |m| match m {
            Metric::Gauge(g) => Some(Gauge(g.clone())),
            _ => None,
        },
    )
}

/// Fetch (or create) the histogram `name{labels}`. Panics if the key is
/// already registered as a different metric type.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Histogram {
    get_or_insert(
        name,
        labels,
        || {
            Metric::Histogram(Arc::new(HistogramInner {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }))
        },
        |m| match m {
            Metric::Histogram(h) => Some(Histogram(h.clone())),
            _ => None,
        },
    )
}

/// One registered metric, sampled: the payload of a `metric` trace event.
pub struct MetricSample {
    /// Metric name with the sorted label set folded in
    /// (`name{k="v",...}`), matching [`render_text`] line prefixes.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Counter total, gauge value, or histogram mean.
    pub value: f64,
    /// Histogram observation count (`None` for counters/gauges).
    pub count: Option<u64>,
    /// Histogram (p50, p95, p99) estimate (`None` for counters/gauges).
    pub percentiles: Option<(f64, f64, f64)>,
}

fn fold_name(key: &Key) -> String {
    if key.labels.is_empty() {
        key.name.clone()
    } else {
        let inner: Vec<String> = key
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        format!("{}{{{}}}", key.name, inner.join(","))
    }
}

/// Sample every registered metric, sorted by folded name.
pub fn samples() -> Vec<MetricSample> {
    // Poison recovery: sampling reads atomics only, safe after any panic.
    let map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out: Vec<MetricSample> = map
        .iter()
        .map(|(key, metric)| {
            let name = fold_name(key);
            match metric {
                Metric::Counter(c) => MetricSample {
                    name,
                    kind: "counter",
                    value: c.load(Ordering::Relaxed) as f64,
                    count: None,
                    percentiles: None,
                },
                Metric::Gauge(g) => MetricSample {
                    name,
                    kind: "gauge",
                    value: f64::from_bits(g.load(Ordering::Relaxed)),
                    count: None,
                    percentiles: None,
                },
                Metric::Histogram(h) => {
                    let snap = Histogram(h.clone()).snapshot();
                    MetricSample {
                        name,
                        kind: "histogram",
                        value: snap.mean(),
                        count: Some(snap.count()),
                        percentiles: Some(snap.percentiles()),
                    }
                }
            }
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Render every registered metric as sorted human-readable lines (for a
/// shutdown dump or debugging).
pub fn render_text() -> String {
    let lines: Vec<String> = samples()
        .iter()
        .map(|s| {
            let value = match s.kind {
                "histogram" => {
                    let (p50, p95, p99) = s.percentiles.unwrap_or((0.0, 0.0, 0.0));
                    format!(
                        "count {} mean {:.6} p50 {:.6} p95 {:.6} p99 {:.6}",
                        s.count.unwrap_or(0),
                        s.value,
                        p50,
                        p95,
                        p99
                    )
                }
                _ => s.value.to_string(),
            };
            format!("{} {}", s.name, value)
        })
        .collect();
    lines.join("\n")
}

/// Drop every registered metric (test isolation).
pub fn reset() {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_under_and_overflow() {
        // Exact powers of two start a fresh bucket; just below stays in the
        // previous one.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::powi(2.0, MIN_EXP) / 2.0), 0);
        assert_eq!(bucket_index(f64::powi(2.0, MIN_EXP)), 1);
        assert_eq!(bucket_index(1.0), (0 - MIN_EXP) as usize + 1);
        assert_eq!(bucket_index(1.5), bucket_index(1.0));
        assert_eq!(bucket_index(2.0), bucket_index(1.0) + 1);
        assert_eq!(bucket_index(f64::powi(2.0, MAX_EXP + 1) - 1.0), BUCKETS - 2);
        assert_eq!(bucket_index(f64::powi(2.0, MAX_EXP + 1)), BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);

        // Bounds agree with the index function across every bucket.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            if lo.is_finite() {
                assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            }
            if hi.is_finite() {
                assert_eq!(bucket_index(hi), i + 1, "upper bound of bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = histogram("test_hist_records", &[]);
        h.record(1.0);
        h.record(1.9);
        h.record(1e12); // overflow (> 2^32)
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.counts[bucket_index(1.0)], 2);
        assert_eq!(snap.counts[BUCKETS - 1], 1);
        assert!((snap.sum - (1.0 + 1.9 + 1e12)).abs() < 1e-6);
    }

    #[test]
    fn label_identity_and_order_insensitivity() {
        let a = counter("test_label_identity", &[("ds", "rel"), ("rate", "low")]);
        let b = counter("test_label_identity", &[("rate", "low"), ("ds", "rel")]);
        let c = counter("test_label_identity", &[("ds", "semi"), ("rate", "low")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name+labels must share a value");
        assert_eq!(c.get(), 0, "different labels must be distinct");
    }

    #[test]
    fn gauge_set_get() {
        let g = gauge("test_gauge_roundtrip", &[]);
        g.set(-3.75);
        assert_eq!(g.get(), -3.75);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        counter("test_type_mismatch", &[]);
        gauge("test_type_mismatch", &[]);
    }

    #[test]
    fn percentiles_pin_a_known_distribution() {
        // 50 obs in [1,2), 45 in [2,4), 5 in [64,128): with rank = ceil(q·n),
        // p50 lands on the last observation of the first bucket, p95 on the
        // last of the second, p99 in the tail bucket. Midpoints: 1.5, 3, 96.
        let h = histogram("test_hist_percentiles", &[]);
        for _ in 0..50 {
            h.record(1.0);
        }
        for _ in 0..45 {
            h.record(3.0);
        }
        for _ in 0..5 {
            h.record(100.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.50), 1.5);
        assert_eq!(snap.percentile(0.95), 3.0);
        assert_eq!(snap.percentile(0.99), 96.0);
        assert_eq!(snap.percentiles(), (1.5, 3.0, 96.0));
        // q=0 clamps to the first observation, q=1 to the last.
        assert_eq!(snap.percentile(0.0), 1.5);
        assert_eq!(snap.percentile(1.0), 96.0);
    }

    #[test]
    fn percentile_edge_buckets_and_empty() {
        let empty = HistogramSnapshot {
            counts: vec![0; BUCKETS],
            sum: 0.0,
        };
        assert_eq!(empty.percentile(0.5), 0.0);

        // Underflow observations report half the smallest finite bound;
        // overflow observations report the overflow lower bound.
        let h = histogram("test_hist_percentile_edges", &[]);
        h.record(0.0); // underflow
        h.record(1e12); // overflow (>= 2^32)
        let snap = h.snapshot();
        assert_eq!(snap.percentile(0.25), f64::powi(2.0, MIN_EXP) / 2.0);
        assert_eq!(snap.percentile(1.0), f64::powi(2.0, MAX_EXP + 1));
    }

    #[test]
    fn samples_fold_labels_and_quote_percentiles() {
        counter("test_samples_counter", &[("b", "2"), ("a", "1")]).add(3);
        let h = histogram("test_samples_hist", &[]);
        h.record(1.0);
        let all = samples();
        let c = all
            .iter()
            .find(|s| s.name == "test_samples_counter{a=\"1\",b=\"2\"}")
            .expect("counter sample missing");
        assert_eq!(c.kind, "counter");
        assert!(c.value >= 3.0);
        assert!(c.percentiles.is_none());
        let hs = all
            .iter()
            .find(|s| s.name == "test_samples_hist")
            .expect("histogram sample missing");
        assert_eq!(hs.kind, "histogram");
        assert!(hs.count.unwrap_or(0) >= 1);
        assert!(hs.percentiles.is_some());
    }

    #[test]
    fn render_text_mentions_registered_metrics() {
        counter("test_render_counter", &[("k", "v")]).add(7);
        let text = render_text();
        assert!(text.contains("test_render_counter{k=\"v\"} 7"), "{text}");
    }
}
