//! The registry of JSONL event type tags and span names.
//!
//! Every `"type"` tag written into a trace and every span name opened by
//! the workspace lives here as a `const`, so the schema is greppable in one
//! place and `em-prof` / `em-lint` can enumerate it. The `em-lint`
//! `event_name` rule rejects ad-hoc event-tag string literals anywhere
//! else in library code; span names are not string-matched (several are
//! ordinary words), but call sites are expected to use these consts.

/// `span_open` — a span began.
pub const EV_SPAN_OPEN: &str = "span_open";
/// `span_close` — a span ended (wall/heap deltas).
pub const EV_SPAN_CLOSE: &str = "span_close";
/// `epoch_summary` — one finished training epoch (loss, dev F1, size).
pub const EV_EPOCH_SUMMARY: &str = "epoch_summary";
/// `pseudo_select` — pseudo-labels moved into the train set (paper §4.2).
pub const EV_PSEUDO_SELECT: &str = "pseudo_select";
/// `prune` — dynamic data pruning dropped examples (paper §4.3).
pub const EV_PRUNE: &str = "prune";
/// `pretrain_step` — one MLM pretraining optimizer step.
pub const EV_PRETRAIN_STEP: &str = "pretrain_step";
/// `block` — a blocking query batch completed.
pub const EV_BLOCK: &str = "block";
/// `non_finite` — the tape sanitizer caught a NaN/Inf buffer.
pub const EV_NON_FINITE: &str = "non_finite";
/// `audit` — graph-audit summary at loss construction.
pub const EV_AUDIT: &str = "audit";
/// `message` — free-form log line.
pub const EV_MESSAGE: &str = "message";
/// `unc_hist` — a histogram of MC-Dropout uncertainty scores.
pub const EV_UNC_HIST: &str = "unc_hist";
/// `metric` — one registry metric sampled into the trace (at shutdown).
pub const EV_METRIC: &str = "metric";
/// `ckpt_save` — a training checkpoint was durably written.
pub const EV_CKPT_SAVE: &str = "ckpt_save";
/// `ckpt_restore` — a run resumed from a checkpoint; carries the work
/// counters the resumed process skips so manifests stay comparable.
pub const EV_CKPT_RESTORE: &str = "ckpt_restore";
/// `recovered_batch` — a non-finite batch loss was skipped (graceful
/// degradation instead of an abort).
pub const EV_RECOVERED_BATCH: &str = "recovered_batch";
/// `io_retry` — a transient I/O failure triggered a bounded retry.
pub const EV_IO_RETRY: &str = "io_retry";
/// `op_stats` — aggregated tape-op counters flushed at a stage boundary
/// (one event per op name with nonzero activity since the last flush).
pub const EV_OP_STATS: &str = "op_stats";
/// `progress` — a periodic trainer heartbeat (throughput, ETA, running
/// loss, tape/heap gauges) emitted every `--progress-every` ticks.
pub const EV_PROGRESS: &str = "progress";
/// `run_meta` — the run's identity card (seed, config fingerprint, git
/// SHA, build profile, schema version), emitted as the first trace line.
pub const EV_RUN_META: &str = "run_meta";
/// `request` — one serve request reached a terminal outcome (ok,
/// deadline_exceeded, failed, …); carries pair count and wall time.
pub const EV_REQUEST: &str = "request";
/// `reject` — admission control shed a serve request (queue full,
/// draining, duplicate id) instead of queuing it unboundedly.
pub const EV_REJECT: &str = "reject";
/// `worker_restart` — the serve supervisor replaced a panicked or wedged
/// worker actor (carries the consecutive-restart count and backoff).
pub const EV_WORKER_RESTART: &str = "worker_restart";
/// `drain` — the serve process finished a graceful drain (terminal
/// request tallies; the service answers nothing after this).
pub const EV_DRAIN: &str = "drain";

/// Every event type tag, in schema order.
pub const ALL_EVENT_TAGS: [&str; 23] = [
    EV_SPAN_OPEN,
    EV_SPAN_CLOSE,
    EV_EPOCH_SUMMARY,
    EV_PSEUDO_SELECT,
    EV_PRUNE,
    EV_PRETRAIN_STEP,
    EV_BLOCK,
    EV_NON_FINITE,
    EV_AUDIT,
    EV_MESSAGE,
    EV_UNC_HIST,
    EV_METRIC,
    EV_CKPT_SAVE,
    EV_CKPT_RESTORE,
    EV_RECOVERED_BATCH,
    EV_IO_RETRY,
    EV_OP_STATS,
    EV_PROGRESS,
    EV_RUN_META,
    EV_REQUEST,
    EV_REJECT,
    EV_WORKER_RESTART,
    EV_DRAIN,
];

/// One CLI `match` invocation (detail: dataset name).
pub const SPAN_MATCH: &str = "match";
/// MLM pretraining over the serialized corpus.
pub const SPAN_PRETRAIN: &str = "pretrain";
/// Dataset encoding (tokenize + serialize).
pub const SPAN_ENCODE: &str = "encode";
/// Prompt-model tuning (teacher/student epochs live inside).
pub const SPAN_TUNE: &str = "tune";
/// Template grid search inside tuning.
pub const SPAN_GRID_TEMPLATE: &str = "grid_template";
/// Lightweight Self-Training (paper Algorithm 1) outer span.
pub const SPAN_LST: &str = "lst";
/// One LST iteration.
pub const SPAN_LST_ITER: &str = "lst_iter";
/// Teacher training inside LST.
pub const SPAN_TEACHER: &str = "teacher";
/// Pseudo-label selection inside LST.
pub const SPAN_PSEUDO_SELECT: &str = "pseudo_select";
/// MC-Dropout scoring passes inside pseudo-label selection.
pub const SPAN_PSEUDO_SCORE: &str = "pseudo_score";
/// One stochastic MC-Dropout forward pass (detail: `pass <i>/<n>`). Child
/// of `pseudo_score`, so its wall time stops reading as pure self time.
pub const SPAN_PSEUDO_PASS: &str = "pseudo_pass";
/// Uncertainty estimation over the scoring passes.
pub const SPAN_PSEUDO_UNCERTAINTY: &str = "pseudo_uncertainty";
/// Threshold + sort that turns scores into selected pseudo-labels.
pub const SPAN_PSEUDO_RANK: &str = "pseudo_rank";
/// Student training inside LST.
pub const SPAN_STUDENT: &str = "student";
/// Candidate blocking over a dataset.
pub const SPAN_BLOCK: &str = "block";
/// One baseline matcher run (detail: matcher name).
pub const SPAN_BASELINE: &str = "baseline";
/// Baseline fit phase.
pub const SPAN_FIT: &str = "fit";
/// Baseline predict phase.
pub const SPAN_PREDICT: &str = "predict";
/// One bench-harness method run (detail: method/dataset).
pub const SPAN_METHOD: &str = "method";
/// One `promptem serve` process lifetime (detail: bound address).
pub const SPAN_SERVE: &str = "serve";
/// One coalesced serve forward — a micro-batch of match requests pushed
/// through the tape-free path (detail: `<requests> req / <pairs> pairs`).
pub const SPAN_SERVE_BATCH: &str = "serve_batch";

/// Every span name the workspace opens, in rough pipeline order.
pub const ALL_SPAN_NAMES: [&str; 21] = [
    SPAN_MATCH,
    SPAN_PRETRAIN,
    SPAN_ENCODE,
    SPAN_TUNE,
    SPAN_GRID_TEMPLATE,
    SPAN_LST,
    SPAN_LST_ITER,
    SPAN_TEACHER,
    SPAN_PSEUDO_SELECT,
    SPAN_PSEUDO_SCORE,
    SPAN_PSEUDO_PASS,
    SPAN_PSEUDO_UNCERTAINTY,
    SPAN_PSEUDO_RANK,
    SPAN_STUDENT,
    SPAN_BLOCK,
    SPAN_BASELINE,
    SPAN_FIT,
    SPAN_PREDICT,
    SPAN_METHOD,
    SPAN_SERVE,
    SPAN_SERVE_BATCH,
];

/// Every autodiff tape op name, in tape recording order. The index of an
/// op in this array is its slot in the op-profiler's accumulation table
/// (`em-nn` pins the correspondence with a test), and the `em-lint`
/// `op_name` rule requires `op_stats` op strings to come from here.
pub const ALL_OP_NAMES: [&str; 27] = [
    "leaf",
    "matmul",
    "add",
    "add_row_broadcast",
    "sub",
    "mul",
    "scale",
    "add_const",
    "grad_reverse",
    "transpose",
    "tanh",
    "sigmoid",
    "gelu",
    "relu",
    "softmax_rows",
    "layer_norm",
    "gather_rows",
    "dropout",
    "concat_rows",
    "concat_cols",
    "slice_rows",
    "slice_cols",
    "mean_rows",
    "mean_all",
    "cross_entropy",
    "mse_loss",
    "nll_probs",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_and_snake_case() {
        for (i, a) in ALL_EVENT_TAGS.iter().enumerate() {
            assert!(
                a.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "tag {a} not snake_case"
            );
            for b in &ALL_EVENT_TAGS[i + 1..] {
                assert_ne!(a, b, "duplicate event tag");
            }
        }
    }

    #[test]
    fn span_names_are_unique() {
        for (i, a) in ALL_SPAN_NAMES.iter().enumerate() {
            for b in &ALL_SPAN_NAMES[i + 1..] {
                assert_ne!(a, b, "duplicate span name");
            }
        }
    }

    #[test]
    fn op_names_are_unique_and_snake_case() {
        for (i, a) in ALL_OP_NAMES.iter().enumerate() {
            assert!(
                a.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "op name {a} not snake_case"
            );
            for b in &ALL_OP_NAMES[i + 1..] {
                assert_ne!(a, b, "duplicate op name");
            }
        }
    }
}
