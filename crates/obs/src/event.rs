//! The typed event schema and its JSONL encoding.
//!
//! Every event is one JSON object per line. Common fields:
//!
//! | field  | type   | meaning                                             |
//! |--------|--------|-----------------------------------------------------|
//! | `seq`  | u64    | process-wide monotonic sequence number              |
//! | `seed` | u64    | the run seed (set via [`crate::set_run_seed`])      |
//! | `t_us` | u64    | microseconds since telemetry start                  |
//! | `span` | u64?   | id of the enclosing span, if any                    |
//! | `type` | string | the variant tag (see [`EventKind`])                 |
//!
//! Variant fields are documented on each [`EventKind`] variant. Optional
//! numeric fields encode as `null` when absent. The encoding is stable and
//! round-trips through [`Event::parse`], which the sink tests assert.

use crate::level::Level;
use crate::names;
use std::fmt::Write as _;

/// One telemetry event, ready for a sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Process-wide monotonic sequence number (1-based).
    pub seq: u64,
    /// The run seed, so traces from two runs are diffable.
    pub seed: u64,
    /// Microseconds since telemetry start.
    pub t_us: u64,
    /// Enclosing span id, when the event fired inside a span.
    pub span: Option<u64>,
    /// The payload.
    pub kind: EventKind,
}

/// The event payload variants.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span began. Fields: `id`, `parent` (nullable), `name`, `detail`
    /// (nullable free-form label, e.g. `"PromptEM/REL-HETER"`).
    SpanOpen {
        /// Span id (process-wide unique).
        id: u64,
        /// Parent span id, if nested.
        parent: Option<u64>,
        /// Static span name (`"pretrain"`, `"teacher"`, ...).
        name: String,
        /// Optional dynamic label.
        detail: Option<String>,
    },
    /// A span ended. Fields: `id`, `name`, `wall_us`, `heap_delta` (bytes,
    /// signed; 0 unless the counting allocator is installed), `heap_peak`
    /// (process peak bytes at close).
    SpanClose {
        /// Span id matching the open event.
        id: u64,
        /// Static span name (repeated for grep-ability).
        name: String,
        /// Wall-clock duration in microseconds.
        wall_us: u64,
        /// Live-heap delta across the span, in bytes.
        heap_delta: i64,
        /// Process peak heap at close, in bytes.
        heap_peak: u64,
    },
    /// One training epoch finished. Fields: `epoch`, `train_loss`,
    /// `valid_f1` (nullable, percent), `threshold` (nullable), `examples`
    /// (training examples seen this epoch, after balancing/pruning),
    /// `batches` (optimizer steps this epoch), `wall_us` (epoch duration).
    EpochSummary {
        /// 0-based epoch index.
        epoch: u64,
        /// Mean batch loss of the epoch.
        train_loss: f64,
        /// Validation F1 (percent) at the calibrated threshold, when
        /// validation ran this epoch.
        valid_f1: Option<f64>,
        /// The calibrated decision threshold, when validation ran.
        threshold: Option<f64>,
        /// Training examples seen this epoch (post balancing/pruning).
        examples: u64,
        /// Optimizer steps (batches) taken this epoch.
        batches: u64,
        /// Wall-clock duration of the epoch in microseconds.
        wall_us: u64,
    },
    /// Pseudo-labels were selected (paper §4.2). Fields: `count`, `tpr`
    /// (nullable), `tnr` (nullable) — quality is only known when gold
    /// labels were supplied for auditing (Table 5).
    PseudoSelect {
        /// Pseudo-labels moved from D_U into D_L.
        count: u64,
        /// True-positive rate against audit labels.
        tpr: Option<f64>,
        /// True-negative rate against audit labels.
        tnr: Option<f64>,
    },
    /// Dynamic data pruning fired (paper §4.3). Fields: `dropped`,
    /// `passes` (MC-Dropout passes used for MC-EL2N).
    Prune {
        /// Training examples removed by this pruning event.
        dropped: u64,
        /// MC-Dropout passes used to score them.
        passes: u64,
    },
    /// One MLM pretraining optimizer step. Fields: `step`, `mlm_loss`.
    PretrainStep {
        /// 0-based optimizer step.
        step: u64,
        /// The step's masked-LM loss.
        mlm_loss: f64,
    },
    /// A blocking query batch completed. Fields: `candidates`.
    Block {
        /// Candidate pairs produced.
        candidates: u64,
    },
    /// The tape sanitizer found a non-finite value or gradient during
    /// backward (`PROMPTEM_SANITIZE=1`). Fields: `op` (tape op name),
    /// `node` (tape node index), `stage` (`"value"` or `"grad"`), `bad`
    /// (non-finite element count), `total` (element count).
    NonFinite {
        /// Name of the tape op that produced the poisoned buffer.
        op: String,
        /// Tape node index (stable within one tape).
        node: u64,
        /// Which buffer is poisoned: `"value"` or `"grad"`.
        stage: String,
        /// Number of NaN/Inf elements.
        bad: u64,
        /// Total elements in the buffer.
        total: u64,
    },
    /// A graph audit ran over a recorded tape at loss construction.
    /// Fields: `nodes` (tape size), `dead` (nodes unreachable from the
    /// loss), `detached` (parameter leaves with no gradient path to the
    /// loss), `unused` (unfrozen store parameters never placed on the tape).
    Audit {
        /// Total recorded tape nodes.
        nodes: u64,
        /// Nodes computed but unreachable from the loss.
        dead: u64,
        /// On-tape parameter leaves with no gradient path from the loss.
        detached: u64,
        /// Unfrozen store parameters that never entered the tape.
        unused: u64,
    },
    /// Free-form log line. Fields: `level`, `text`.
    Message {
        /// Severity.
        level: Level,
        /// The message.
        text: String,
    },
    /// A histogram of MC-Dropout uncertainty scores (paper §4.2/§4.3).
    /// Fields: `source` (which scorer, e.g. `"pseudo_uncertainty"`),
    /// `lo`/`hi` (value range covered), `mean`, `counts` (linear bins
    /// over `[lo, hi]`; total observations is their sum).
    UncHist {
        /// Which uncertainty scorer produced the values.
        source: String,
        /// Smallest observed value (left edge of bin 0).
        lo: f64,
        /// Largest observed value (right edge of the last bin).
        hi: f64,
        /// Mean of the observed values.
        mean: f64,
        /// Observation counts per linear bin across `[lo, hi]`.
        counts: Vec<u64>,
    },
    /// One registry metric sampled into the trace (emitted at shutdown so
    /// traces are self-contained). Fields: `name` (label-folded, e.g.
    /// `nn_optimizer_steps{opt="adamw"}`), `kind` (`counter`/`gauge`/
    /// `histogram`), `value` (counter total, gauge value, or histogram
    /// mean), `count` (histogram observations; null otherwise), and
    /// `p50`/`p95`/`p99` (histogram percentiles; null otherwise).
    Metric {
        /// Metric name with labels folded in.
        name: String,
        /// `"counter"`, `"gauge"`, or `"histogram"`.
        kind: String,
        /// Counter total, gauge value, or histogram mean.
        value: f64,
        /// Histogram observation count.
        count: Option<u64>,
        /// Estimated 50th percentile (histograms only).
        p50: Option<f64>,
        /// Estimated 95th percentile (histograms only).
        p95: Option<f64>,
        /// Estimated 99th percentile (histograms only).
        p99: Option<f64>,
    },
    /// A training checkpoint was durably written (atomic temp → fsync →
    /// rename). Fields: `step` (optimizer-step or round tag), `bytes`
    /// (encoded size), `kept` (files remaining after rotation).
    CkptSave {
        /// Monotone tag: optimizer step (pretrain) or round (self-train).
        step: u64,
        /// Encoded checkpoint size in bytes.
        bytes: u64,
        /// Checkpoint files kept on disk after rotation.
        kept: u64,
    },
    /// A run resumed from a checkpoint. The counters record the work the
    /// resumed process *skips*, so a manifest built from its trace matches
    /// an uninterrupted same-seed run (`em-prof` adds them back in).
    /// Fields: `step`, `pretrain_steps`, `epochs`, `batches`.
    CkptRestore {
        /// The checkpoint tag resumed from.
        step: u64,
        /// Pretrain optimizer steps already taken before the checkpoint.
        pretrain_steps: u64,
        /// Epoch summaries the dead process had already emitted.
        epochs: u64,
        /// Batches accounted in those epoch summaries.
        batches: u64,
    },
    /// A non-finite batch loss was detected and the batch skipped instead
    /// of aborting the run. Fields: `phase` (e.g. `"pretrain"`,
    /// `"finetune"`), `step` (batch counter in that phase), `consecutive`
    /// (run length of bad batches so far).
    RecoveredBatch {
        /// Which training phase recovered.
        phase: String,
        /// The phase's batch/step counter at the failure.
        step: u64,
        /// Consecutive bad batches including this one.
        consecutive: u64,
    },
    /// A transient I/O failure triggered a bounded retry with deterministic
    /// backoff. Fields: `op` (operation name, e.g. `"ckpt_write"`),
    /// `attempt` (1-based failed attempt), `delay_ms` (backoff before the
    /// next attempt; 0 on the terminal event), `gave_up` (true on the
    /// terminal event emitted when the bounded retry is exhausted and the
    /// error is returned to the caller).
    IoRetry {
        /// The retried operation.
        op: String,
        /// The attempt that just failed (1-based).
        attempt: u64,
        /// Backoff applied before the next attempt, in milliseconds.
        delay_ms: u64,
        /// True when the retry budget is exhausted and the caller gets the
        /// error — the trace-visible alternative to failing silently.
        gave_up: bool,
    },
    /// Aggregated tape-op counters flushed at a stage boundary, one event
    /// per op name with nonzero activity since the previous flush. The
    /// enclosing `span` field attributes the totals to their phase.
    /// Fields: `op` (tape op name from [`names::ALL_OP_NAMES`]),
    /// `fwd_calls`/`fwd_us` (forward recordings and their wall time),
    /// `bwd_calls`/`bwd_us` (backward visits and their wall time),
    /// `elems` (output elements produced forward), `bytes` (net heap
    /// allocated across forward recordings; 0 without the counting
    /// allocator).
    OpStats {
        /// Tape op name (`"matmul"`, `"softmax_rows"`, ...).
        op: String,
        /// Forward recordings of this op since the last flush.
        fwd_calls: u64,
        /// Wall time of those forward recordings, in microseconds.
        fwd_us: u64,
        /// Backward visits of this op since the last flush.
        bwd_calls: u64,
        /// Wall time of those backward visits, in microseconds.
        bwd_us: u64,
        /// Output elements produced by the forward recordings.
        elems: u64,
        /// Net heap bytes allocated across the forward recordings.
        bytes: u64,
    },
    /// A periodic trainer heartbeat (emitted every `--progress-every`
    /// ticks; see [`crate::heartbeat`]). Fields: `phase` (training phase
    /// name, e.g. `"pretrain"`, `"tune"`, `"mc_dropout"`), `done`/`total`
    /// (ticks completed / expected; `total` is 0 when unknown), `examples`
    /// (examples processed so far), `ex_per_sec` (examples per second
    /// since the heartbeat started), `loss` (mean loss over the ticks
    /// since the previous beat; null when the phase has no loss),
    /// `eta_us` (projected microseconds to completion; null when `total`
    /// is unknown or the rate is zero), `tape_nodes` (cumulative autodiff
    /// tape nodes recorded process-wide), `heap_peak` (process peak heap
    /// bytes; 0 without the counting allocator).
    Progress {
        /// Training phase name.
        phase: String,
        /// Ticks (batches/steps/passes) completed so far.
        done: u64,
        /// Expected total ticks; 0 when unknown.
        total: u64,
        /// Examples processed so far.
        examples: u64,
        /// Examples per second since the heartbeat started.
        ex_per_sec: f64,
        /// Mean loss over the ticks since the previous beat.
        loss: Option<f64>,
        /// Projected microseconds to completion.
        eta_us: Option<u64>,
        /// Cumulative autodiff tape nodes recorded process-wide.
        tape_nodes: u64,
        /// Process peak heap bytes (0 without the counting allocator).
        heap_peak: u64,
    },
    /// The run's identity card, emitted once as the first trace line so
    /// every trace (and the bench-history entries distilled from it) is
    /// self-describing. Fields: `seed`, `config` (FNV-1a fingerprint of
    /// the resolved config, hex), `git_sha` (nullable; read from
    /// `.git/HEAD` when the process runs inside a checkout), `build`
    /// (`"debug"` or `"release"`), `schema` (run-meta schema version).
    RunMeta {
        /// The run seed (repeated from the envelope for grep-ability).
        seed: u64,
        /// FNV-1a 64 fingerprint of the resolved config, as hex.
        config: String,
        /// Git commit SHA of the working tree, when discoverable.
        git_sha: Option<String>,
        /// Build profile: `"debug"` or `"release"`.
        build: String,
        /// Schema version of this event (see [`crate::RUN_META_SCHEMA`]).
        schema: u64,
    },
    /// One serve request reached a terminal outcome. Fields: `id` (the
    /// client-chosen request id), `pairs` (match pairs in the request),
    /// `queue` (mailbox depth at admission), `wall_us` (admission →
    /// reply), `outcome` (`"ok"`, `"deadline_exceeded"`, `"failed"`, or
    /// `"bad_request"`).
    Request {
        /// Client-chosen request id.
        id: String,
        /// Match pairs carried by the request.
        pairs: u64,
        /// Mailbox depth observed at admission.
        queue: u64,
        /// Microseconds from admission to the reply being written.
        wall_us: u64,
        /// Terminal outcome tag.
        outcome: String,
    },
    /// Admission control shed a serve request instead of queuing it
    /// unboundedly. Fields: `id`, `reason` (`"queue_full"`, `"draining"`,
    /// `"duplicate_id"`, ...), `retry_after_ms` (client backoff hint).
    Reject {
        /// Client-chosen request id.
        id: String,
        /// Why the request was shed.
        reason: String,
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The serve supervisor replaced a dead or wedged worker actor.
    /// Fields: `worker` (slot index), `restarts` (consecutive restarts of
    /// this slot, 1-based), `backoff_ms` (bounded exponential backoff slept
    /// before the respawn), `reason` (`"panic"` or `"wedged"`).
    WorkerRestart {
        /// Worker slot index.
        worker: u64,
        /// Consecutive restarts of this slot including this one.
        restarts: u64,
        /// Backoff slept before respawning, in milliseconds.
        backoff_ms: u64,
        /// What the supervisor detected: `"panic"` or `"wedged"`.
        reason: String,
    },
    /// A graceful serve drain completed: terminal request tallies at the
    /// moment the service stopped answering. Fields: `completed`,
    /// `rejected`, `failed`, `restarts`.
    Drain {
        /// Requests answered with a match decision.
        completed: u64,
        /// Requests shed by admission control.
        rejected: u64,
        /// Requests answered with a typed failure (deadline, worker loss).
        failed: u64,
        /// Worker restarts over the process lifetime.
        restarts: u64,
    },
}

impl EventKind {
    /// The `type` tag used in the JSONL encoding.
    pub fn type_tag(&self) -> &'static str {
        match self {
            EventKind::SpanOpen { .. } => names::EV_SPAN_OPEN,
            EventKind::SpanClose { .. } => names::EV_SPAN_CLOSE,
            EventKind::EpochSummary { .. } => names::EV_EPOCH_SUMMARY,
            EventKind::PseudoSelect { .. } => names::EV_PSEUDO_SELECT,
            EventKind::Prune { .. } => names::EV_PRUNE,
            EventKind::PretrainStep { .. } => names::EV_PRETRAIN_STEP,
            EventKind::Block { .. } => names::EV_BLOCK,
            EventKind::NonFinite { .. } => names::EV_NON_FINITE,
            EventKind::Audit { .. } => names::EV_AUDIT,
            EventKind::Message { .. } => names::EV_MESSAGE,
            EventKind::UncHist { .. } => names::EV_UNC_HIST,
            EventKind::Metric { .. } => names::EV_METRIC,
            EventKind::CkptSave { .. } => names::EV_CKPT_SAVE,
            EventKind::CkptRestore { .. } => names::EV_CKPT_RESTORE,
            EventKind::RecoveredBatch { .. } => names::EV_RECOVERED_BATCH,
            EventKind::IoRetry { .. } => names::EV_IO_RETRY,
            EventKind::OpStats { .. } => names::EV_OP_STATS,
            EventKind::Progress { .. } => names::EV_PROGRESS,
            EventKind::RunMeta { .. } => names::EV_RUN_META,
            EventKind::Request { .. } => names::EV_REQUEST,
            EventKind::Reject { .. } => names::EV_REJECT,
            EventKind::WorkerRestart { .. } => names::EV_WORKER_RESTART,
            EventKind::Drain { .. } => names::EV_DRAIN,
        }
    }

    /// The severity a stderr filter applies to this event.
    pub fn level(&self) -> Level {
        match self {
            EventKind::Message { level, .. } => *level,
            EventKind::NonFinite { .. } => Level::Error,
            // An audit that found nothing is routine; one with findings is
            // actionable.
            EventKind::Audit { dead, detached, .. } => {
                if *dead > 0 || *detached > 0 {
                    Level::Warn
                } else {
                    Level::Debug
                }
            }
            // Skipping a batch, retrying I/O, shedding a request, or losing
            // a worker is a recovery, not business as usual — surface it.
            EventKind::RecoveredBatch { .. }
            | EventKind::IoRetry { .. }
            | EventKind::Reject { .. }
            | EventKind::WorkerRestart { .. } => Level::Warn,
            EventKind::EpochSummary { .. }
            | EventKind::PseudoSelect { .. }
            | EventKind::Prune { .. }
            | EventKind::CkptRestore { .. }
            | EventKind::Drain { .. }
            | EventKind::RunMeta { .. } => Level::Info,
            EventKind::CkptSave { .. } => Level::Debug,
            EventKind::SpanOpen { .. }
            | EventKind::SpanClose { .. }
            | EventKind::PretrainStep { .. }
            | EventKind::Block { .. }
            | EventKind::UncHist { .. }
            | EventKind::Metric { .. }
            | EventKind::OpStats { .. }
            | EventKind::Request { .. }
            | EventKind::Progress { .. } => Level::Debug,
        }
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, ",\"{key}\":{v}");
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

fn push_opt_f64(out: &mut String, key: &str, v: Option<f64>) {
    match v {
        Some(v) => {
            let _ = write!(out, ",\"{key}\":{v}");
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

fn push_u64_array(out: &mut String, key: &str, vs: &[u64]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

impl Event {
    /// Encode as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"seq\":{},\"seed\":{},\"t_us\":{}",
            self.seq, self.seed, self.t_us
        );
        push_opt_u64(&mut s, "span", self.span);
        let _ = write!(s, ",\"type\":\"{}\"", self.kind.type_tag());
        match &self.kind {
            EventKind::SpanOpen {
                id,
                parent,
                name,
                detail,
            } => {
                let _ = write!(s, ",\"id\":{id}");
                push_opt_u64(&mut s, "parent", *parent);
                s.push_str(",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(",\"detail\":");
                match detail {
                    Some(d) => push_json_str(&mut s, d),
                    None => s.push_str("null"),
                }
            }
            EventKind::SpanClose {
                id,
                name,
                wall_us,
                heap_delta,
                heap_peak,
            } => {
                let _ = write!(s, ",\"id\":{id}");
                s.push_str(",\"name\":");
                push_json_str(&mut s, name);
                let _ = write!(
                    s,
                    ",\"wall_us\":{wall_us},\"heap_delta\":{heap_delta},\"heap_peak\":{heap_peak}"
                );
            }
            EventKind::EpochSummary {
                epoch,
                train_loss,
                valid_f1,
                threshold,
                examples,
                batches,
                wall_us,
            } => {
                let _ = write!(s, ",\"epoch\":{epoch},\"train_loss\":{train_loss}");
                push_opt_f64(&mut s, "valid_f1", *valid_f1);
                push_opt_f64(&mut s, "threshold", *threshold);
                let _ = write!(
                    s,
                    ",\"examples\":{examples},\"batches\":{batches},\"wall_us\":{wall_us}"
                );
            }
            EventKind::PseudoSelect { count, tpr, tnr } => {
                let _ = write!(s, ",\"count\":{count}");
                push_opt_f64(&mut s, "tpr", *tpr);
                push_opt_f64(&mut s, "tnr", *tnr);
            }
            EventKind::Prune { dropped, passes } => {
                let _ = write!(s, ",\"dropped\":{dropped},\"passes\":{passes}");
            }
            EventKind::PretrainStep { step, mlm_loss } => {
                let _ = write!(s, ",\"step\":{step},\"mlm_loss\":{mlm_loss}");
            }
            EventKind::Block { candidates } => {
                let _ = write!(s, ",\"candidates\":{candidates}");
            }
            EventKind::NonFinite {
                op,
                node,
                stage,
                bad,
                total,
            } => {
                s.push_str(",\"op\":");
                push_json_str(&mut s, op);
                let _ = write!(s, ",\"node\":{node}");
                s.push_str(",\"stage\":");
                push_json_str(&mut s, stage);
                let _ = write!(s, ",\"bad\":{bad},\"total\":{total}");
            }
            EventKind::Audit {
                nodes,
                dead,
                detached,
                unused,
            } => {
                let _ = write!(
                    s,
                    ",\"nodes\":{nodes},\"dead\":{dead},\"detached\":{detached},\"unused\":{unused}"
                );
            }
            EventKind::Message { level, text } => {
                let _ = write!(s, ",\"level\":\"{}\"", level.name());
                s.push_str(",\"text\":");
                push_json_str(&mut s, text);
            }
            EventKind::UncHist {
                source,
                lo,
                hi,
                mean,
                counts,
            } => {
                s.push_str(",\"source\":");
                push_json_str(&mut s, source);
                let _ = write!(s, ",\"lo\":{lo},\"hi\":{hi},\"mean\":{mean}");
                push_u64_array(&mut s, "counts", counts);
            }
            EventKind::Metric {
                name,
                kind,
                value,
                count,
                p50,
                p95,
                p99,
            } => {
                s.push_str(",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(",\"kind\":");
                push_json_str(&mut s, kind);
                let _ = write!(s, ",\"value\":{value}");
                push_opt_u64(&mut s, "count", *count);
                push_opt_f64(&mut s, "p50", *p50);
                push_opt_f64(&mut s, "p95", *p95);
                push_opt_f64(&mut s, "p99", *p99);
            }
            EventKind::CkptSave { step, bytes, kept } => {
                let _ = write!(s, ",\"step\":{step},\"bytes\":{bytes},\"kept\":{kept}");
            }
            EventKind::CkptRestore {
                step,
                pretrain_steps,
                epochs,
                batches,
            } => {
                let _ = write!(
                    s,
                    ",\"step\":{step},\"pretrain_steps\":{pretrain_steps},\"epochs\":{epochs},\"batches\":{batches}"
                );
            }
            EventKind::RecoveredBatch {
                phase,
                step,
                consecutive,
            } => {
                s.push_str(",\"phase\":");
                push_json_str(&mut s, phase);
                let _ = write!(s, ",\"step\":{step},\"consecutive\":{consecutive}");
            }
            EventKind::IoRetry {
                op,
                attempt,
                delay_ms,
                gave_up,
            } => {
                s.push_str(",\"op\":");
                push_json_str(&mut s, op);
                let _ = write!(
                    s,
                    ",\"attempt\":{attempt},\"delay_ms\":{delay_ms},\"gave_up\":{gave_up}"
                );
            }
            EventKind::OpStats {
                op,
                fwd_calls,
                fwd_us,
                bwd_calls,
                bwd_us,
                elems,
                bytes,
            } => {
                s.push_str(",\"op\":");
                push_json_str(&mut s, op);
                let _ = write!(
                    s,
                    ",\"fwd_calls\":{fwd_calls},\"fwd_us\":{fwd_us},\"bwd_calls\":{bwd_calls},\"bwd_us\":{bwd_us},\"elems\":{elems},\"bytes\":{bytes}"
                );
            }
            EventKind::Progress {
                phase,
                done,
                total,
                examples,
                ex_per_sec,
                loss,
                eta_us,
                tape_nodes,
                heap_peak,
            } => {
                s.push_str(",\"phase\":");
                push_json_str(&mut s, phase);
                let _ = write!(
                    s,
                    ",\"done\":{done},\"total\":{total},\"examples\":{examples},\"ex_per_sec\":{ex_per_sec}"
                );
                push_opt_f64(&mut s, "loss", *loss);
                push_opt_u64(&mut s, "eta_us", *eta_us);
                let _ = write!(s, ",\"tape_nodes\":{tape_nodes},\"heap_peak\":{heap_peak}");
            }
            EventKind::RunMeta {
                seed,
                config,
                git_sha,
                build,
                schema,
            } => {
                let _ = write!(s, ",\"run_seed\":{seed}");
                s.push_str(",\"config\":");
                push_json_str(&mut s, config);
                s.push_str(",\"git_sha\":");
                match git_sha {
                    Some(sha) => push_json_str(&mut s, sha),
                    None => s.push_str("null"),
                }
                s.push_str(",\"build\":");
                push_json_str(&mut s, build);
                let _ = write!(s, ",\"schema\":{schema}");
            }
            EventKind::Request {
                id,
                pairs,
                queue,
                wall_us,
                outcome,
            } => {
                s.push_str(",\"id\":");
                push_json_str(&mut s, id);
                let _ = write!(
                    s,
                    ",\"pairs\":{pairs},\"queue\":{queue},\"wall_us\":{wall_us}"
                );
                s.push_str(",\"outcome\":");
                push_json_str(&mut s, outcome);
            }
            EventKind::Reject {
                id,
                reason,
                retry_after_ms,
            } => {
                s.push_str(",\"id\":");
                push_json_str(&mut s, id);
                s.push_str(",\"reason\":");
                push_json_str(&mut s, reason);
                let _ = write!(s, ",\"retry_after_ms\":{retry_after_ms}");
            }
            EventKind::WorkerRestart {
                worker,
                restarts,
                backoff_ms,
                reason,
            } => {
                let _ = write!(
                    s,
                    ",\"worker\":{worker},\"restarts\":{restarts},\"backoff_ms\":{backoff_ms}"
                );
                s.push_str(",\"reason\":");
                push_json_str(&mut s, reason);
            }
            EventKind::Drain {
                completed,
                rejected,
                failed,
                restarts,
            } => {
                let _ = write!(
                    s,
                    ",\"completed\":{completed},\"rejected\":{rejected},\"failed\":{failed},\"restarts\":{restarts}"
                );
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line produced by [`Event::to_json`].
    pub fn parse(line: &str) -> Result<Event, String> {
        let fields = parse_json_object(line)?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{key}' in {line}"))
        };
        let num = |key: &str| -> Result<f64, String> {
            match get(key)? {
                JsonVal::Num(n) => Ok(*n),
                other => Err(format!("field '{key}' is not a number: {other:?}")),
            }
        };
        let opt_num = |key: &str| -> Result<Option<f64>, String> {
            match get(key)? {
                JsonVal::Num(n) => Ok(Some(*n)),
                JsonVal::Null => Ok(None),
                other => Err(format!("field '{key}' is not a number or null: {other:?}")),
            }
        };
        let text = |key: &str| -> Result<String, String> {
            match get(key)? {
                JsonVal::Str(s) => Ok(s.clone()),
                other => Err(format!("field '{key}' is not a string: {other:?}")),
            }
        };
        let opt_text = |key: &str| -> Result<Option<String>, String> {
            match get(key)? {
                JsonVal::Str(s) => Ok(Some(s.clone())),
                JsonVal::Null => Ok(None),
                other => Err(format!("field '{key}' is not a string or null: {other:?}")),
            }
        };
        let u64_array = |key: &str| -> Result<Vec<u64>, String> {
            match get(key)? {
                JsonVal::Arr(vs) => Ok(vs.iter().map(|v| *v as u64).collect()),
                other => Err(format!("field '{key}' is not an array: {other:?}")),
            }
        };
        let boolean = |key: &str| -> Result<bool, String> {
            match get(key)? {
                JsonVal::Bool(b) => Ok(*b),
                other => Err(format!("field '{key}' is not a bool: {other:?}")),
            }
        };
        let tag = text("type")?;
        let kind = match tag.as_str() {
            names::EV_SPAN_OPEN => EventKind::SpanOpen {
                id: num("id")? as u64,
                parent: opt_num("parent")?.map(|v| v as u64),
                name: text("name")?,
                detail: opt_text("detail")?,
            },
            names::EV_SPAN_CLOSE => EventKind::SpanClose {
                id: num("id")? as u64,
                name: text("name")?,
                wall_us: num("wall_us")? as u64,
                heap_delta: num("heap_delta")? as i64,
                heap_peak: num("heap_peak")? as u64,
            },
            names::EV_EPOCH_SUMMARY => EventKind::EpochSummary {
                epoch: num("epoch")? as u64,
                train_loss: num("train_loss")?,
                valid_f1: opt_num("valid_f1")?,
                threshold: opt_num("threshold")?,
                examples: num("examples")? as u64,
                batches: num("batches")? as u64,
                wall_us: num("wall_us")? as u64,
            },
            names::EV_PSEUDO_SELECT => EventKind::PseudoSelect {
                count: num("count")? as u64,
                tpr: opt_num("tpr")?,
                tnr: opt_num("tnr")?,
            },
            names::EV_PRUNE => EventKind::Prune {
                dropped: num("dropped")? as u64,
                passes: num("passes")? as u64,
            },
            names::EV_PRETRAIN_STEP => EventKind::PretrainStep {
                step: num("step")? as u64,
                mlm_loss: num("mlm_loss")?,
            },
            names::EV_BLOCK => EventKind::Block {
                candidates: num("candidates")? as u64,
            },
            names::EV_NON_FINITE => EventKind::NonFinite {
                op: text("op")?,
                node: num("node")? as u64,
                stage: text("stage")?,
                bad: num("bad")? as u64,
                total: num("total")? as u64,
            },
            names::EV_AUDIT => EventKind::Audit {
                nodes: num("nodes")? as u64,
                dead: num("dead")? as u64,
                detached: num("detached")? as u64,
                unused: num("unused")? as u64,
            },
            names::EV_MESSAGE => EventKind::Message {
                level: Level::from_name(&text("level")?)
                    .ok_or_else(|| format!("bad level in {line}"))?,
                text: text("text")?,
            },
            names::EV_UNC_HIST => EventKind::UncHist {
                source: text("source")?,
                lo: num("lo")?,
                hi: num("hi")?,
                mean: num("mean")?,
                counts: u64_array("counts")?,
            },
            names::EV_METRIC => EventKind::Metric {
                name: text("name")?,
                kind: text("kind")?,
                value: num("value")?,
                count: opt_num("count")?.map(|v| v as u64),
                p50: opt_num("p50")?,
                p95: opt_num("p95")?,
                p99: opt_num("p99")?,
            },
            names::EV_CKPT_SAVE => EventKind::CkptSave {
                step: num("step")? as u64,
                bytes: num("bytes")? as u64,
                kept: num("kept")? as u64,
            },
            names::EV_CKPT_RESTORE => EventKind::CkptRestore {
                step: num("step")? as u64,
                pretrain_steps: num("pretrain_steps")? as u64,
                epochs: num("epochs")? as u64,
                batches: num("batches")? as u64,
            },
            names::EV_RECOVERED_BATCH => EventKind::RecoveredBatch {
                phase: text("phase")?,
                step: num("step")? as u64,
                consecutive: num("consecutive")? as u64,
            },
            names::EV_IO_RETRY => EventKind::IoRetry {
                op: text("op")?,
                attempt: num("attempt")? as u64,
                delay_ms: num("delay_ms")? as u64,
                gave_up: boolean("gave_up")?,
            },
            names::EV_OP_STATS => EventKind::OpStats {
                op: text("op")?,
                fwd_calls: num("fwd_calls")? as u64,
                fwd_us: num("fwd_us")? as u64,
                bwd_calls: num("bwd_calls")? as u64,
                bwd_us: num("bwd_us")? as u64,
                elems: num("elems")? as u64,
                bytes: num("bytes")? as u64,
            },
            names::EV_PROGRESS => EventKind::Progress {
                phase: text("phase")?,
                done: num("done")? as u64,
                total: num("total")? as u64,
                examples: num("examples")? as u64,
                ex_per_sec: num("ex_per_sec")?,
                loss: opt_num("loss")?,
                eta_us: opt_num("eta_us")?.map(|v| v as u64),
                tape_nodes: num("tape_nodes")? as u64,
                heap_peak: num("heap_peak")? as u64,
            },
            names::EV_RUN_META => EventKind::RunMeta {
                seed: num("run_seed")? as u64,
                config: text("config")?,
                git_sha: opt_text("git_sha")?,
                build: text("build")?,
                schema: num("schema")? as u64,
            },
            names::EV_REQUEST => EventKind::Request {
                id: text("id")?,
                pairs: num("pairs")? as u64,
                queue: num("queue")? as u64,
                wall_us: num("wall_us")? as u64,
                outcome: text("outcome")?,
            },
            names::EV_REJECT => EventKind::Reject {
                id: text("id")?,
                reason: text("reason")?,
                retry_after_ms: num("retry_after_ms")? as u64,
            },
            names::EV_WORKER_RESTART => EventKind::WorkerRestart {
                worker: num("worker")? as u64,
                restarts: num("restarts")? as u64,
                backoff_ms: num("backoff_ms")? as u64,
                reason: text("reason")?,
            },
            names::EV_DRAIN => EventKind::Drain {
                completed: num("completed")? as u64,
                rejected: num("rejected")? as u64,
                failed: num("failed")? as u64,
                restarts: num("restarts")? as u64,
            },
            other => return Err(format!("unknown event type '{other}'")),
        };
        Ok(Event {
            seq: num("seq")? as u64,
            seed: num("seed")? as u64,
            t_us: num("t_us")? as u64,
            span: opt_num("span")?.map(|v| v as u64),
            kind,
        })
    }

    /// A one-line human rendering for the stderr sink.
    pub fn render_human(&self) -> String {
        let prefix = format!(
            "[{:>5} {:>9.3}s]",
            self.kind.level(),
            self.t_us as f64 / 1e6
        );
        let body = match &self.kind {
            EventKind::SpanOpen {
                id,
                parent,
                name,
                detail,
            } => {
                let detail = detail
                    .as_deref()
                    .map(|d| format!(" ({d})"))
                    .unwrap_or_default();
                match parent {
                    Some(p) => format!("span {name}#{id} open{detail} (parent #{p})"),
                    None => format!("span {name}#{id} open{detail}"),
                }
            }
            EventKind::SpanClose {
                id,
                name,
                wall_us,
                heap_delta,
                ..
            } => format!(
                "span {name}#{id} close: {:.1}ms, heap {:+}B",
                *wall_us as f64 / 1e3,
                heap_delta
            ),
            EventKind::EpochSummary {
                epoch,
                train_loss,
                valid_f1,
                threshold,
                examples,
                batches,
                wall_us,
            } => {
                let mut s = format!("epoch {epoch}: loss {train_loss:.4}");
                if let Some(f1) = valid_f1 {
                    let _ = write!(s, ", valid F1 {f1:.1}");
                }
                if let Some(t) = threshold {
                    let _ = write!(s, ", threshold {t:.3}");
                }
                let _ = write!(
                    s,
                    " ({examples} ex / {batches} steps, {:.1}ms)",
                    *wall_us as f64 / 1e3
                );
                s
            }
            EventKind::PseudoSelect { count, tpr, tnr } => match (tpr, tnr) {
                (Some(tpr), Some(tnr)) => {
                    format!("pseudo-select: {count} labels (TPR {tpr:.2}, TNR {tnr:.2})")
                }
                _ => format!("pseudo-select: {count} labels"),
            },
            EventKind::Prune { dropped, passes } => {
                format!("prune: dropped {dropped} examples ({passes} MC passes)")
            }
            EventKind::PretrainStep { step, mlm_loss } => {
                format!("pretrain step {step}: mlm loss {mlm_loss:.4}")
            }
            EventKind::Block { candidates } => format!("blocking: {candidates} candidate pairs"),
            EventKind::NonFinite {
                op,
                node,
                stage,
                bad,
                total,
            } => format!("sanitizer: {bad}/{total} non-finite {stage} elements in {op}#{node}"),
            EventKind::Audit {
                nodes,
                dead,
                detached,
                unused,
            } => format!(
                "graph audit: {nodes} nodes, {dead} dead, {detached} detached params, {unused} unused params"
            ),
            EventKind::Message { text, .. } => text.clone(),
            EventKind::UncHist {
                source,
                lo,
                hi,
                mean,
                counts,
            } => {
                let n: u64 = counts.iter().sum();
                format!("uncertainty[{source}]: {n} scores in [{lo:.4}, {hi:.4}], mean {mean:.4}")
            }
            EventKind::Metric {
                name,
                kind,
                value,
                count,
                p50,
                p95,
                p99,
            } => {
                let mut s = format!("metric {name} ({kind}) = {value}");
                if let Some(n) = count {
                    let _ = write!(s, ", count {n}");
                }
                if let (Some(p50), Some(p95), Some(p99)) = (p50, p95, p99) {
                    let _ = write!(s, ", p50 {p50:.6} p95 {p95:.6} p99 {p99:.6}");
                }
                s
            }
            EventKind::CkptSave { step, bytes, kept } => {
                format!("checkpoint saved at step {step} ({bytes} bytes, {kept} kept)")
            }
            EventKind::CkptRestore {
                step,
                pretrain_steps,
                epochs,
                batches,
            } => format!(
                "resumed from checkpoint {step} (skipping {pretrain_steps} pretrain steps, {epochs} epochs / {batches} batches)"
            ),
            EventKind::RecoveredBatch {
                phase,
                step,
                consecutive,
            } => format!(
                "recovered batch: non-finite loss in {phase} at step {step} ({consecutive} consecutive), batch skipped"
            ),
            EventKind::IoRetry {
                op,
                attempt,
                delay_ms,
                gave_up,
            } => {
                if *gave_up {
                    format!("I/O retry: {op} gave up after {attempt} bounded attempts")
                } else {
                    format!("I/O retry: {op} attempt {attempt} failed, backing off {delay_ms}ms")
                }
            }
            EventKind::OpStats {
                op,
                fwd_calls,
                fwd_us,
                bwd_calls,
                bwd_us,
                elems,
                bytes,
            } => format!(
                "op {op}: fwd {fwd_calls}x {:.1}ms, bwd {bwd_calls}x {:.1}ms, {elems} elems, {bytes}B",
                *fwd_us as f64 / 1e3,
                *bwd_us as f64 / 1e3
            ),
            EventKind::Progress {
                phase,
                done,
                total,
                ex_per_sec,
                loss,
                eta_us,
                ..
            } => {
                let mut s = match total {
                    0 => format!("progress {phase}: {done} done"),
                    t => format!("progress {phase}: {done}/{t}"),
                };
                let _ = write!(s, ", {ex_per_sec:.0} ex/s");
                if let Some(l) = loss {
                    let _ = write!(s, ", loss {l:.4}");
                }
                if let Some(eta) = eta_us {
                    let _ = write!(s, ", eta {:.1}s", *eta as f64 / 1e6);
                }
                s
            }
            EventKind::RunMeta {
                seed,
                config,
                git_sha,
                build,
                ..
            } => format!(
                "run: seed {seed}, config {config}, git {}, {build} build",
                git_sha.as_deref().unwrap_or("unknown")
            ),
            EventKind::Request {
                id,
                pairs,
                wall_us,
                outcome,
                ..
            } => format!(
                "request {id}: {pairs} pairs, {outcome} in {:.1}ms",
                *wall_us as f64 / 1e3
            ),
            EventKind::Reject {
                id,
                reason,
                retry_after_ms,
            } => format!("shed request {id}: {reason}, retry after {retry_after_ms}ms"),
            EventKind::WorkerRestart {
                worker,
                restarts,
                backoff_ms,
                reason,
            } => format!(
                "worker {worker} restarted ({reason}, restart {restarts}, backoff {backoff_ms}ms)"
            ),
            EventKind::Drain {
                completed,
                rejected,
                failed,
                restarts,
            } => format!(
                "drained: {completed} completed, {rejected} rejected, {failed} failed, {restarts} worker restarts"
            ),
        };
        format!("{prefix} {body}")
    }
}

/// A parsed JSON value (the schema is flat: scalars, plus arrays of
/// numbers for histogram bins — objects never nest). Public so sibling
/// flat-JSON line formats (`em-prof`'s bench history) can reuse the
/// parser instead of growing their own.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A number (integers included; the schema stays under 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// An array of numbers (histogram bucket counts).
    Arr(Vec<f64>),
}

/// Parse a flat JSON object (string/number/bool/null/number-array values)
/// into its key/value pairs in document order.
pub fn parse_flat_object(s: &str) -> Result<Vec<(String, JsonVal)>, String> {
    parse_json_object(s)
}

fn parse_json_object(s: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut chars = s.trim().chars().peekable();
    let mut out = Vec::new();
    if chars.next() != Some('{') {
        return Err(format!("expected '{{' in {s}"));
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
            }
            Some(_) => {}
            None => return Err(format!("unterminated object in {s}")),
        }
        skip_ws(&mut chars);
        if chars.peek() == Some(&'}') {
            chars.next();
            break;
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key '{key}' in {s}"));
        }
        skip_ws(&mut chars);
        let val = match chars.peek() {
            Some('"') => JsonVal::Str(parse_string(&mut chars)?),
            Some('t') => {
                expect_word(&mut chars, "true")?;
                JsonVal::Bool(true)
            }
            Some('f') => {
                expect_word(&mut chars, "false")?;
                JsonVal::Bool(false)
            }
            Some('n') => {
                expect_word(&mut chars, "null")?;
                JsonVal::Null
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                JsonVal::Num(parse_number(&mut chars, s)?)
            }
            Some('[') => {
                chars.next();
                let mut vals = Vec::new();
                loop {
                    skip_ws(&mut chars);
                    match chars.peek() {
                        Some(']') => {
                            chars.next();
                            break;
                        }
                        Some(',') => {
                            chars.next();
                        }
                        Some(c) if c.is_ascii_digit() || *c == '-' => {
                            vals.push(parse_number(&mut chars, s)?);
                        }
                        other => return Err(format!("unexpected array element {other:?} in {s}")),
                    }
                }
                JsonVal::Arr(vals)
            }
            other => return Err(format!("unexpected value start {other:?} in {s}")),
        };
        out.push((key, val));
        skip_ws(&mut chars);
    }
    Ok(out)
}

fn parse_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    context: &str,
) -> Result<f64, String> {
    let mut num = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || "+-.eE".contains(c) {
            num.push(c);
            chars.next();
        } else {
            break;
        }
    }
    num.parse()
        .map_err(|_| format!("bad number '{num}' in {context}"))
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect_word(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    word: &str,
) -> Result<(), String> {
    for expected in word.chars() {
        if chars.next() != Some(expected) {
            return Err(format!("expected literal '{word}'"));
        }
    }
    Ok(())
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                    out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(kind: EventKind) {
        let e = Event {
            seq: 17,
            seed: 42,
            t_us: 123_456,
            span: Some(3),
            kind,
        };
        let line = e.to_json();
        let parsed = Event::parse(&line).unwrap_or_else(|err| panic!("{err}\nline: {line}"));
        assert_eq!(parsed, e, "round trip changed the event; line: {line}");
    }

    #[test]
    fn every_kind_round_trips() {
        round_trip(EventKind::SpanOpen {
            id: 9,
            parent: Some(2),
            name: "teacher".into(),
            detail: Some("PromptEM/REL-HETER \"quoted\"\n".into()),
        });
        round_trip(EventKind::SpanOpen {
            id: 1,
            parent: None,
            name: "pretrain".into(),
            detail: None,
        });
        round_trip(EventKind::SpanClose {
            id: 9,
            name: "teacher".into(),
            wall_us: 88_123,
            heap_delta: -4096,
            heap_peak: 1 << 30,
        });
        round_trip(EventKind::EpochSummary {
            epoch: 7,
            train_loss: 0.6931471824645996,
            valid_f1: Some(81.25),
            threshold: Some(0.4375),
            examples: 128,
            batches: 8,
            wall_us: 2_500_000,
        });
        round_trip(EventKind::EpochSummary {
            epoch: 0,
            train_loss: 1.5,
            valid_f1: None,
            threshold: None,
            examples: 0,
            batches: 0,
            wall_us: 0,
        });
        round_trip(EventKind::PseudoSelect {
            count: 6,
            tpr: Some(1.0),
            tnr: Some(0.875),
        });
        round_trip(EventKind::PseudoSelect {
            count: 0,
            tpr: None,
            tnr: None,
        });
        round_trip(EventKind::Prune {
            dropped: 12,
            passes: 10,
        });
        round_trip(EventKind::PretrainStep {
            step: 4999,
            mlm_loss: 2.25,
        });
        round_trip(EventKind::Block { candidates: 480 });
        round_trip(EventKind::NonFinite {
            op: "layer_norm".into(),
            node: 37,
            stage: "grad".into(),
            bad: 3,
            total: 96,
        });
        round_trip(EventKind::Audit {
            nodes: 512,
            dead: 2,
            detached: 1,
            unused: 0,
        });
        round_trip(EventKind::Message {
            level: Level::Warn,
            text: "tab\there \\ \"q\"".into(),
        });
        round_trip(EventKind::UncHist {
            source: "pseudo_uncertainty".into(),
            lo: 0.0,
            hi: 0.25,
            mean: 0.0625,
            counts: vec![4, 0, 9, 1],
        });
        round_trip(EventKind::UncHist {
            source: "mc_el2n".into(),
            lo: 0.0,
            hi: 0.0,
            mean: 0.0,
            counts: vec![],
        });
        round_trip(EventKind::Metric {
            name: "nn_optimizer_steps{opt=\"adamw\"}".into(),
            kind: "counter".into(),
            value: 412.0,
            count: None,
            p50: None,
            p95: None,
            p99: None,
        });
        round_trip(EventKind::Metric {
            name: "nn_tape_backward_secs".into(),
            kind: "histogram".into(),
            value: 0.125,
            count: Some(37),
            p50: Some(0.09375),
            p95: Some(0.375),
            p99: Some(0.75),
        });
        round_trip(EventKind::CkptSave {
            step: 250,
            bytes: 1_048_576,
            kept: 3,
        });
        round_trip(EventKind::CkptRestore {
            step: 250,
            pretrain_steps: 250,
            epochs: 12,
            batches: 96,
        });
        round_trip(EventKind::RecoveredBatch {
            phase: "pretrain".into(),
            step: 117,
            consecutive: 2,
        });
        round_trip(EventKind::IoRetry {
            op: "ckpt_write".into(),
            attempt: 1,
            delay_ms: 25,
            gave_up: false,
        });
        round_trip(EventKind::IoRetry {
            op: "ckpt_write".into(),
            attempt: 3,
            delay_ms: 0,
            gave_up: true,
        });
        round_trip(EventKind::OpStats {
            op: "matmul".into(),
            fwd_calls: 1200,
            fwd_us: 845_000,
            bwd_calls: 600,
            bwd_us: 512_000,
            elems: 9_830_400,
            bytes: 39_321_600,
        });
        round_trip(EventKind::Progress {
            phase: "pretrain".into(),
            done: 35,
            total: 40,
            examples: 560,
            ex_per_sec: 212.5,
            loss: Some(2.0625),
            eta_us: Some(420_000),
            tape_nodes: 91_000,
            heap_peak: 30_000_000,
        });
        round_trip(EventKind::Progress {
            phase: "mc_dropout".into(),
            done: 3,
            total: 0,
            examples: 0,
            ex_per_sec: 0.0,
            loss: None,
            eta_us: None,
            tape_nodes: 0,
            heap_peak: 0,
        });
        round_trip(EventKind::RunMeta {
            seed: 7,
            config: "9e1c7a5d00bf3321".into(),
            git_sha: Some("272a3fc0".into()),
            build: "release".into(),
            schema: 1,
        });
        round_trip(EventKind::RunMeta {
            seed: 0,
            config: "0".into(),
            git_sha: None,
            build: "debug".into(),
            schema: 1,
        });
        round_trip(EventKind::Request {
            id: "conn3-17".into(),
            pairs: 8,
            queue: 2,
            wall_us: 4_250,
            outcome: "ok".into(),
        });
        round_trip(EventKind::Reject {
            id: "conn1-4".into(),
            reason: "queue_full".into(),
            retry_after_ms: 25,
        });
        round_trip(EventKind::WorkerRestart {
            worker: 0,
            restarts: 2,
            backoff_ms: 10,
            reason: "panic".into(),
        });
        round_trip(EventKind::Drain {
            completed: 96,
            rejected: 7,
            failed: 1,
            restarts: 2,
        });
    }

    #[test]
    fn no_span_encodes_as_null() {
        let e = Event {
            seq: 1,
            seed: 0,
            t_us: 0,
            span: None,
            kind: EventKind::Block { candidates: 3 },
        };
        let line = e.to_json();
        assert!(line.contains("\"span\":null"), "{line}");
        assert_eq!(Event::parse(&line).unwrap(), e);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::parse("not json").is_err());
        assert!(Event::parse("{\"seq\":1}").is_err());
        assert!(
            Event::parse("{\"seq\":1,\"seed\":0,\"t_us\":0,\"span\":null,\"type\":\"nope\"}")
                .is_err()
        );
    }

    #[test]
    fn float_precision_survives() {
        let e = Event {
            seq: 1,
            seed: 2,
            t_us: 3,
            span: None,
            kind: EventKind::PretrainStep {
                step: 0,
                mlm_loss: 0.1 + 0.2,
            },
        };
        match Event::parse(&e.to_json()).unwrap().kind {
            EventKind::PretrainStep { mlm_loss, .. } => {
                assert_eq!(mlm_loss.to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("wrong kind {other:?}"),
        }
    }
}
