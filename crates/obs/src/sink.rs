//! Event sinks: no-op (default), human-readable stderr, JSONL file, and a
//! thread-local capture sink for tests.
//!
//! The no-op path is the hot one: with no sink configured and no capture
//! active, [`crate::enabled`] is two relaxed atomic loads plus one
//! thread-local read, and nothing else runs.

use crate::event::Event;
use crate::level::Level;
use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Stderr filter level: 0 = off, else `Level as u32 + 1`.
static STDERR_LEVEL: AtomicU32 = AtomicU32::new(0);

/// 1 when a JSONL writer is installed (fast check before taking the lock).
static JSONL_ACTIVE: AtomicU32 = AtomicU32::new(0);

static JSONL: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

thread_local! {
    static CAPTURE: RefCell<Vec<Event>> = const { RefCell::new(Vec::new()) };
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
}

/// True when any sink (or a capture on this thread) would observe an event.
pub(crate) fn any_active() -> bool {
    STDERR_LEVEL.load(Ordering::Relaxed) != 0
        || JSONL_ACTIVE.load(Ordering::Relaxed) != 0
        || CAPTURING.with(|c| c.get())
}

/// Enable (or, with `None`, disable) the stderr sink at the given level.
pub fn set_stderr_level(level: Option<Level>) {
    STDERR_LEVEL.store(level.map_or(0, |l| l as u32 + 1), Ordering::Relaxed);
}

/// The active stderr filter level, if any.
pub fn stderr_level() -> Option<Level> {
    match STDERR_LEVEL.load(Ordering::Relaxed) {
        0 => None,
        n => [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ]
        .get((n - 1) as usize)
        .copied(),
    }
}

/// Open (truncating) a JSONL trace file; every event is appended as one
/// JSON object per line in the schema documented in [`crate::event`].
pub fn open_jsonl(path: &Path) -> std::io::Result<()> {
    // A trace is an append-only stream, not a document: there is nothing
    // atomic to rename into place, and a truncated tail is recoverable.
    let file = File::create(path)?; // lint:allow(atomic-io)
                                    // A poisoned sink mutex only means a writer panicked mid-dispatch;
                                    // the BufWriter inside is still replaceable, so recover the guard.
    *JSONL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(BufWriter::new(file));
    JSONL_ACTIVE.store(1, Ordering::Relaxed);
    Ok(())
}

/// Flush and close the JSONL sink (idempotent; no-op when none is open).
pub fn close_jsonl() {
    JSONL_ACTIVE.store(0, Ordering::Relaxed);
    // Recover from poison: flushing a writer a panicked thread abandoned
    // is strictly better than dropping the tail of the trace.
    if let Some(mut w) = JSONL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        let _ = w.flush();
    }
}

/// Fan one event out to whichever sinks are active.
pub(crate) fn dispatch(event: &Event) {
    if CAPTURING.with(|c| c.get()) {
        CAPTURE.with(|buf| buf.borrow_mut().push(event.clone()));
    }
    if let Some(max) = stderr_level() {
        if event.kind.level() <= max {
            eprintln!("{}", event.render_human());
        }
    }
    if JSONL_ACTIVE.load(Ordering::Relaxed) != 0 {
        // Recover from poison: each line is written and flushed whole, so
        // the stream stays parseable even if a previous writer panicked.
        if let Some(w) = JSONL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_mut()
        {
            // Write-and-flush per event keeps the trace intact on panic;
            // event volume is modest (hundreds per run), so this is cheap.
            let _ = writeln!(w, "{}", event.to_json());
            let _ = w.flush();
        }
    }
}

/// Run `f` while capturing every event emitted *on this thread*; returns
/// `f`'s result plus the captured events in emission order. Captures keep
/// telemetry enabled regardless of global sinks, and being thread-local
/// they do not interfere with parallel tests. Nesting is not supported.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    CAPTURING.with(|c| {
        assert!(!c.get(), "nested em_obs::capture is not supported");
        c.set(true);
    });
    // Poisoning-safe: restore the flag even if `f` panics.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            CAPTURING.with(|c| c.set(false));
            CAPTURE.with(|buf| buf.borrow_mut().clear());
        }
    }
    let reset = Reset;
    let out = f();
    let events = CAPTURE.with(|buf| std::mem::take(&mut *buf.borrow_mut()));
    drop(reset);
    (out, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn capture_collects_in_order_and_restores_disabled_state() {
        assert!(!CAPTURING.with(|c| c.get()));
        let (value, events) = capture(|| {
            crate::emit(EventKind::Block { candidates: 10 });
            crate::emit(EventKind::Prune {
                dropped: 2,
                passes: 5,
            });
            "done"
        });
        assert_eq!(value, "done");
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].kind,
            EventKind::Block { candidates: 10 }
        ));
        assert!(matches!(
            events[1].kind,
            EventKind::Prune {
                dropped: 2,
                passes: 5
            }
        ));
        assert!(events[0].seq < events[1].seq);
        assert!(!CAPTURING.with(|c| c.get()));
    }

    #[test]
    fn capture_survives_panic() {
        let caught = std::panic::catch_unwind(|| {
            capture(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(
            !CAPTURING.with(|c| c.get()),
            "capture flag leaked after panic"
        );
        // A later capture starts from a clean buffer.
        let ((), events) = capture(|| crate::emit(EventKind::Block { candidates: 1 }));
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn jsonl_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("em_obs_jsonl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        open_jsonl(&path).unwrap();
        crate::set_run_seed(7);
        crate::emit(EventKind::EpochSummary {
            epoch: 0,
            train_loss: 0.25,
            valid_f1: Some(90.0),
            threshold: Some(0.5),
            examples: 16,
            batches: 2,
            wall_us: 1234,
        });
        crate::emit(EventKind::Message {
            level: Level::Info,
            text: "hi \"there\"".into(),
        });
        close_jsonl();

        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| Event::parse(l).expect("parse"))
            .collect();
        // Parallel tests on other threads may interleave their own events
        // into the global sink, so look ours up rather than indexing.
        let epoch = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::EpochSummary { .. }))
            .expect("epoch event missing");
        assert!(matches!(
            epoch.kind,
            EventKind::EpochSummary { epoch: 0, valid_f1: Some(f1), .. } if f1 == 90.0
        ));
        assert_eq!(epoch.seed, 7);
        let msg = events
            .iter()
            .find(|e| matches!(&e.kind, EventKind::Message { text, .. } if text == "hi \"there\""))
            .expect("message event missing");
        assert!(epoch.seq < msg.seq);
        std::fs::remove_dir_all(&dir).ok();
    }
}
