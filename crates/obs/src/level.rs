//! Severity levels and the `PROMPTEM_LOG` filter grammar.

use std::fmt;

/// Event severity, ordered from most to least severe. A stderr filter at
/// level `L` shows every event whose level is `<= L` (so `Trace` shows
/// everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable problems.
    Error,
    /// Swallowed-but-suspicious conditions (bad env vars, cache failures).
    Warn,
    /// Pipeline progress: phases, epochs, pseudo-label selections.
    Info,
    /// High-volume diagnostics: spans, pretraining steps, blocking stats.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    /// The level's lowercase name (the JSONL encoding).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse one level name (without the `off` filter value).
    pub fn from_name(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parse a `PROMPTEM_LOG`-style filter: a level name, `off`/`none`/`0` for
/// no output, or the empty string for the given default. Unknown values are
/// an error so typos do not silently disable telemetry.
pub fn parse_filter(raw: &str, default: Option<Level>) -> Result<Option<Level>, String> {
    let s = raw.trim();
    if s.is_empty() {
        return Ok(default);
    }
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Ok(None),
        other => Level::from_name(other).map(Some).ok_or_else(|| {
            format!("unknown log level '{other}' (expected off|error|warn|info|debug|trace)")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn filter_parses_names_aliases_and_off() {
        assert_eq!(parse_filter("info", None), Ok(Some(Level::Info)));
        assert_eq!(parse_filter(" WARN ", None), Ok(Some(Level::Warn)));
        assert_eq!(parse_filter("warning", None), Ok(Some(Level::Warn)));
        assert_eq!(parse_filter("off", Some(Level::Info)), Ok(None));
        assert_eq!(parse_filter("none", Some(Level::Info)), Ok(None));
        assert_eq!(parse_filter("0", Some(Level::Info)), Ok(None));
        assert_eq!(parse_filter("", Some(Level::Debug)), Ok(Some(Level::Debug)));
        assert_eq!(parse_filter("", None), Ok(None));
    }

    #[test]
    fn filter_rejects_typos() {
        assert!(parse_filter("vebrose", None).is_err());
        assert!(parse_filter("2", None).is_err());
    }

    #[test]
    fn names_round_trip() {
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::from_name(l.name()), Some(l));
        }
    }
}
