//! Hierarchical spans with RAII guards.
//!
//! A span brackets one phase of the pipeline (`pretrain`, `teacher`,
//! `epoch`-free inner phases, ...). Opening a span emits a `span_open`
//! event; dropping the guard emits `span_close` carrying the wall-clock
//! duration, the live-heap delta across the span, and the process heap peak
//! (both zero unless [`crate::alloc::CountingAllocator`] is installed).
//!
//! Nesting is tracked per thread: events emitted while a guard is live carry
//! the innermost span's id in their `span` field. When telemetry is
//! disabled, [`crate::span`] returns an inert guard and costs two relaxed
//! atomic loads.

use crate::event::EventKind;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The innermost live span id on this thread, if any.
pub fn current() -> Option<u64> {
    STACK.with(|s| s.borrow().last().copied())
}

/// RAII guard for one span; see the module docs.
#[must_use = "a span closes when its guard drops — bind it with `let _span = ...`"]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    start: Option<Instant>,
    heap_start: usize,
}

impl SpanGuard {
    /// The span id carried by this guard's open/close events (0 when the
    /// guard is inert because telemetry was disabled at open).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn open(name: &'static str, detail: Option<String>) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                id: 0,
                name,
                start: None,
                heap_start: 0,
            };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = current();
        crate::emit(EventKind::SpanOpen {
            id,
            parent,
            name: name.to_string(),
            detail,
        });
        STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            id,
            name,
            start: Some(Instant::now()),
            heap_start: crate::alloc::current_bytes(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let wall_us = start.elapsed().as_micros() as u64;
        let heap_now = crate::alloc::current_bytes();
        // Pop this span (and, defensively, anything opened above it that
        // leaked past its scope) so the close event reports the parent.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            while let Some(top) = stack.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        crate::emit(EventKind::SpanClose {
            id: self.id,
            name: self.name.to_string(),
            wall_us,
            heap_delta: heap_now as i64 - self.heap_start as i64,
            heap_peak: crate::alloc::peak_bytes() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn inert_guard_when_disabled() {
        // No sink and no capture on this thread: the guard must do nothing.
        let g = crate::span("idle");
        assert_eq!(g.id(), 0);
        drop(g);
        assert_eq!(current(), None);
    }

    #[test]
    fn nested_spans_emit_ordered_events_with_parents() {
        let ((), events) = crate::capture(|| {
            let outer = crate::span("outer");
            let outer_id = outer.id();
            {
                let inner = crate::span_with("inner", "detail-text");
                assert_ne!(inner.id(), outer_id);
                crate::emit(EventKind::Block { candidates: 1 });
            }
            crate::emit(EventKind::Block { candidates: 2 });
        });

        assert_eq!(events.len(), 6, "{events:#?}");
        // Sequence numbers are strictly monotonic.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "{events:#?}");
        }

        let (outer_id, inner_id) = match (&events[0].kind, &events[1].kind) {
            (
                EventKind::SpanOpen {
                    id: o,
                    parent: None,
                    name: outer,
                    ..
                },
                EventKind::SpanOpen {
                    id: i,
                    parent: Some(p),
                    name: inner,
                    detail,
                },
            ) => {
                assert_eq!(outer, "outer");
                assert_eq!(inner, "inner");
                assert_eq!(p, o);
                assert_eq!(detail.as_deref(), Some("detail-text"));
                (*o, *i)
            }
            other => panic!("wrong opening events: {other:?}"),
        };
        // The open events themselves carry the *enclosing* span.
        assert_eq!(events[0].span, None);
        assert_eq!(events[1].span, Some(outer_id));
        // Block inside inner belongs to inner; after inner closes, to outer.
        assert_eq!(events[2].span, Some(inner_id));
        assert!(matches!(events[3].kind, EventKind::SpanClose { id, .. } if id == inner_id));
        assert_eq!(events[3].span, Some(outer_id));
        assert_eq!(events[4].span, Some(outer_id));
        assert!(matches!(events[5].kind, EventKind::SpanClose { id, .. } if id == outer_id));
        assert_eq!(events[5].span, None);
    }
}
