//! `em-obs`: the observability substrate for the PromptEM reproduction.
//!
//! Zero dependencies. Three pieces:
//!
//! * **Spans** — [`span`] returns an RAII guard; dropping it emits a
//!   `span_close` event with wall-clock and heap deltas. Spans nest per
//!   thread and every event carries the innermost span id.
//! * **Metrics** — [`metrics`] is a registry of counters, gauges, and
//!   log-bucket histograms addressable by name + labels.
//! * **Sinks** — events go nowhere by default (the disabled path costs a
//!   couple of relaxed atomic loads), to stderr filtered by the
//!   `PROMPTEM_LOG` level, and/or to a JSONL trace file with the schema
//!   documented in [`event`]. Tests use [`capture`] to collect events
//!   in-memory per thread.
//!
//! Typical wiring (the CLI and bench harness do this):
//!
//! ```no_run
//! em_obs::init_from_env();                 // PROMPTEM_LOG=info cargo run ...
//! em_obs::set_run_seed(42);
//! em_obs::init_jsonl(std::path::Path::new("trace.jsonl")).unwrap();
//! {
//!     let _span = em_obs::span("pipeline");
//!     em_obs::info("starting");
//! }
//! em_obs::shutdown();
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod event;
pub mod level;
pub mod metrics;
pub mod sink;
pub mod span;

pub use event::{Event, EventKind};
pub use level::{parse_filter, Level};
pub use sink::capture;
pub use span::SpanGuard;

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static SEQ: AtomicU64 = AtomicU64::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// True when at least one sink (or a capture on this thread) is live.
/// Hot-path code gates timing and event construction on this.
#[inline]
pub fn enabled() -> bool {
    sink::any_active()
}

/// Record the run seed; every subsequent event carries it.
pub fn set_run_seed(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
}

/// The run seed events are stamped with.
pub fn run_seed() -> u64 {
    SEED.load(Ordering::Relaxed)
}

/// Enable the stderr sink from the `PROMPTEM_LOG` environment variable
/// (`off`/`error`/`warn`/`info`/`debug`/`trace`; unset leaves the sink
/// off). A malformed value falls back to `warn` and reports itself there.
pub fn init_from_env() {
    match std::env::var("PROMPTEM_LOG") {
        Err(_) => {}
        Ok(raw) => match level::parse_filter(&raw, None) {
            Ok(filter) => sink::set_stderr_level(filter),
            Err(err) => {
                sink::set_stderr_level(Some(Level::Warn));
                warn(format!("PROMPTEM_LOG: {err}"));
            }
        },
    }
}

/// Enable the stderr sink at an explicit level (`None` disables it).
pub fn init_stderr(level: Option<Level>) {
    sink::set_stderr_level(level);
}

/// Open `path` as a JSONL trace sink (truncating any existing file).
pub fn init_jsonl(path: &Path) -> std::io::Result<()> {
    sink::open_jsonl(path)
}

/// Flush and close the JSONL sink. Safe to call multiple times; the stderr
/// sink (if any) stays active.
pub fn shutdown() {
    sink::close_jsonl();
}

/// Emit one event to every active sink. Cheap no-op when nothing listens.
pub fn emit(kind: EventKind) {
    if !enabled() {
        return;
    }
    let event = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed) + 1,
        seed: run_seed(),
        t_us: start_instant().elapsed().as_micros() as u64,
        span: span::current(),
        kind,
    };
    sink::dispatch(&event);
}

/// Open a span named `name`; it closes (emitting timing and heap deltas)
/// when the returned guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, None)
}

/// Like [`span`], with a free-form detail label (dataset name, method id).
pub fn span_with(name: &'static str, detail: impl Into<String>) -> SpanGuard {
    SpanGuard::open(name, Some(detail.into()))
}

/// Emit an `epoch` event (one finished training epoch).
pub fn epoch(epoch: u64, train_loss: f64, valid_f1: Option<f64>, threshold: Option<f64>) {
    emit(EventKind::Epoch {
        epoch,
        train_loss,
        valid_f1,
        threshold,
    });
}

/// Emit a `pseudo_select` event (pseudo-labels moved into the train set).
pub fn pseudo_select(count: u64, tpr: Option<f64>, tnr: Option<f64>) {
    emit(EventKind::PseudoSelect { count, tpr, tnr });
}

/// Emit a `prune` event (dynamic data pruning dropped examples).
pub fn prune(dropped: u64, passes: u64) {
    emit(EventKind::Prune { dropped, passes });
}

/// Emit a `pretrain_step` event (one MLM optimizer step).
pub fn pretrain_step(step: u64, mlm_loss: f64) {
    emit(EventKind::PretrainStep { step, mlm_loss });
}

/// Emit a `block` event (candidate pairs produced by blocking).
pub fn block(candidates: u64) {
    emit(EventKind::Block { candidates });
}

/// Emit a `non_finite` event (the tape sanitizer caught a NaN/Inf buffer).
pub fn non_finite(op: impl Into<String>, node: u64, stage: &'static str, bad: u64, total: u64) {
    emit(EventKind::NonFinite {
        op: op.into(),
        node,
        stage: stage.into(),
        bad,
        total,
    });
}

/// Emit an `audit` event (graph-audit summary at loss construction).
pub fn audit(nodes: u64, dead: u64, detached: u64, unused: u64) {
    emit(EventKind::Audit {
        nodes,
        dead,
        detached,
        unused,
    });
}

/// A monotonic stopwatch — the sanctioned clock for the whole workspace.
///
/// The `em-lint` `clock` rule forbids raw `Instant::now`/`SystemTime`
/// outside `em-obs` and `em-bench` so every time source stays greppable in
/// one place (wall-clock reads sneaking into training logic are how
/// nondeterministic behavior and flaky wall-clock tests get in).
/// Code that needs a duration takes a `Stopwatch` instead.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start a stopwatch now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Stopwatch(Instant::now())
    }

    /// A stopwatch only when telemetry is active — hot paths use this so
    /// the disabled path stays free of clock reads.
    pub fn if_enabled() -> Option<Self> {
        enabled().then(Self::new)
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Elapsed microseconds.
    pub fn micros(&self) -> u64 {
        self.0.elapsed().as_micros() as u64
    }
}

/// Emit a free-form message at the given level.
pub fn message(level: Level, text: impl Into<String>) {
    emit(EventKind::Message {
        level,
        text: text.into(),
    });
}

/// Emit an error-level message.
pub fn error(text: impl Into<String>) {
    message(Level::Error, text);
}

/// Emit a warn-level message.
pub fn warn(text: impl Into<String>) {
    message(Level::Warn, text);
}

/// Emit an info-level message.
pub fn info(text: impl Into<String>) {
    message(Level::Info, text);
}

/// Emit a debug-level message.
pub fn debug(text: impl Into<String>) {
    message(Level::Debug, text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emit_is_a_noop() {
        // This thread has no capture; global sinks are off unless another
        // test enabled one, so only assert the capture-side behavior.
        let before = SEQ.load(Ordering::Relaxed);
        if !enabled() {
            emit(EventKind::Block { candidates: 1 });
            assert_eq!(
                SEQ.load(Ordering::Relaxed),
                before,
                "disabled emit must not tick seq"
            );
        }
    }

    #[test]
    fn typed_helpers_produce_the_right_kinds() {
        let ((), events) = capture(|| {
            epoch(3, 0.5, None, None);
            pseudo_select(4, Some(1.0), None);
            prune(2, 10);
            pretrain_step(9, 2.5);
            block(100);
            info("msg");
        });
        let tags: Vec<&str> = events.iter().map(|e| e.kind.type_tag()).collect();
        assert_eq!(
            tags,
            [
                "epoch",
                "pseudo_select",
                "prune",
                "pretrain_step",
                "block",
                "message"
            ]
        );
    }

    #[test]
    fn seq_is_monotonic_across_helpers() {
        let ((), events) = capture(|| {
            for i in 0..32 {
                block(i);
            }
        });
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
