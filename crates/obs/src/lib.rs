//! `em-obs`: the observability substrate for the PromptEM reproduction.
//!
//! Zero dependencies. Three pieces:
//!
//! * **Spans** — [`span`] returns an RAII guard; dropping it emits a
//!   `span_close` event with wall-clock and heap deltas. Spans nest per
//!   thread and every event carries the innermost span id.
//! * **Metrics** — [`metrics`] is a registry of counters, gauges, and
//!   log-bucket histograms addressable by name + labels.
//! * **Sinks** — events go nowhere by default (the disabled path costs a
//!   couple of relaxed atomic loads), to stderr filtered by the
//!   `PROMPTEM_LOG` level, and/or to a JSONL trace file with the schema
//!   documented in [`event`]. Tests use [`capture`] to collect events
//!   in-memory per thread.
//!
//! Typical wiring (the CLI and bench harness do this):
//!
//! ```no_run
//! em_obs::init_from_env();                 // PROMPTEM_LOG=info cargo run ...
//! em_obs::set_run_seed(42);
//! em_obs::init_jsonl(std::path::Path::new("trace.jsonl")).unwrap();
//! {
//!     let _span = em_obs::span("pipeline");
//!     em_obs::info("starting");
//! }
//! em_obs::shutdown();
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod event;
pub mod heartbeat;
pub mod level;
pub mod metrics;
pub mod names;
pub mod sink;
pub mod span;

pub use event::{Event, EventKind};
pub use heartbeat::{heartbeat, progress_every, set_progress_every, Heartbeat};
pub use level::{parse_filter, Level};
pub use sink::capture;
pub use span::SpanGuard;

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static SEQ: AtomicU64 = AtomicU64::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// True when at least one sink (or a capture on this thread) is live.
/// Hot-path code gates timing and event construction on this.
#[inline]
pub fn enabled() -> bool {
    sink::any_active()
}

/// Record the run seed; every subsequent event carries it.
pub fn set_run_seed(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
}

/// The run seed events are stamped with.
pub fn run_seed() -> u64 {
    SEED.load(Ordering::Relaxed)
}

/// Enable the stderr sink from the `PROMPTEM_LOG` environment variable
/// (`off`/`error`/`warn`/`info`/`debug`/`trace`; unset leaves the sink
/// off). A malformed value falls back to `warn` and reports itself there.
pub fn init_from_env() {
    match std::env::var("PROMPTEM_LOG") {
        Err(_) => {}
        Ok(raw) => match level::parse_filter(&raw, None) {
            Ok(filter) => sink::set_stderr_level(filter),
            Err(err) => {
                sink::set_stderr_level(Some(Level::Warn));
                warn(format!("PROMPTEM_LOG: {err}"));
            }
        },
    }
}

/// Enable the stderr sink at an explicit level (`None` disables it).
pub fn init_stderr(level: Option<Level>) {
    sink::set_stderr_level(level);
}

/// Open `path` as a JSONL trace sink (truncating any existing file).
pub fn init_jsonl(path: &Path) -> std::io::Result<()> {
    sink::open_jsonl(path)
}

/// Flush and close the JSONL sink, first sampling every registered metric
/// into the trace as `metric` events so the file is self-contained. Safe
/// to call multiple times; the stderr sink (if any) stays active.
pub fn shutdown() {
    flush_metrics();
    sink::close_jsonl();
}

/// Emit one `metric` event per registered metric (sorted by name). Called
/// by [`shutdown`]; also usable mid-run for periodic snapshots.
pub fn flush_metrics() {
    if !enabled() {
        return;
    }
    for s in metrics::samples() {
        let (p50, p95, p99) = match s.percentiles {
            Some((a, b, c)) => (Some(a), Some(b), Some(c)),
            None => (None, None, None),
        };
        emit(EventKind::Metric {
            name: s.name,
            kind: s.kind.to_string(),
            value: s.value,
            count: s.count,
            p50,
            p95,
            p99,
        });
    }
}

/// Emit one event to every active sink. Cheap no-op when nothing listens.
pub fn emit(kind: EventKind) {
    if !enabled() {
        return;
    }
    let event = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed) + 1,
        seed: run_seed(),
        t_us: start_instant().elapsed().as_micros() as u64,
        span: span::current(),
        kind,
    };
    sink::dispatch(&event);
}

/// Open a span named `name`; it closes (emitting timing and heap deltas)
/// when the returned guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, None)
}

/// Like [`span`], with a free-form detail label (dataset name, method id).
pub fn span_with(name: &'static str, detail: impl Into<String>) -> SpanGuard {
    SpanGuard::open(name, Some(detail.into()))
}

/// Emit an `epoch_summary` event (one finished training epoch).
#[allow(clippy::too_many_arguments)]
pub fn epoch_summary(
    epoch: u64,
    train_loss: f64,
    valid_f1: Option<f64>,
    threshold: Option<f64>,
    examples: u64,
    batches: u64,
    wall_us: u64,
) {
    emit(EventKind::EpochSummary {
        epoch,
        train_loss,
        valid_f1,
        threshold,
        examples,
        batches,
        wall_us,
    });
}

/// Emit an `unc_hist` event: a histogram of MC-Dropout uncertainty scores
/// binned linearly into `bins` buckets over the observed `[min, max]`.
pub fn unc_hist(source: &'static str, values: &[f64], bins: usize) {
    if !enabled() || bins == 0 {
        return;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
        sum += v;
    }
    if values.is_empty() {
        lo = 0.0;
        hi = 0.0;
    }
    let mean = if values.is_empty() {
        0.0
    } else {
        sum / values.len() as f64
    };
    let width = hi - lo;
    let mut counts = vec![0u64; bins];
    for &v in values {
        let idx = if width > 0.0 {
            (((v - lo) / width) * bins as f64) as usize
        } else {
            0
        };
        counts[idx.min(bins - 1)] += 1;
    }
    emit(EventKind::UncHist {
        source: source.into(),
        lo,
        hi,
        mean,
        counts,
    });
}

/// Emit a `pseudo_select` event (pseudo-labels moved into the train set).
pub fn pseudo_select(count: u64, tpr: Option<f64>, tnr: Option<f64>) {
    emit(EventKind::PseudoSelect { count, tpr, tnr });
}

/// Emit a `prune` event (dynamic data pruning dropped examples).
pub fn prune(dropped: u64, passes: u64) {
    emit(EventKind::Prune { dropped, passes });
}

/// Emit a `pretrain_step` event (one MLM optimizer step).
pub fn pretrain_step(step: u64, mlm_loss: f64) {
    emit(EventKind::PretrainStep { step, mlm_loss });
}

/// Emit a `block` event (candidate pairs produced by blocking).
pub fn block(candidates: u64) {
    emit(EventKind::Block { candidates });
}

/// Emit a `ckpt_save` event (a checkpoint was durably written).
pub fn ckpt_save(step: u64, bytes: u64, kept: u64) {
    emit(EventKind::CkptSave { step, bytes, kept });
}

/// Emit a `ckpt_restore` event (a run resumed from a checkpoint). The
/// counters record the already-done work this process skips; `em-prof`
/// adds them to its manifest so resumed and uninterrupted runs compare
/// equal.
pub fn ckpt_restore(step: u64, pretrain_steps: u64, epochs: u64, batches: u64) {
    emit(EventKind::CkptRestore {
        step,
        pretrain_steps,
        epochs,
        batches,
    });
}

/// Emit a `recovered_batch` event (a non-finite batch loss was skipped).
pub fn recovered_batch(phase: &'static str, step: u64, consecutive: u64) {
    emit(EventKind::RecoveredBatch {
        phase: phase.into(),
        step,
        consecutive,
    });
}

/// Emit an `io_retry` event (transient I/O failure, bounded retry).
pub fn io_retry(op: impl Into<String>, attempt: u64, delay_ms: u64) {
    emit(EventKind::IoRetry {
        op: op.into(),
        attempt,
        delay_ms,
        gave_up: false,
    });
}

/// Emit the terminal `io_retry` event: the bounded retry is exhausted and
/// the error goes back to the caller. `attempt` is the total attempts made.
pub fn io_retry_gave_up(op: impl Into<String>, attempt: u64) {
    emit(EventKind::IoRetry {
        op: op.into(),
        attempt,
        delay_ms: 0,
        gave_up: true,
    });
}

/// Emit a `request` event: one serve request reached a terminal outcome.
pub fn request(id: impl Into<String>, pairs: u64, queue: u64, wall_us: u64, outcome: &str) {
    emit(EventKind::Request {
        id: id.into(),
        pairs,
        queue,
        wall_us,
        outcome: outcome.into(),
    });
}

/// Emit a `reject` event: admission control shed a serve request.
pub fn reject(id: impl Into<String>, reason: &str, retry_after_ms: u64) {
    emit(EventKind::Reject {
        id: id.into(),
        reason: reason.into(),
        retry_after_ms,
    });
}

/// Emit a `worker_restart` event: the serve supervisor replaced a worker.
pub fn worker_restart(worker: u64, restarts: u64, backoff_ms: u64, reason: &str) {
    emit(EventKind::WorkerRestart {
        worker,
        restarts,
        backoff_ms,
        reason: reason.into(),
    });
}

/// Emit a `drain` event: a graceful serve drain completed.
pub fn drain(completed: u64, rejected: u64, failed: u64, restarts: u64) {
    emit(EventKind::Drain {
        completed,
        rejected,
        failed,
        restarts,
    });
}

/// Emit an `op_stats` event (aggregated tape-op counters for one op,
/// flushed at a stage boundary). Emit inside the owning span so the
/// totals nest under their phase.
#[allow(clippy::too_many_arguments)]
pub fn op_stats(
    op: &'static str,
    fwd_calls: u64,
    fwd_us: u64,
    bwd_calls: u64,
    bwd_us: u64,
    elems: u64,
    bytes: u64,
) {
    emit(EventKind::OpStats {
        op: op.into(),
        fwd_calls,
        fwd_us,
        bwd_calls,
        bwd_us,
        elems,
        bytes,
    });
}

/// Emit a `non_finite` event (the tape sanitizer caught a NaN/Inf buffer).
pub fn non_finite(op: impl Into<String>, node: u64, stage: &'static str, bad: u64, total: u64) {
    emit(EventKind::NonFinite {
        op: op.into(),
        node,
        stage: stage.into(),
        bad,
        total,
    });
}

/// Emit an `audit` event (graph-audit summary at loss construction).
pub fn audit(nodes: u64, dead: u64, detached: u64, unused: u64) {
    emit(EventKind::Audit {
        nodes,
        dead,
        detached,
        unused,
    });
}

/// Schema version of the `run_meta` event (bump when its fields change).
pub const RUN_META_SCHEMA: u64 = 1;

/// Emit a `run_meta` event — the run's identity card. The CLI calls this
/// right after resolving the config, before any other event, so it lands
/// as the first trace line. `build` is derived from the compile profile.
pub fn run_meta(seed: u64, config: impl Into<String>, git_sha: Option<String>) {
    let build = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    emit(EventKind::RunMeta {
        seed,
        config: config.into(),
        git_sha,
        build: build.into(),
        schema: RUN_META_SCHEMA,
    });
}

/// Best-effort git commit SHA of the checkout containing the working
/// directory: walks up to a `.git/HEAD`, dereferencing one level of
/// `ref:` indirection. No subprocess, no dependency; `None` outside a
/// checkout or on any read failure.
pub fn detect_git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(contents) = std::fs::read_to_string(&head) {
            let contents = contents.trim();
            let sha = match contents.strip_prefix("ref: ") {
                Some(refname) => {
                    std::fs::read_to_string(dir.join(".git").join(refname.trim())).ok()?
                }
                None => contents.to_string(),
            };
            let sha = sha.trim();
            let looks_like_sha = sha.len() >= 7 && sha.chars().all(|c| c.is_ascii_hexdigit());
            return looks_like_sha.then(|| sha.to_string());
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// A monotonic stopwatch — the sanctioned clock for the whole workspace.
///
/// The `em-lint` `clock` rule forbids raw `Instant::now`/`SystemTime`
/// outside `em-obs` and `em-bench` so every time source stays greppable in
/// one place (wall-clock reads sneaking into training logic are how
/// nondeterministic behavior and flaky wall-clock tests get in).
/// Code that needs a duration takes a `Stopwatch` instead.
#[derive(Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start a stopwatch now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Stopwatch(Instant::now())
    }

    /// A stopwatch only when telemetry is active — hot paths use this so
    /// the disabled path stays free of clock reads.
    pub fn if_enabled() -> Option<Self> {
        enabled().then(Self::new)
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Elapsed microseconds.
    pub fn micros(&self) -> u64 {
        self.0.elapsed().as_micros() as u64
    }
}

/// Emit a free-form message at the given level.
pub fn message(level: Level, text: impl Into<String>) {
    emit(EventKind::Message {
        level,
        text: text.into(),
    });
}

/// Emit an error-level message.
pub fn error(text: impl Into<String>) {
    message(Level::Error, text);
}

/// Emit a warn-level message.
pub fn warn(text: impl Into<String>) {
    message(Level::Warn, text);
}

/// Emit an info-level message.
pub fn info(text: impl Into<String>) {
    message(Level::Info, text);
}

/// Emit a debug-level message.
pub fn debug(text: impl Into<String>) {
    message(Level::Debug, text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emit_is_a_noop() {
        // This thread has no capture; global sinks are off unless another
        // test enabled one, so only assert the capture-side behavior.
        let before = SEQ.load(Ordering::Relaxed);
        if !enabled() {
            emit(EventKind::Block { candidates: 1 });
            assert_eq!(
                SEQ.load(Ordering::Relaxed),
                before,
                "disabled emit must not tick seq"
            );
        }
    }

    #[test]
    fn typed_helpers_produce_the_right_kinds() {
        let ((), events) = capture(|| {
            epoch_summary(3, 0.5, None, None, 64, 4, 1000);
            pseudo_select(4, Some(1.0), None);
            prune(2, 10);
            pretrain_step(9, 2.5);
            block(100);
            unc_hist("pseudo_uncertainty", &[0.1, 0.2, 0.3], 4);
            info("msg");
        });
        let tags: Vec<&str> = events.iter().map(|e| e.kind.type_tag()).collect();
        assert_eq!(
            tags,
            [
                names::EV_EPOCH_SUMMARY,
                names::EV_PSEUDO_SELECT,
                names::EV_PRUNE,
                names::EV_PRETRAIN_STEP,
                names::EV_BLOCK,
                names::EV_UNC_HIST,
                names::EV_MESSAGE,
            ]
        );
    }

    #[test]
    fn unc_hist_bins_cover_the_value_range() {
        let ((), events) = capture(|| {
            unc_hist("pseudo_uncertainty", &[0.0, 0.05, 0.1, 0.1, 0.4], 4);
            unc_hist("mc_el2n", &[], 4);
            unc_hist("constant", &[0.5, 0.5], 4);
        });
        match &events[0].kind {
            EventKind::UncHist {
                lo,
                hi,
                mean,
                counts,
                ..
            } => {
                assert_eq!(*lo, 0.0);
                assert_eq!(*hi, 0.4);
                assert!((mean - 0.13).abs() < 1e-12);
                assert_eq!(counts.iter().sum::<u64>(), 5);
                assert_eq!(counts[3], 1, "max value lands in the last bin");
            }
            other => panic!("wrong kind {other:?}"),
        }
        match &events[1].kind {
            EventKind::UncHist { counts, .. } => {
                assert_eq!(counts.iter().sum::<u64>(), 0);
            }
            other => panic!("wrong kind {other:?}"),
        }
        match &events[2].kind {
            EventKind::UncHist { lo, hi, counts, .. } => {
                assert_eq!((*lo, *hi), (0.5, 0.5));
                assert_eq!(counts[0], 2, "zero-width range collapses to bin 0");
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn flush_metrics_emits_metric_events() {
        metrics::counter("test_flush_metrics_counter", &[]).add(2);
        let ((), events) = capture(flush_metrics);
        let found = events.iter().any(|e| {
            matches!(
                &e.kind,
                EventKind::Metric { name, kind, value, .. }
                    if name == "test_flush_metrics_counter" && kind == "counter" && *value >= 2.0
            )
        });
        assert!(found, "metric event for the seeded counter is missing");
    }

    #[test]
    fn seq_is_monotonic_across_helpers() {
        let ((), events) = capture(|| {
            for i in 0..32 {
                block(i);
            }
        });
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }
}
