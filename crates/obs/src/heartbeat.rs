//! Trainer heartbeats: periodic `progress` events from inside training
//! loops (throughput, ETA, running loss, tape/heap gauges).
//!
//! The gate follows the op profiler's relaxed-load pattern: one interval
//! word, settable programmatically (`--progress-every`) or via
//! `PROMPTEM_PROGRESS_EVERY`, read with a single `Relaxed` load. When the
//! interval is 0 (the default) [`heartbeat`] returns `None` before
//! touching a clock, so a heartbeat-free run pays one atomic load per
//! training phase and nothing per batch. [`clock_reads`] counts every
//! clock access the module makes, which is how the zero-cost claim is
//! proven rather than asserted (see the tests here and the op profiler's
//! equivalent in `em-nn`).
//!
//! Ticks are *work units* (batches, optimizer steps, MC passes), not
//! wall-clock intervals: emission every N ticks keeps the decision
//! deterministic and clock-free.

use crate::event::EventKind;
use crate::{alloc, enabled, metrics, Stopwatch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Programmatic interval override (0 = not forced; fall back to the env).
static FORCED_EVERY: AtomicU64 = AtomicU64::new(0);

/// Clock reads performed by this module, ever. Diagnostics only: the
/// zero-cost test pins this to be flat across a disabled training loop.
static CLOCK_READS: AtomicU64 = AtomicU64::new(0);

/// The metric the autodiff tape ticks per recorded node; sampled into
/// each beat so a dashboard can watch graph growth without op profiling.
const TAPE_NODES_METRIC: &str = "nn_tape_nodes";

fn env_every() -> u64 {
    static ENV: OnceLock<u64> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PROMPTEM_PROGRESS_EVERY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    })
}

/// The active heartbeat interval in ticks (0 = heartbeats off). The
/// programmatic setting wins over `PROMPTEM_PROGRESS_EVERY`.
pub fn progress_every() -> u64 {
    match FORCED_EVERY.load(Ordering::Relaxed) {
        0 => env_every(),
        n => n,
    }
}

/// Set the heartbeat interval programmatically (the CLI's
/// `--progress-every`). 0 clears the override, falling back to the env.
pub fn set_progress_every(every: u64) {
    FORCED_EVERY.store(every, Ordering::Relaxed);
}

/// Total clock reads this module has ever performed (diagnostics; the
/// disabled path must keep this flat).
pub fn clock_reads() -> u64 {
    CLOCK_READS.load(Ordering::Relaxed)
}

fn read_clock_secs(watch: &Stopwatch) -> f64 {
    CLOCK_READS.fetch_add(1, Ordering::Relaxed);
    watch.secs()
}

/// Start a heartbeat for one training phase, or `None` when heartbeats
/// are off or no sink would observe them. `total` is the expected tick
/// count (0 when unknown; fix it up later with
/// [`Heartbeat::set_total`]).
pub fn heartbeat(phase: &'static str, total: u64) -> Option<Heartbeat> {
    let every = progress_every();
    if every == 0 || !enabled() {
        return None;
    }
    CLOCK_READS.fetch_add(1, Ordering::Relaxed);
    Some(Heartbeat {
        phase,
        every,
        total,
        done: 0,
        examples: 0,
        loss_sum: 0.0,
        loss_ticks: 0,
        watch: Stopwatch::new(),
    })
}

/// A live heartbeat: call [`tick`](Heartbeat::tick) once per work unit;
/// every `progress_every()` ticks it emits one `progress` event.
pub struct Heartbeat {
    phase: &'static str,
    every: u64,
    total: u64,
    done: u64,
    examples: u64,
    loss_sum: f64,
    loss_ticks: u64,
    watch: Stopwatch,
}

impl Heartbeat {
    /// Update the expected tick count once it becomes known (e.g. after
    /// the first epoch reveals the batch count).
    pub fn set_total(&mut self, total: u64) {
        self.total = total;
    }

    /// Record one finished work unit covering `examples` examples with an
    /// optional batch loss; emits a `progress` event every N ticks.
    pub fn tick(&mut self, examples: u64, loss: Option<f64>) {
        self.done += 1;
        self.examples += examples;
        if let Some(l) = loss {
            self.loss_sum += l;
            self.loss_ticks += 1;
        }
        if self.done.is_multiple_of(self.every) {
            self.beat();
        }
    }

    fn beat(&mut self) {
        let secs = read_clock_secs(&self.watch);
        let ex_per_sec = if secs > 0.0 {
            self.examples as f64 / secs
        } else {
            0.0
        };
        let eta_us = (self.total > self.done && self.done > 0 && secs > 0.0).then(|| {
            let per_tick = secs / self.done as f64;
            (per_tick * (self.total - self.done) as f64 * 1e6) as u64
        });
        let loss = (self.loss_ticks > 0).then(|| self.loss_sum / self.loss_ticks as f64);
        self.loss_sum = 0.0;
        self.loss_ticks = 0;
        crate::emit(EventKind::Progress {
            phase: self.phase.into(),
            done: self.done,
            total: self.total,
            examples: self.examples,
            ex_per_sec,
            loss,
            eta_us,
            tape_nodes: metrics::counter(TAPE_NODES_METRIC, &[]).get(),
            heap_peak: alloc::peak_bytes() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture;
    use crate::event::EventKind;
    use crate::names;

    /// Serializes tests that touch the global interval word; parallel
    /// mutation would make the gate assertions racy.
    static EVERY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_is_zero_cost_and_enabled_beats_every_n_ticks() {
        let _guard = EVERY_LOCK.lock().unwrap();
        // Disabled (the default): no Heartbeat, no clock reads, no events
        // — even under a capture, which otherwise forces `enabled()`.
        let ((), events) = capture(|| {
            let reads_before = clock_reads();
            let mut hb = heartbeat("tune", 100);
            assert!(hb.is_none(), "interval 0 must not build a heartbeat");
            for _ in 0..50 {
                if let Some(h) = hb.as_mut() {
                    h.tick(16, Some(0.5));
                }
            }
            assert_eq!(
                clock_reads(),
                reads_before,
                "disabled heartbeats must not read the clock"
            );
        });
        assert!(
            events
                .iter()
                .all(|e| e.kind.type_tag() != names::EV_PROGRESS),
            "disabled heartbeats must not emit progress events"
        );

        // Enabled: every 4th tick beats, with running loss reset per beat.
        set_progress_every(4);
        let ((), events) = capture(|| {
            let mut hb = heartbeat("tune", 12).expect("interval set");
            for i in 0..12 {
                hb.tick(8, Some(i as f64));
            }
        });
        set_progress_every(0);
        let beats: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Progress {
                    phase,
                    done,
                    total,
                    examples,
                    loss,
                    ..
                } => Some((phase.clone(), *done, *total, *examples, *loss)),
                _ => None,
            })
            .collect();
        assert_eq!(beats.len(), 3, "12 ticks at every=4");
        assert_eq!(beats[0], ("tune".into(), 4, 12, 32, Some(1.5)));
        assert_eq!(beats[1], ("tune".into(), 8, 12, 64, Some(5.5)));
        assert_eq!(beats[2], ("tune".into(), 12, 12, 96, Some(9.5)));
    }

    #[test]
    fn unknown_total_suppresses_eta() {
        let _guard = EVERY_LOCK.lock().unwrap();
        set_progress_every(2);
        let ((), events) = capture(|| {
            let mut hb = heartbeat("mc_dropout", 0).expect("interval set");
            hb.tick(0, None);
            hb.tick(0, None);
        });
        set_progress_every(0);
        let beat = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Progress {
                    total,
                    eta_us,
                    loss,
                    ..
                } => Some((*total, *eta_us, *loss)),
                _ => None,
            })
            .expect("one beat");
        assert_eq!(beat, (0, None, None));
    }
}
