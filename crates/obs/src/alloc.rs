//! A counting global allocator: tracks current and peak heap usage of the
//! process, feeding the `heap_delta`/`heap_peak` fields of span-close events
//! and the memory column of Table 4. Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: em_obs::alloc::CountingAllocator = em_obs::alloc::CountingAllocator;
//! ```
//!
//! When the allocator is not installed the counters stay at zero, so span
//! heap deltas read as 0 rather than garbage.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Wraps the system allocator, tracking live and peak bytes.
pub struct CountingAllocator;

// safety: every method delegates the actual (de)allocation to `System`
// and only adds Relaxed counter updates, so System's contract is upheld.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // safety: forwarded verbatim to the system allocator.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // safety: caller passes a (ptr, layout) pair from our alloc, which
        // came from System.
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // safety: caller passes a (ptr, layout) pair from our alloc, which
        // came from System.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let old = layout.size();
            if new_size >= old {
                let cur = CURRENT.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current level (call between measured phases).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Human-readable bytes (the paper reports gigabytes; quick-scale runs are
/// megabytes).
pub fn format_bytes(bytes: usize) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.1}G", b / GB)
    } else {
        format!("{:.1}M", b / MB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_is_human_readable() {
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.0G");
        assert_eq!(format_bytes(512 * 1024), "0.5M");
    }
}
