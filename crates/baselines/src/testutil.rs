//! Test fixtures for baseline matchers: a small benchmark dataset with a
//! cheaply-pretrained backbone, built once per test process.

use em_data::pair::GemDataset;
use em_data::synth::{build, BenchmarkId, Scale};
use em_lm::PretrainedLm;
use promptem::encode::EncodedDataset;
use promptem::pipeline::{encode_with, pretrain_backbone, PromptEmConfig};
use std::sync::{Arc, OnceLock};

/// A REL-HETER quick dataset, its encoding, and a minimally-pretrained
/// backbone. Quality is irrelevant for API tests; speed matters.
pub fn toy_task() -> (GemDataset, EncodedDataset, Arc<PretrainedLm>) {
    static FIXTURE: OnceLock<(GemDataset, EncodedDataset, Arc<PretrainedLm>)> = OnceLock::new();
    let (ds, enc, bb) = FIXTURE.get_or_init(|| {
        let ds = build(BenchmarkId::RelHeter, Scale::Quick, 1234);
        let mut cfg = PromptEmConfig::default();
        cfg.pretrain.max_steps = 120;
        cfg.corpus.max_record_sentences = 150;
        cfg.corpus.relation_statements = 120;
        let backbone = pretrain_backbone(&ds, &cfg);
        let encoded = encode_with(&ds, &backbone, &cfg);
        (ds, encoded, backbone)
    });
    (ds.clone(), enc.clone(), bb.clone())
}
