//! Ditto baseline (Li et al.): fine-tuning with its three optimizations
//! adapted to this pipeline — (i) domain knowledge is covered by the shared
//! serialization's typed `[COL]/[VAL]` structure, (ii) TF-IDF summarization
//! is already applied by the encoder (Appendix F credits Ditto for it),
//! (iii) data augmentation: the train set is expanded with label-invariant
//! augmented copies before fine-tuning.

use crate::augment::augment_set;
use crate::common::{MatchTask, Matcher};
use promptem::encode::{EncodedPair, Example};
use promptem::trainer::{TrainCfg, TunableMatcher};
use promptem::FineTuneModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The augmentation-enhanced fine-tuning baseline.
pub struct DittoBaseline {
    /// Fine-tuning budget.
    pub cfg: TrainCfg,
    /// Augmented copies per training example.
    pub augment_k: usize,
    model: Option<FineTuneModel>,
    seed: u64,
}

impl DittoBaseline {
    /// Create the baseline (2 augmented copies per example by default).
    pub fn new(cfg: TrainCfg, seed: u64) -> Self {
        DittoBaseline {
            cfg,
            augment_k: 2,
            model: None,
            seed,
        }
    }
}

impl Matcher for DittoBaseline {
    fn name(&self) -> &'static str {
        "Ditto"
    }

    fn fit(&mut self, task: &MatchTask) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD1770);
        let mut train = task.encoded.train.clone();
        train.extend(augment_set(&task.encoded.train, self.augment_k, &mut rng));
        let mut model = FineTuneModel::new(task.backbone.clone(), self.seed);
        model.train(&train, &task.encoded.valid, &self.cfg, None);
        self.model = Some(model);
    }

    fn predict(&mut self, _task: &MatchTask, pairs: &[EncodedPair]) -> Vec<bool> {
        // lint:allow(unwrap) — the Matcher contract is fit-then-predict
        self.model.as_mut().expect("fit first").predict(pairs)
    }
}

/// Rotom baseline (Miao et al.): a meta-learning framework that *selects
/// and weights* augmented data instead of using all of it. Reproduced as
/// its two-stage core: (1) train a seed model on clean data; (2) generate a
/// large augmentation pool and keep only the candidates the seed model
/// still classifies consistently (low-loss = semantically safe, the
/// meta-filter's behaviour); (3) retrain on clean + selected data. The
/// two-stage structure is also why Rotom is the slowest LM baseline in
/// Table 4.
pub struct RotomBaseline {
    /// Per-stage fine-tuning budget.
    pub cfg: TrainCfg,
    /// Candidate augmentations per example (pool size before filtering).
    pub pool_k: usize,
    /// Fraction of the pool kept after consistency filtering.
    pub keep: f64,
    model: Option<FineTuneModel>,
    seed: u64,
}

impl RotomBaseline {
    /// Create the baseline (pool of 4, keep 50% by default).
    pub fn new(cfg: TrainCfg, seed: u64) -> Self {
        RotomBaseline {
            cfg,
            pool_k: 4,
            keep: 0.5,
            model: None,
            seed,
        }
    }
}

impl Matcher for RotomBaseline {
    fn name(&self) -> &'static str {
        "Rotom"
    }

    fn fit(&mut self, task: &MatchTask) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x2070);
        // Stage 1: seed model on clean data.
        let mut seed_model = FineTuneModel::new(task.backbone.clone(), self.seed);
        seed_model.train(&task.encoded.train, &task.encoded.valid, &self.cfg, None);

        // Stage 2: filter the augmentation pool by seed-model consistency.
        let pool = augment_set(&task.encoded.train, self.pool_k, &mut rng);
        let pairs: Vec<EncodedPair> = pool.iter().map(|e| e.pair.clone()).collect();
        let probs = seed_model.predict_proba(&pairs);
        let mut scored: Vec<(usize, f32)> = pool
            .iter()
            .enumerate()
            .map(|(i, ex)| {
                let y = if ex.label { 1.0 } else { 0.0 };
                (i, (probs[i] - y).abs()) // consistency loss
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let n_keep = ((pool.len() as f64) * self.keep) as usize;
        let selected: Vec<Example> = scored
            .iter()
            .take(n_keep)
            .map(|&(i, _)| pool[i].clone())
            .collect();

        // Stage 3: retrain on clean + selected.
        let mut train = task.encoded.train.clone();
        train.extend(selected);
        let mut model = FineTuneModel::new(task.backbone.clone(), self.seed ^ 1);
        model.train(&train, &task.encoded.valid, &self.cfg, None);
        self.model = Some(model);
    }

    fn predict(&mut self, _task: &MatchTask, pairs: &[EncodedPair]) -> Vec<bool> {
        // lint:allow(unwrap) — the Matcher contract is fit-then-predict
        self.model.as_mut().expect("fit first").predict(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_matcher;
    use crate::testutil::toy_task;

    #[test]
    fn ditto_fits_with_augmentation() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let mut m = DittoBaseline::new(
            TrainCfg {
                epochs: 2,
                ..Default::default()
            },
            3,
        );
        let (scores, _) = evaluate_matcher(&mut m, &task);
        assert!(scores.f1 >= 0.0);
    }

    #[test]
    fn rotom_is_slower_than_ditto() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let cfg = TrainCfg {
            epochs: 2,
            ..Default::default()
        };
        // Wall-clock comparison is flaky under a loaded test runner, so
        // compare optimizer work instead: Rotom's two stages must take
        // strictly more AdamW steps than Ditto's single stage. capture()
        // enables telemetry on this thread so the step counter ticks.
        let steps = || em_obs::metrics::counter("nn_optimizer_steps", &[("opt", "adamw")]).get();
        let ((d_steps, r_steps), _) = em_obs::capture(|| {
            let before = steps();
            let mut ditto = DittoBaseline::new(cfg.clone(), 4);
            evaluate_matcher(&mut ditto, &task);
            let mid = steps();
            let mut rotom = RotomBaseline::new(cfg, 4);
            evaluate_matcher(&mut rotom, &task);
            (mid - before, steps() - mid)
        });
        assert!(
            r_steps > d_steps,
            "two-stage Rotom should cost more: {r_steps} vs {d_steps} optimizer steps"
        );
    }
}
