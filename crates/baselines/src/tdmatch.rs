//! TDmatch baseline (Ahmadi, Sand & Papotti): *unsupervised* matching of
//! structured and textual data via graph creation and random walks.
//!
//! A tripartite graph is built over left records, right records and their
//! value tokens; matching scores are random-walk-with-restart (RWR)
//! stationary masses from each left record onto right records. A pair is
//! predicted a match when each side is the other's best walk target
//! (reciprocal top-1) — no labels consumed anywhere.
//!
//! The per-source power iteration over the whole graph is what makes
//! TDmatch expensive (Table 4: hours and >100 GB at the paper's scale);
//! the same asymptotics show here at miniature scale.
//!
//! `TDmatch*` is the paper's supervised variant: an MLP over walk-derived
//! record embeddings, trained on the low-resource labels.

use crate::common::{MatchTask, Matcher};
use em_data::blocking::record_tokens;
use em_data::pair::GemDataset;
use em_nn::layers::Mlp;
use em_nn::{AdamW, Matrix, ParamStore, Tape};
use promptem::encode::EncodedPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Sparse undirected graph in CSR-ish form with uniform transition
/// probabilities.
struct WalkGraph {
    /// neighbors[node] = adjacent node ids.
    neighbors: Vec<Vec<u32>>,
    n_left: usize,
    n_right: usize,
}

impl WalkGraph {
    /// Nodes: `0..n_left` = left records, `n_left..n_left+n_right` = right
    /// records, the rest are token nodes.
    fn build(ds: &GemDataset) -> Self {
        let n_left = ds.left.records.len();
        let n_right = ds.right.records.len();
        let mut token_ids: HashMap<String, u32> = HashMap::new();
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n_left + n_right];
        let add_record = |node: usize,
                          tokens: std::collections::HashSet<String>,
                          neighbors: &mut Vec<Vec<u32>>,
                          token_ids: &mut HashMap<String, u32>| {
            for t in tokens {
                let next_id = (neighbors.len()) as u32;
                let tid = *token_ids.entry(t).or_insert_with(|| next_id);
                if tid as usize == neighbors.len() {
                    neighbors.push(Vec::new());
                }
                neighbors[node].push(tid);
                neighbors[tid as usize].push(node as u32);
            }
        };
        for (i, r) in ds.left.records.iter().enumerate() {
            add_record(
                i,
                record_tokens(r, ds.left.format),
                &mut neighbors,
                &mut token_ids,
            );
        }
        for (j, r) in ds.right.records.iter().enumerate() {
            add_record(
                n_left + j,
                record_tokens(r, ds.right.format),
                &mut neighbors,
                &mut token_ids,
            );
        }
        WalkGraph {
            neighbors,
            n_left,
            n_right,
        }
    }

    fn n_nodes(&self) -> usize {
        self.neighbors.len()
    }

    /// Random walk with restart from `source`: returns the stationary
    /// distribution (power iteration).
    fn rwr(&self, source: usize, restart: f32, iters: usize) -> Vec<f32> {
        let n = self.n_nodes();
        let mut p = vec![0.0f32; n];
        p[source] = 1.0;
        let mut next = vec![0.0f32; n];
        for _ in 0..iters {
            next.iter_mut().for_each(|v| *v = 0.0);
            for (u, mass) in p.iter().enumerate() {
                if *mass == 0.0 {
                    continue;
                }
                let deg = self.neighbors[u].len();
                if deg == 0 {
                    next[source] += mass;
                    continue;
                }
                let share = mass * (1.0 - restart) / deg as f32;
                for &v in &self.neighbors[u] {
                    next[v as usize] += share;
                }
                next[source] += mass * restart;
            }
            std::mem::swap(&mut p, &mut next);
        }
        p
    }

    /// RWR mass landing on the *other* side's record nodes.
    fn record_scores(&self, source: usize, restart: f32, iters: usize) -> Vec<f32> {
        let p = self.rwr(source, restart, iters);
        if source < self.n_left {
            p[self.n_left..self.n_left + self.n_right].to_vec()
        } else {
            p[..self.n_left].to_vec()
        }
    }
}

/// The unsupervised TDmatch matcher.
pub struct TDmatchBaseline {
    /// Random-walk restart probability.
    pub restart: f32,
    /// Power-iteration count per source.
    pub iters: usize,
    /// match decision: reciprocal top-1 between left and right walks.
    best_right_of_left: Vec<usize>,
    best_left_of_right: Vec<usize>,
}

impl TDmatchBaseline {
    /// Default configuration (restart 0.15, 12 iterations).
    pub fn new() -> Self {
        TDmatchBaseline {
            restart: 0.15,
            iters: 12,
            best_right_of_left: Vec::new(),
            best_left_of_right: Vec::new(),
        }
    }
}

impl Default for TDmatchBaseline {
    fn default() -> Self {
        Self::new()
    }
}

impl Matcher for TDmatchBaseline {
    fn name(&self) -> &'static str {
        "TDmatch"
    }

    fn fit(&mut self, task: &MatchTask) {
        let g = WalkGraph::build(task.raw);
        self.best_right_of_left = (0..g.n_left)
            .map(|i| argmax(&g.record_scores(i, self.restart, self.iters)))
            .collect();
        self.best_left_of_right = (0..g.n_right)
            .map(|j| argmax(&g.record_scores(g.n_left + j, self.restart, self.iters)))
            .collect();
    }

    fn predict(&mut self, _task: &MatchTask, _pairs: &[EncodedPair]) -> Vec<bool> {
        panic!("TDmatch predicts on raw pair indices; use predict_test");
    }

    fn predict_test(&mut self, task: &MatchTask) -> Vec<bool> {
        task.raw
            .test
            .iter()
            .map(|lp| {
                let (i, j) = (lp.pair.left, lp.pair.right);
                self.best_right_of_left.get(i) == Some(&j)
                    && self.best_left_of_right.get(j) == Some(&i)
            })
            .collect()
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// TDmatch*: an MLP classifier over walk-derived embeddings (Appendix D:
/// input `(u, v, |u−v|, u·v)`), trained on the low-resource labels.
pub struct TDmatchStarBaseline {
    /// Random-walk restart probability.
    pub restart: f32,
    /// Power-iteration count per source.
    pub iters: usize,
    /// Projected embedding width.
    pub embed_dim: usize,
    /// MLP training epochs.
    pub epochs: usize,
    /// MLP learning rate.
    pub lr: f32,
    left_emb: Vec<Vec<f32>>,
    right_emb: Vec<Vec<f32>>,
    /// Walk score of each (left, right) pair, row-normalized to [0, 1].
    left_scores: Vec<Vec<f32>>,
    store: ParamStore,
    head: Option<Mlp>,
    seed: u64,
}

impl TDmatchStarBaseline {
    /// Default configuration.
    pub fn new(seed: u64) -> Self {
        TDmatchStarBaseline {
            restart: 0.15,
            iters: 12,
            embed_dim: 32,
            epochs: 80,
            lr: 5e-3,
            left_emb: Vec::new(),
            right_emb: Vec::new(),
            left_scores: Vec::new(),
            store: ParamStore::new(),
            head: None,
            seed,
        }
    }

    fn feature_dim(&self) -> usize {
        4 * self.embed_dim + 2
    }

    fn features(&self, i: usize, j: usize) -> Vec<f32> {
        let u = &self.left_emb[i];
        let v = &self.right_emb[j];
        let mut f = Vec::with_capacity(self.feature_dim());
        f.extend_from_slice(u);
        f.extend_from_slice(v);
        f.extend(u.iter().zip(v).map(|(a, b)| (a - b).abs()));
        f.extend(u.iter().zip(v).map(|(a, b)| a * b));
        // Walk-proximity features: the row-normalized RWR score of this
        // pair and whether it is the row's best target.
        let srel = self.left_scores[i][j];
        f.push(srel);
        f.push(if srel >= 0.999 { 1.0 } else { 0.0 });
        f
    }
}

impl Matcher for TDmatchStarBaseline {
    fn name(&self) -> &'static str {
        "TDmatch*"
    }

    fn fit(&mut self, task: &MatchTask) {
        let g = WalkGraph::build(task.raw);
        // Walk-derived embeddings: the RWR landing distribution of each
        // record, projected to a fixed random basis (deterministic seed).
        let n = g.n_nodes();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7D);
        let proj = Matrix::from_fn(n, self.embed_dim, |_, _| {
            rng.gen_range(-1.0f32..1.0) / (n as f32).sqrt()
        });
        let embed = |p: &[f32]| -> Vec<f32> {
            let mut e = vec![0.0f32; self.embed_dim];
            for (row, &mass) in p.iter().enumerate() {
                if mass > 0.0 {
                    for (k, ev) in e.iter_mut().enumerate() {
                        *ev += mass * proj.get(row, k);
                    }
                }
            }
            // Scale up: RWR masses are tiny.
            e.iter().map(|v| v * (n as f32).sqrt()).collect()
        };
        self.left_emb = Vec::with_capacity(g.n_left);
        self.left_scores = Vec::with_capacity(g.n_left);
        for i in 0..g.n_left {
            let p = g.rwr(i, self.restart, self.iters);
            // Row-normalized scores onto the right records.
            let mut row: Vec<f32> = p[g.n_left..g.n_left + g.n_right].to_vec();
            let max = row.iter().cloned().fold(0.0f32, f32::max).max(1e-12);
            for v in &mut row {
                *v /= max;
            }
            self.left_scores.push(row);
            self.left_emb.push(embed(&p));
        }
        self.right_emb = (0..g.n_right)
            .map(|j| embed(&g.rwr(g.n_left + j, self.restart, self.iters)))
            .collect();

        // Train the MLP on the low-resource labels, oversampling the
        // positives so the tiny head does not collapse onto the majority
        // class (same balancing as the LM methods' trainer).
        let mut store = ParamStore::new();
        let head = Mlp::new(
            &mut store,
            "tdstar.head",
            self.feature_dim(),
            self.embed_dim,
            2,
            &mut rng,
        );
        let mut opt = AdamW::new(self.lr);
        let mut train: Vec<_> = task.raw.train.to_vec();
        let pos: Vec<_> = train.iter().filter(|lp| lp.label).cloned().collect();
        let neg_count = train.len() - pos.len();
        if !pos.is_empty() {
            for k in 0..neg_count.saturating_sub(pos.len()) {
                train.push(pos[k % pos.len()]);
            }
        }
        for _ in 0..self.epochs {
            store.zero_grads();
            let mut tape = Tape::new();
            let feats: Vec<f32> = train
                .iter()
                .flat_map(|lp| self.features(lp.pair.left, lp.pair.right))
                .collect();
            let x = tape.constant(Matrix::from_vec(train.len(), self.feature_dim(), feats));
            let logits = head.forward(&mut tape, &store, x);
            let targets: Vec<usize> = train.iter().map(|lp| usize::from(!lp.label)).collect();
            let loss = tape.cross_entropy(logits, &targets);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        self.store = store;
        self.head = Some(head);
    }

    fn predict(&mut self, _task: &MatchTask, _pairs: &[EncodedPair]) -> Vec<bool> {
        panic!("TDmatch* predicts on raw pair indices; use predict_test");
    }

    fn predict_test(&mut self, task: &MatchTask) -> Vec<bool> {
        // lint:allow(unwrap) — the Matcher contract is fit-then-predict
        let head = self.head.as_ref().expect("fit first");
        task.raw
            .test
            .iter()
            .map(|lp| {
                let f = self.features(lp.pair.left, lp.pair.right);
                let mut tape = Tape::inference();
                let x = tape.constant(Matrix::from_vec(1, f.len(), f));
                let logits = head.forward(&mut tape, &self.store, x);
                let lm = tape.value(logits);
                lm.get(0, 0) > lm.get(0, 1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_matcher;
    use crate::testutil::toy_task;

    #[test]
    fn graph_shape_is_consistent() {
        let (raw, _, _) = toy_task();
        let g = WalkGraph::build(&raw);
        assert_eq!(g.n_left, raw.left.records.len());
        assert_eq!(g.n_right, raw.right.records.len());
        assert!(g.n_nodes() > g.n_left + g.n_right, "no token nodes created");
        // Symmetry: each record-token edge exists in both directions.
        for (u, ns) in g.neighbors.iter().enumerate() {
            for &v in ns {
                assert!(
                    g.neighbors[v as usize].contains(&(u as u32)),
                    "edge {u}->{v} not symmetric"
                );
            }
        }
    }

    #[test]
    fn rwr_is_a_distribution() {
        let (raw, _, _) = toy_task();
        let g = WalkGraph::build(&raw);
        let p = g.rwr(0, 0.15, 10);
        let total: f32 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "mass not conserved: {total}");
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn tdmatch_finds_true_matches_better_than_chance() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let mut m = TDmatchBaseline::new();
        let (scores, _) = evaluate_matcher(&mut m, &task);
        // Unsupervised reciprocal-top-1 on a dataset whose positives share
        // most tokens should beat the trivial all-negative classifier.
        assert!(
            scores.f1 > 10.0,
            "TDmatch F1 suspiciously low: {}",
            scores.f1
        );
    }

    #[test]
    fn tdmatch_star_trains_head() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let mut m = TDmatchStarBaseline::new(5);
        let (scores, _) = evaluate_matcher(&mut m, &task);
        assert!(scores.f1 >= 0.0);
    }
}
