//! Data-augmentation operators over tokenized pairs, in the spirit of
//! Ditto's DA suite (token deletion/swap, span shuffle, attribute-ish
//! drops) and the augmentation pool Rotom selects from.

use promptem::encode::{EncodedPair, Example};
use rand::seq::SliceRandom;
use rand::Rng;

/// An augmentation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AugmentOp {
    /// Delete ~10% of tokens from each side.
    TokenDelete,
    /// Swap two adjacent tokens on each side.
    TokenSwap,
    /// Shuffle a short span in place.
    SpanShuffle,
    /// Swap the two sides (matching is symmetric).
    SideSwap,
}

impl AugmentOp {
    /// Every operator, for uniform sampling.
    pub const ALL: [AugmentOp; 4] = [
        AugmentOp::TokenDelete,
        AugmentOp::TokenSwap,
        AugmentOp::SpanShuffle,
        AugmentOp::SideSwap,
    ];
}

fn delete_tokens(ids: &[usize], p: f64, rng: &mut impl Rng) -> Vec<usize> {
    if ids.len() <= 2 {
        return ids.to_vec();
    }
    let kept: Vec<usize> = ids.iter().copied().filter(|_| !rng.gen_bool(p)).collect();
    if kept.is_empty() {
        ids.to_vec()
    } else {
        kept
    }
}

fn swap_adjacent(ids: &[usize], rng: &mut impl Rng) -> Vec<usize> {
    let mut out = ids.to_vec();
    if out.len() >= 2 {
        let i = rng.gen_range(0..out.len() - 1);
        out.swap(i, i + 1);
    }
    out
}

fn shuffle_span(ids: &[usize], rng: &mut impl Rng) -> Vec<usize> {
    let mut out = ids.to_vec();
    if out.len() >= 4 {
        let len = (out.len() / 3).max(2);
        let start = rng.gen_range(0..out.len() - len);
        out[start..start + len].shuffle(rng);
    }
    out
}

/// Apply one operator to a pair (label is preserved — all ops are
/// label-invariant for matching).
pub fn apply(op: AugmentOp, pair: &EncodedPair, rng: &mut impl Rng) -> EncodedPair {
    match op {
        AugmentOp::TokenDelete => EncodedPair {
            ids_a: delete_tokens(&pair.ids_a, 0.1, rng),
            ids_b: delete_tokens(&pair.ids_b, 0.1, rng),
        },
        AugmentOp::TokenSwap => EncodedPair {
            ids_a: swap_adjacent(&pair.ids_a, rng),
            ids_b: swap_adjacent(&pair.ids_b, rng),
        },
        AugmentOp::SpanShuffle => EncodedPair {
            ids_a: shuffle_span(&pair.ids_a, rng),
            ids_b: shuffle_span(&pair.ids_b, rng),
        },
        AugmentOp::SideSwap => EncodedPair {
            ids_a: pair.ids_b.clone(),
            ids_b: pair.ids_a.clone(),
        },
    }
}

/// Generate `k` augmented copies of each example with randomly chosen ops.
pub fn augment_set(examples: &[Example], k: usize, rng: &mut impl Rng) -> Vec<Example> {
    let mut out = Vec::with_capacity(examples.len() * k);
    for ex in examples {
        for _ in 0..k {
            let op = AugmentOp::ALL[rng.gen_range(0..AugmentOp::ALL.len())];
            out.push(Example {
                pair: apply(op, &ex.pair, rng),
                label: ex.label,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> EncodedPair {
        EncodedPair {
            ids_a: (10..22).collect(),
            ids_b: (30..40).collect(),
        }
    }

    #[test]
    fn side_swap_swaps() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = pair();
        let a = apply(AugmentOp::SideSwap, &p, &mut rng);
        assert_eq!(a.ids_a, p.ids_b);
        assert_eq!(a.ids_b, p.ids_a);
    }

    #[test]
    fn token_delete_never_empties() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let a = apply(AugmentOp::TokenDelete, &pair(), &mut rng);
            assert!(!a.ids_a.is_empty() && !a.ids_b.is_empty());
        }
    }

    #[test]
    fn swap_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = pair();
        for op in [AugmentOp::TokenSwap, AugmentOp::SpanShuffle] {
            let a = apply(op, &p, &mut rng);
            let mut x = a.ids_a.clone();
            let mut y = p.ids_a.clone();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y, "{op:?} changed the token multiset");
        }
    }

    #[test]
    fn augment_set_scales_and_keeps_labels() {
        let mut rng = StdRng::seed_from_u64(4);
        let exs = vec![
            Example {
                pair: pair(),
                label: true,
            },
            Example {
                pair: pair(),
                label: false,
            },
        ];
        let aug = augment_set(&exs, 3, &mut rng);
        assert_eq!(aug.len(), 6);
        assert_eq!(aug.iter().filter(|e| e.label).count(), 3);
    }
}
