//! DeepMatcher baseline (Mudgal et al.): a pre-LM-era RNN architecture. Each
//! side's tokens are embedded (randomly initialized — *no* pretrained LM,
//! which is why the paper finds it weakest in low resource), encoded with a
//! BiLSTM, mean-pooled, and the pooled pair is classified through the
//! classic `(u, v, |u−v|, u·v)` comparator MLP (the "hybrid" model's
//! aggregate-and-compare shape).

use crate::common::{MatchTask, Matcher};
use em_nn::layers::{BiLstm, Embedding, Mlp};
use em_nn::{AdamW, ParamStore, Tape, Var};
use promptem::encode::{EncodedPair, Example};
use promptem::model::run_training;
use promptem::trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNN matcher itself (also usable under LST via [`TunableMatcher`]).
pub struct DeepMatcherModel {
    store: ParamStore,
    emb: Embedding,
    rnn: BiLstm,
    head: Mlp,
    vocab: usize,
    dim: usize,
    threshold: f32,
    seed: u64,
}

impl DeepMatcherModel {
    /// Randomly-initialized model over a `vocab`-sized token space.
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "dm.emb", vocab, dim, &mut rng);
        let rnn = BiLstm::new(&mut store, "dm.rnn", dim, dim / 2, &mut rng);
        let head = Mlp::new(&mut store, "dm.head", 4 * dim, 2 * dim, 2, &mut rng);
        DeepMatcherModel {
            store,
            emb,
            rnn,
            head,
            vocab,
            dim,
            threshold: 0.5,
            seed,
        }
    }

    fn encode_side(&mut self, tape: &mut Tape, ids: &[usize]) -> Var {
        let ids = if ids.is_empty() {
            &[em_lm::tokenizer::UNK][..]
        } else {
            ids
        };
        let x = self.emb.forward(tape, &self.store, ids);
        let h = self.rnn.forward(tape, &self.store, x);
        tape.mean_rows(h)
    }

    fn forward_logits(&mut self, tape: &mut Tape, pairs: &[&EncodedPair]) -> Var {
        let mut rows = Vec::with_capacity(pairs.len());
        for p in pairs {
            let (ids_a, ids_b) = (p.ids_a.clone(), p.ids_b.clone());
            let u = self.encode_side(tape, &ids_a);
            let v = self.encode_side(tape, &ids_b);
            let diff = tape.sub(u, v);
            let neg = tape.scale(diff, -1.0);
            let r1 = tape.relu(diff);
            let r2 = tape.relu(neg);
            let absdiff = tape.add(r1, r2);
            let prod = tape.mul(u, v);
            rows.push(tape.concat_cols(&[u, v, absdiff, prod]));
        }
        let features = tape.concat_rows(&rows);
        self.head.forward(tape, &self.store, features)
    }

    fn forward_probs(&mut self, tape: &mut Tape, pairs: &[&EncodedPair]) -> Vec<f32> {
        let logits = self.forward_logits(tape, pairs);
        let probs = tape.softmax_rows(logits);
        let pm = tape.value(probs);
        (0..pm.rows()).map(|r| pm.get(r, 0)).collect()
    }

    fn batch_step(&mut self, batch: &[&Example], opt: &mut AdamW) -> f32 {
        self.store.zero_grads();
        let mut tape = Tape::new();
        let pairs: Vec<&EncodedPair> = batch.iter().map(|e| &e.pair).collect();
        let logits = self.forward_logits(&mut tape, &pairs);
        let targets: Vec<usize> = batch.iter().map(|e| usize::from(!e.label)).collect();
        let loss = tape.cross_entropy(logits, &targets);
        let value = tape.value(loss).item();
        tape.backward(loss);
        tape.accumulate_param_grads(&mut self.store);
        self.store.clip_grad_norm(1.0);
        opt.step(&mut self.store);
        value
    }
}

impl TunableMatcher for DeepMatcherModel {
    fn fresh(&self, seed: u64) -> Self {
        DeepMatcherModel::new(self.vocab, self.dim, self.seed ^ seed)
    }

    fn train(
        &mut self,
        train: &[Example],
        valid: &[Example],
        cfg: &TrainCfg,
        prune: Option<&PruneCfg>,
    ) -> TrainReport {
        run_training(
            self,
            &mut |m, b, o| m.batch_step(b, o),
            &mut |m| m.store.clone(),
            &mut |m, s: ParamStore| m.store = s,
            train,
            valid,
            cfg,
            prune,
        )
    }

    fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(32) {
            let refs: Vec<&EncodedPair> = chunk.iter().collect();
            let mut tape = Tape::inference();
            out.extend(self.forward_probs(&mut tape, &refs));
        }
        out
    }

    fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
        em_lm::mc_dropout::run_passes(passes, |_| self.predict_proba(pairs))
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f32) {
        self.threshold = t;
    }

    fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(pairs.len());
        for p in pairs {
            let (ids_a, ids_b) = (p.ids_a.clone(), p.ids_b.clone());
            let mut tape = Tape::inference();
            let u = self.encode_side(&mut tape, &ids_a);
            let v = self.encode_side(&mut tape, &ids_b);
            let uv = tape.concat_cols(&[u, v]);
            out.push(tape.value(uv).row(0).to_vec());
        }
        out
    }
}

/// The [`Matcher`] wrapper used by the experiment harness.
pub struct DeepMatcherBaseline {
    /// Training budget.
    pub cfg: TrainCfg,
    model: Option<DeepMatcherModel>,
    seed: u64,
}

impl DeepMatcherBaseline {
    /// Create the baseline with a training budget.
    pub fn new(cfg: TrainCfg, seed: u64) -> Self {
        DeepMatcherBaseline {
            cfg,
            model: None,
            seed,
        }
    }
}

impl Matcher for DeepMatcherBaseline {
    fn name(&self) -> &'static str {
        "DeepMatcher"
    }

    fn fit(&mut self, task: &MatchTask) {
        // Same vocabulary as the tokenizer (fair input), but randomly
        // initialized weights: DeepMatcher predates pretrained LMs.
        let vocab = task.backbone.tokenizer.vocab_size();
        let dim = task.backbone.d_model();
        let mut model = DeepMatcherModel::new(vocab, dim, self.seed);
        model.train(&task.encoded.train, &task.encoded.valid, &self.cfg, None);
        self.model = Some(model);
    }

    fn predict(&mut self, _task: &MatchTask, pairs: &[EncodedPair]) -> Vec<bool> {
        // lint:allow(unwrap) — the Matcher contract is fit-then-predict
        self.model.as_mut().expect("fit first").predict(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_task;

    #[test]
    fn deepmatcher_runs_end_to_end() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let mut m = DeepMatcherBaseline::new(
            TrainCfg {
                epochs: 2,
                ..Default::default()
            },
            2,
        );
        let (scores, _) = crate::common::evaluate_matcher(&mut m, &task);
        assert!(scores.f1 >= 0.0);
    }

    #[test]
    fn empty_side_does_not_panic() {
        let mut m = DeepMatcherModel::new(50, 16, 3);
        let p = EncodedPair {
            ids_a: vec![],
            ids_b: vec![10, 11],
        };
        let probs = m.predict_proba(&[p]);
        assert!(probs[0].is_finite());
    }
}
