//! # em-baselines
//!
//! The eight comparison systems of the PromptEM evaluation (§5.1),
//! implemented from scratch on the shared substrates:
//!
//! * [`deepmatcher`] — RNN aggregate-and-compare, no pretrained LM;
//! * [`bert_ft`] — vanilla fine-tuning of the shared backbone;
//! * [`sbert`] — SentenceBERT-style siamese encoder;
//! * [`ditto`] — fine-tuning + data augmentation (+ the serialization and
//!   summarization optimizations shared by the whole pipeline), and the
//!   Rotom meta-filtered augmentation variant;
//! * [`dader`] — domain adaptation with adversarial feature alignment;
//! * [`tdmatch`] — unsupervised graph + random-walk-with-restart matching,
//!   plus the supervised TDmatch* MLP head;
//! * [`augment`] — the label-invariant augmentation operators;
//! * [`common`] — the [`common::Matcher`] trait and evaluation helper.

#![warn(missing_docs)]

pub mod augment;
pub mod bert_ft;
pub mod common;
pub mod dader;
pub mod deepmatcher;
pub mod ditto;
pub mod sbert;
pub mod tdmatch;
pub mod testutil;

pub use bert_ft::BertBaseline;
pub use common::{evaluate_matcher, MatchTask, Matcher};
pub use dader::DaderBaseline;
pub use deepmatcher::DeepMatcherBaseline;
pub use ditto::{DittoBaseline, RotomBaseline};
pub use sbert::SBertBaseline;
pub use tdmatch::{TDmatchBaseline, TDmatchStarBaseline};
