//! DADER baseline (Tu et al.): entity resolution via *domain adaptation*.
//! A source EM dataset from a similar domain supplies abundant labels; the
//! feature extractor is aligned across domains with an adversarial domain
//! discriminator behind a gradient-reversal layer (the DANN core of
//! DADER's InvGAN family), then the classifier is tuned on the target's
//! low-resource labels.
//!
//! As in the paper's Appendix D: "For the source dataset, we use all the
//! training samples. For the target dataset, we use the same low-resource
//! training samples as other supervised methods."

use crate::common::{MatchTask, Matcher};
use em_data::pair::GemDataset;
use em_lm::tokenizer::{CLS, SEP};
use em_nn::layers::Mlp;
use em_nn::{AdamW, Tape, Var};
use promptem::encode::{encode_dataset, EncodeCfg, EncodedPair, Example};
use promptem::trainer::{calibrate_threshold, TrainCfg, TunableMatcher};
use promptem::FineTuneModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The domain-adaptation baseline.
pub struct DaderBaseline {
    /// Source/target training budget.
    pub cfg: TrainCfg,
    /// Weight of the adversarial domain loss.
    pub lambda: f32,
    /// Alignment steps (joint classifier + discriminator batches).
    pub align_steps: usize,
    source: GemDataset,
    model: Option<FineTuneModel>,
    seed: u64,
}

impl DaderBaseline {
    /// `source` should come from a similar domain (the harness pairs each
    /// benchmark with its closest sibling).
    pub fn new(cfg: TrainCfg, source: GemDataset, seed: u64) -> Self {
        DaderBaseline {
            cfg,
            lambda: 0.3,
            align_steps: 30,
            source,
            model: None,
            seed,
        }
    }

    fn cls_feature(
        model: &mut FineTuneModel,
        tape: &mut Tape,
        p: &EncodedPair,
        rng: &mut StdRng,
    ) -> Var {
        let budget = model.lm.max_len().saturating_sub(3);
        let ka = p.ids_a.len().min(budget / 2);
        let kb = p.ids_b.len().min(budget - ka);
        let mut ids = Vec::with_capacity(ka + kb + 3);
        ids.push(CLS);
        ids.extend_from_slice(&p.ids_a[..ka]);
        ids.push(SEP);
        ids.extend_from_slice(&p.ids_b[..kb]);
        ids.push(SEP);
        let h = model.lm.encoder.forward(tape, &model.lm.store, &ids, rng);
        tape.slice_rows(h, 0, 1)
    }
}

impl Matcher for DaderBaseline {
    fn name(&self) -> &'static str {
        "DADER"
    }

    fn fit(&mut self, task: &MatchTask) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xDADE);

        // Encode the SOURCE dataset with the TARGET tokenizer (the shared
        // backbone is the target's; OOV falls back to pieces).
        let source_full = self.source.sufficient();
        let source_encoded = encode_dataset(
            &source_full,
            &task.backbone.tokenizer,
            &EncodeCfg::default(),
        );

        // Stage 1: supervised training on the full source labels.
        let mut model = FineTuneModel::new(task.backbone.clone(), self.seed);
        model.train(
            &source_encoded.train,
            &source_encoded.valid,
            &self.cfg,
            None,
        );

        // Stage 2: adversarial feature alignment (DANN): a domain
        // discriminator over [CLS] features behind a gradient-reversal
        // layer; the encoder learns domain-invariant features while the
        // classifier keeps fitting source labels.
        let d = model.lm.encoder.cfg.d_model;
        let disc = Mlp::new(&mut model.lm.store, "dader.disc", d, d, 2, &mut rng);
        let mut opt = AdamW::new(self.cfg.lr);
        let src_pool: Vec<&Example> = source_encoded.train.iter().collect();
        let tgt_pool: Vec<&EncodedPair> = task
            .encoded
            .train
            .iter()
            .map(|e| &e.pair)
            .chain(task.encoded.unlabeled.iter())
            .collect();
        if !src_pool.is_empty() && !tgt_pool.is_empty() {
            for step in 0..self.align_steps {
                model.lm.store.zero_grads();
                let mut tape = Tape::new();
                let mut feats = Vec::new();
                let mut domain_targets = Vec::new();
                let mut cls_rows = Vec::new();
                let mut cls_targets = Vec::new();
                for k in 0..8 {
                    let ex = src_pool[(step * 8 + k) % src_pool.len()];
                    let f = Self::cls_feature(&mut model, &mut tape, &ex.pair, &mut rng);
                    feats.push(f);
                    domain_targets.push(0);
                    cls_rows.push(f);
                    cls_targets.push(usize::from(!ex.label));
                }
                for k in 0..8 {
                    let p = tgt_pool[(step * 8 + k) % tgt_pool.len()];
                    let f = Self::cls_feature(&mut model, &mut tape, p, &mut rng);
                    feats.push(f);
                    domain_targets.push(1);
                }
                let stacked = tape.concat_rows(&feats);
                let reversed = tape.grad_reverse(stacked, self.lambda);
                let disc_logits = disc.forward(&mut tape, &model.lm.store, reversed);
                let domain_loss = tape.cross_entropy(disc_logits, &domain_targets);

                let cls_stacked = tape.concat_rows(&cls_rows);
                let cls_logits = model.head.logits(&mut tape, &model.lm.store, cls_stacked);
                let cls_loss = tape.cross_entropy(cls_logits, &cls_targets);

                let total = tape.add(cls_loss, domain_loss);
                tape.backward(total);
                tape.accumulate_param_grads(&mut model.lm.store);
                model.lm.store.clip_grad_norm(1.0);
                opt.step(&mut model.lm.store);
            }
        }

        // Stage 3: tune on the target's low-resource labels.
        let mut tgt_cfg = self.cfg.clone();
        tgt_cfg.epochs = (self.cfg.epochs / 2).max(2);
        model.train(&task.encoded.train, &task.encoded.valid, &tgt_cfg, None);

        // Final threshold calibration on the target validation set.
        let vpairs: Vec<EncodedPair> = task.encoded.valid.iter().map(|e| e.pair.clone()).collect();
        let vgold: Vec<bool> = task.encoded.valid.iter().map(|e| e.label).collect();
        let probs = model.predict_proba(&vpairs);
        model.set_threshold(calibrate_threshold(&probs, &vgold));
        self.model = Some(model);
    }

    fn predict(&mut self, _task: &MatchTask, pairs: &[EncodedPair]) -> Vec<bool> {
        // lint:allow(unwrap) — the Matcher contract is fit-then-predict
        self.model.as_mut().expect("fit first").predict(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_matcher;
    use crate::testutil::toy_task;
    use em_data::synth::{build, BenchmarkId, Scale};

    #[test]
    fn dader_adapts_from_a_source_dataset() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let source = build(BenchmarkId::GeoHeter, Scale::Quick, 77);
        let mut m = DaderBaseline::new(
            TrainCfg {
                epochs: 1,
                ..Default::default()
            },
            source,
            9,
        );
        m.align_steps = 3;
        let (scores, _) = evaluate_matcher(&mut m, &task);
        assert!(scores.f1 >= 0.0);
    }
}
