//! The shared interface every baseline matcher implements, and the task
//! bundle handed to it: the raw dataset (graph methods work on records),
//! the encoded dataset (LM methods work on token ids) and the shared
//! pretrained backbone (all LM baselines start from the same LM, as all of
//! the paper's LM baselines start from RoBERTa-base).

use em_data::pair::GemDataset;
use em_data::PrfScores;
use em_lm::PretrainedLm;
use promptem::encode::{EncodedDataset, EncodedPair};
use std::sync::Arc;

/// Everything a matcher may consume. Gold labels of the unlabeled pool and
/// the test split are off-limits to `fit`.
pub struct MatchTask<'a> {
    /// The raw dataset (records, splits).
    pub raw: &'a GemDataset,
    /// The tokenized dataset.
    pub encoded: &'a EncodedDataset,
    /// The shared pretrained LM.
    pub backbone: Arc<PretrainedLm>,
}

/// A trainable (or unsupervised) matching system.
pub trait Matcher {
    /// Display name (Table 2 row label).
    fn name(&self) -> &'static str;

    /// Train on the task's labeled low-resource split (and, for
    /// unsupervised methods, the raw tables).
    fn fit(&mut self, task: &MatchTask);

    /// Predict match/mismatch for arbitrary encoded pairs. Methods that
    /// work on raw records receive the pair indices via `test_pairs`
    /// instead — see [`Matcher::predict_test`].
    fn predict(&mut self, task: &MatchTask, pairs: &[EncodedPair]) -> Vec<bool>;

    /// Predict the test split. Default: encoded-pair path.
    fn predict_test(&mut self, task: &MatchTask) -> Vec<bool> {
        let pairs: Vec<EncodedPair> = task.encoded.test.iter().map(|e| e.pair.clone()).collect();
        self.predict(task, &pairs)
    }
}

/// Fit + evaluate one matcher; returns scores and the fit wall-clock.
pub fn evaluate_matcher<M: Matcher>(matcher: &mut M, task: &MatchTask) -> (PrfScores, f64) {
    let _span = em_obs::span_with(em_obs::names::SPAN_BASELINE, matcher.name());
    let start = em_obs::Stopwatch::new();
    let fit_secs = {
        let _span = em_obs::span(em_obs::names::SPAN_FIT);
        matcher.fit(task);
        start.secs()
    };
    let pred = {
        let _span = em_obs::span(em_obs::names::SPAN_PREDICT);
        matcher.predict_test(task)
    };
    let gold: Vec<bool> = task.encoded.test.iter().map(|e| e.label).collect();
    (PrfScores::from_predictions(&pred, &gold), fit_secs)
}
