//! SentenceBERT baseline (Reimers & Gurevych): a *siamese* architecture —
//! each record is encoded independently, the two pooled embeddings are
//! combined as `(u, v, |u−v|, u·v)` and classified by an MLP. The encoder
//! is fine-tuned jointly with the head.

use crate::common::{MatchTask, Matcher};
use em_lm::tokenizer::{CLS, SEP};
use em_lm::PretrainedLm;
use em_nn::layers::Mlp;
use em_nn::{AdamW, ParamStore, Tape, Var};
use promptem::encode::{EncodedPair, Example};
use promptem::model::run_training;
use promptem::trainer::{PruneCfg, TrainCfg, TrainReport, TunableMatcher};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The siamese model.
pub struct SBertModel {
    backbone: Arc<PretrainedLm>,
    /// The working copy of the backbone.
    pub lm: PretrainedLm,
    head: Mlp,
    threshold: f32,
    rng: StdRng,
}

impl SBertModel {
    /// Clone the backbone and attach the comparator MLP.
    pub fn new(backbone: Arc<PretrainedLm>, seed: u64) -> Self {
        let mut lm = (*backbone).clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let d = lm.encoder.cfg.d_model;
        let head = Mlp::new(&mut lm.store, "sbert.head", 4 * d, 2 * d, 2, &mut rng);
        SBertModel {
            backbone,
            lm,
            head,
            threshold: 0.5,
            rng,
        }
    }

    /// Mean-pooled embedding of one side: `[CLS] side [SEP]` → mean of
    /// hidden rows (SBERT's pooling).
    fn encode_side(&mut self, tape: &mut Tape, ids: &[usize]) -> Var {
        let mut framed = Vec::with_capacity(ids.len() + 2);
        framed.push(CLS);
        framed.extend_from_slice(&ids[..ids.len().min(self.lm.max_len() - 2)]);
        framed.push(SEP);
        let h = self
            .lm
            .encoder
            .forward(tape, &self.lm.store, &framed, &mut self.rng);
        tape.mean_rows(h)
    }

    fn forward_logits(&mut self, tape: &mut Tape, pairs: &[&EncodedPair]) -> Var {
        let mut rows = Vec::with_capacity(pairs.len());
        for p in pairs {
            let u = self.encode_side(tape, &p.ids_a);
            let v = self.encode_side(tape, &p.ids_b);
            let diff = tape.sub(u, v);
            let absdiff = {
                // |u - v| via relu(x) + relu(-x)
                let neg = tape.scale(diff, -1.0);
                let a = tape.relu(diff);
                let b = tape.relu(neg);
                tape.add(a, b)
            };
            let prod = tape.mul(u, v);
            rows.push(tape.concat_cols(&[u, v, absdiff, prod]));
        }
        let features = tape.concat_rows(&rows);
        self.head.forward(tape, &self.lm.store, features)
    }

    fn forward_probs(&mut self, tape: &mut Tape, pairs: &[&EncodedPair]) -> Vec<f32> {
        let logits = self.forward_logits(tape, pairs);
        let probs = tape.softmax_rows(logits);
        let pm = tape.value(probs);
        (0..pm.rows()).map(|r| pm.get(r, 0)).collect()
    }

    fn batch_step(&mut self, batch: &[&Example], opt: &mut AdamW) -> f32 {
        self.lm.store.zero_grads();
        let mut tape = Tape::new();
        let pairs: Vec<&EncodedPair> = batch.iter().map(|e| &e.pair).collect();
        let logits = self.forward_logits(&mut tape, &pairs);
        let targets: Vec<usize> = batch.iter().map(|e| usize::from(!e.label)).collect();
        let loss = tape.cross_entropy(logits, &targets);
        let value = tape.value(loss).item();
        tape.backward(loss);
        tape.accumulate_param_grads(&mut self.lm.store);
        self.lm.store.clip_grad_norm(1.0);
        opt.step(&mut self.lm.store);
        value
    }
}

impl TunableMatcher for SBertModel {
    fn fresh(&self, seed: u64) -> Self {
        SBertModel::new(self.backbone.clone(), seed)
    }

    fn train(
        &mut self,
        train: &[Example],
        valid: &[Example],
        cfg: &TrainCfg,
        prune: Option<&PruneCfg>,
    ) -> TrainReport {
        run_training(
            self,
            &mut |m, b, o| m.batch_step(b, o),
            &mut |m| m.lm.store.clone(),
            &mut |m, s: ParamStore| m.lm.store = s,
            train,
            valid,
            cfg,
            prune,
        )
    }

    fn predict_proba(&mut self, pairs: &[EncodedPair]) -> Vec<f32> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(32) {
            let refs: Vec<&EncodedPair> = chunk.iter().collect();
            let mut tape = Tape::inference();
            out.extend(self.forward_probs(&mut tape, &refs));
        }
        out
    }

    fn stochastic_proba(&mut self, pairs: &[EncodedPair], passes: usize) -> Vec<Vec<f32>> {
        em_lm::mc_dropout::run_passes(passes, |_| {
            let mut out = Vec::with_capacity(pairs.len());
            for chunk in pairs.chunks(32) {
                let refs: Vec<&EncodedPair> = chunk.iter().collect();
                let mut tape = Tape::new();
                out.extend(self.forward_probs(&mut tape, &refs));
            }
            out
        })
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn set_threshold(&mut self, t: f32) {
        self.threshold = t;
    }

    fn embed(&mut self, pairs: &[EncodedPair]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(pairs.len());
        for p in pairs {
            let mut tape = Tape::inference();
            let u = self.encode_side(&mut tape, &p.ids_a);
            let v = self.encode_side(&mut tape, &p.ids_b);
            let uv = tape.concat_cols(&[u, v]);
            out.push(tape.value(uv).row(0).to_vec());
        }
        out
    }
}

/// The baseline wrapper.
pub struct SBertBaseline {
    /// Fine-tuning budget.
    pub cfg: TrainCfg,
    model: Option<SBertModel>,
    seed: u64,
}

impl SBertBaseline {
    /// Create the baseline with a training budget.
    pub fn new(cfg: TrainCfg, seed: u64) -> Self {
        SBertBaseline {
            cfg,
            model: None,
            seed,
        }
    }
}

impl Matcher for SBertBaseline {
    fn name(&self) -> &'static str {
        "SentenceBERT"
    }

    fn fit(&mut self, task: &MatchTask) {
        let mut model = SBertModel::new(task.backbone.clone(), self.seed);
        model.train(&task.encoded.train, &task.encoded.valid, &self.cfg, None);
        self.model = Some(model);
    }

    fn predict(&mut self, _task: &MatchTask, pairs: &[EncodedPair]) -> Vec<bool> {
        // lint:allow(unwrap) — the Matcher contract is fit-then-predict
        self.model.as_mut().expect("fit first").predict(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_task;

    #[test]
    fn siamese_features_have_4d_width() {
        let (_, encoded, backbone) = toy_task();
        let d = backbone.d_model();
        let mut m = SBertModel::new(backbone, 5);
        let p = &encoded.train[0].pair;
        let mut tape = Tape::inference();
        let u = m.encode_side(&mut tape, &p.ids_a);
        assert_eq!(tape.value(u).shape(), (1, d));
    }

    #[test]
    fn sbert_fits_and_predicts() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let mut m = SBertBaseline::new(
            TrainCfg {
                epochs: 2,
                ..Default::default()
            },
            6,
        );
        let (scores, _) = crate::common::evaluate_matcher(&mut m, &task);
        assert!(scores.f1 >= 0.0 && scores.f1 <= 100.0);
    }
}
