//! The "BERT" baseline (paper §5.1): the shared pretrained LM fine-tuned as
//! a sequence-pair classifier — exactly [`promptem::FineTuneModel`] without
//! self-training.

use crate::common::{MatchTask, Matcher};
use promptem::encode::EncodedPair;
use promptem::trainer::{TrainCfg, TunableMatcher};
use promptem::FineTuneModel;

/// The vanilla fine-tuning baseline.
pub struct BertBaseline {
    /// Fine-tuning budget.
    pub cfg: TrainCfg,
    model: Option<FineTuneModel>,
    seed: u64,
}

impl BertBaseline {
    /// Create the baseline with a training budget.
    pub fn new(cfg: TrainCfg, seed: u64) -> Self {
        BertBaseline {
            cfg,
            model: None,
            seed,
        }
    }
}

impl Matcher for BertBaseline {
    fn name(&self) -> &'static str {
        "BERT"
    }

    fn fit(&mut self, task: &MatchTask) {
        let mut model = FineTuneModel::new(task.backbone.clone(), self.seed);
        model.train(&task.encoded.train, &task.encoded.valid, &self.cfg, None);
        self.model = Some(model);
    }

    fn predict(&mut self, _task: &MatchTask, pairs: &[EncodedPair]) -> Vec<bool> {
        // lint:allow(unwrap) — the Matcher contract is fit-then-predict
        self.model.as_mut().expect("fit first").predict(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_task;

    #[test]
    fn bert_baseline_fits_and_predicts() {
        let (raw, encoded, backbone) = toy_task();
        let task = MatchTask {
            raw: &raw,
            encoded: &encoded,
            backbone,
        };
        let mut m = BertBaseline::new(
            TrainCfg {
                epochs: 2,
                ..Default::default()
            },
            1,
        );
        let (scores, secs) = crate::common::evaluate_matcher(&mut m, &task);
        assert!(secs > 0.0);
        assert!(scores.f1 >= 0.0);
    }
}
