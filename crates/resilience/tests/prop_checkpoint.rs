//! Property tests for the checkpoint container: any set of sections must
//! survive the encode → decode round trip bitwise, and any truncation or
//! single-byte corruption of the encoded form must be *detected* (CRC32
//! catches every single-byte error by construction), never silently
//! accepted.

use em_resilience::Checkpoint;
use proptest::prelude::*;

/// Arbitrary section lists: short printable names, arbitrary payloads
/// (empty payloads included — an empty section is legal).
fn sections() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(
        (
            "[a-z][a-z0-9_]{0,11}",
            proptest::collection::vec(any::<u8>(), 0..200),
        ),
        1..6,
    )
}

fn build(sections: &[(String, Vec<u8>)]) -> Checkpoint {
    let mut ckpt = Checkpoint::new();
    for (name, payload) in sections {
        ckpt.insert(name, payload.clone());
    }
    ckpt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_section_set_round_trips(sections in sections()) {
        let ckpt = build(&sections);
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        // Later inserts replace earlier ones, so compare against the last
        // payload recorded under each name.
        for (name, payload) in &sections {
            let last = sections
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, p)| p.as_slice())
                .expect("name came from this list");
            prop_assert_eq!(back.get(name), Some(last));
            let _ = payload;
        }
    }

    #[test]
    fn any_truncation_is_rejected(sections in sections(), cut in 0usize..1 << 20) {
        let bytes = build(&sections).encode();
        let keep = cut % bytes.len(); // 0..len, always a strict prefix
        prop_assert!(
            Checkpoint::decode(&bytes[..keep]).is_err(),
            "decode accepted a {}-byte prefix of {} bytes",
            keep,
            bytes.len()
        );
    }

    #[test]
    fn any_single_byte_flip_is_rejected(
        sections in sections(),
        at in 0usize..1 << 20,
        xor in 0u8..255,
    ) {
        let mut bytes = build(&sections).encode();
        let i = at % bytes.len();
        bytes[i] ^= xor + 1; // never zero: the flip always changes the byte
        prop_assert!(
            Checkpoint::decode(&bytes).is_err(),
            "decode accepted a flip of byte {} (xor {:#04x})",
            i,
            xor
        );
    }
}
