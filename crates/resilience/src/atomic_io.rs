//! Atomic durable writes plus bounded retry.
//!
//! The write protocol is the classic temp → fsync → rename → fsync(dir)
//! sequence: readers either see the old file or the complete new one, never
//! a prefix. This module is the only sanctioned home of raw `File::create`
//! in lib code (enforced by the em-lint `atomic-io` rule).

use crate::failpoint::{self, Action};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Attempts made by [`write_with_retry`] before giving up.
pub const RETRY_ATTEMPTS: u32 = 3;

/// Write `bytes` to `path` atomically: the data lands in `<path>.tmp`
/// first, is fsynced, then renamed over the destination. On any error the
/// destination is untouched and the temp file is removed best-effort.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_named("", path, bytes)
}

/// [`atomic_write`] guarded by the failpoint `fp_name` (empty = unguarded):
/// `io_err` fails the write, `truncate` completes it with half the payload
/// (a torn write the *reader* must catch — rename still happens).
pub fn atomic_write_named(fp_name: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut effective = bytes;
    if !fp_name.is_empty() {
        match failpoint::check(fp_name) {
            Some(Action::IoErr) => {
                return Err(io::Error::other(format!(
                    "failpoint '{fp_name}': injected I/O error"
                )));
            }
            Some(Action::Truncate) => effective = &bytes[..bytes.len() / 2],
            Some(Action::Delay) => std::thread::sleep(std::time::Duration::from_millis(100)),
            Some(Action::Panic) => panic!("failpoint '{fp_name}': injected crash"),
            Some(Action::Nan) | None => {}
        }
    }

    let tmp = tmp_path(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(effective)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Durability of the rename itself requires fsyncing the parent directory;
/// best-effort because not every filesystem supports opening directories.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// The base backoff in milliseconds between retry attempts (attempt `n`
/// sleeps `base * n`). Defaults to 25; `PROMPTEM_RETRY_BACKOFF_MS`
/// overrides it — chaos/CI stages set it to 0 so injected storage faults
/// stop wall-sleeping through the suite.
pub fn retry_backoff_ms() -> u64 {
    static BASE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *BASE.get_or_init(|| {
        std::env::var("PROMPTEM_RETRY_BACKOFF_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(25)
    })
}

/// Run a fallible I/O operation with bounded retry and deterministic
/// backoff (`base`, `2*base` ms between attempts; see
/// [`retry_backoff_ms`]). Each retry emits an `io_retry` em-obs event so
/// transient storage trouble is visible in traces, and exhausting the
/// budget emits a terminal `io_retry` with `gave_up=true` before the
/// error is returned — the give-up is never silent.
pub fn write_with_retry<F>(op_name: &str, op: F) -> io::Result<()>
where
    F: FnMut() -> io::Result<()>,
{
    write_with_retry_base(op_name, retry_backoff_ms(), op)
}

/// [`write_with_retry`] with an explicit backoff base (tests pass 0 so
/// the retry path runs without wall-sleeping).
pub fn write_with_retry_base<F>(op_name: &str, base_ms: u64, mut op: F) -> io::Result<()>
where
    F: FnMut() -> io::Result<()>,
{
    let mut last_err = None;
    for attempt in 1..=RETRY_ATTEMPTS {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) => {
                if attempt < RETRY_ATTEMPTS {
                    let delay = base_ms * attempt as u64;
                    em_obs::io_retry(op_name, attempt as u64, delay);
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                }
                last_err = Some(e);
            }
        }
    }
    em_obs::io_retry_gave_up(op_name, RETRY_ATTEMPTS as u64);
    Err(last_err.unwrap_or_else(|| io::Error::other("retry loop without attempts")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("em-resilience-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = tmp_dir("aw");
        let p = dir.join("out.bin");
        atomic_write(&p, b"hello").expect("write");
        assert_eq!(std::fs::read(&p).expect("read"), b"hello");
        // Overwrite is atomic too.
        atomic_write(&p, b"world!").expect("rewrite");
        assert_eq!(std::fs::read(&p).expect("read"), b"world!");
        // No temp litter.
        assert!(!dir.join("out.bin.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let dir = tmp_dir("fw");
        let p = dir.join("missing-parent").join("out.bin");
        assert!(atomic_write(&p, b"x").is_err());
        assert!(!p.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut failures_left = 2;
        let result = write_with_retry_base("test_op", 0, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::other("transient"))
            } else {
                Ok(())
            }
        });
        assert!(result.is_ok());
        assert_eq!(failures_left, 0);
    }

    #[test]
    fn retry_gives_up_after_bounded_attempts() {
        let mut calls = 0;
        let result = write_with_retry_base("test_op", 0, || {
            calls += 1;
            Err(io::Error::other("persistent"))
        });
        assert!(result.is_err());
        assert_eq!(calls, RETRY_ATTEMPTS);
    }

    #[test]
    fn exhausted_retry_emits_terminal_gave_up_event() {
        let (result, events) = em_obs::capture(|| {
            write_with_retry_base("test_op", 0, || Err(io::Error::other("persistent")))
        });
        assert!(result.is_err());
        let retries: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                em_obs::EventKind::IoRetry {
                    attempt, gave_up, ..
                } => Some((*attempt, *gave_up)),
                _ => None,
            })
            .collect();
        // Two non-terminal retries, then the terminal give-up.
        assert_eq!(
            retries,
            vec![(1, false), (2, false), (RETRY_ATTEMPTS as u64, true)]
        );
    }

    #[test]
    fn successful_retry_emits_no_gave_up() {
        let mut failures_left = 1;
        let ((), events) = em_obs::capture(|| {
            write_with_retry_base("test_op", 0, || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(io::Error::other("transient"))
                } else {
                    Ok(())
                }
            })
            .expect("retry should succeed");
        });
        assert!(events
            .iter()
            .all(|e| !matches!(&e.kind, em_obs::EventKind::IoRetry { gave_up: true, .. })));
    }
}
