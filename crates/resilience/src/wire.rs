//! Little-endian encode/decode helpers for checkpoint section payloads.
//!
//! Section payloads are self-describing byte blobs built by the trainers
//! (`em-lm`, `promptem`); these helpers keep their hand-rolled formats
//! consistent and bounds-checked. Decoding never allocates more than the
//! bytes remaining in the input, so truncated garbage fails fast instead
//! of attempting a huge allocation.

use std::io;

/// Append a `u64` (little-endian).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f32` (little-endian bits).
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` (little-endian bits).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte blob.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked cursor over a payload slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn eof() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "payload truncated")
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(eof());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn f32(&mut self) -> io::Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn f64(&mut self) -> io::Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Length-prefixed byte blob; the length must fit in what remains.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> io::Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 string"))
    }

    /// Require the payload to be fully consumed.
    pub fn finish(&self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in payload",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        put_f32(&mut out, -1.5);
        put_f64(&mut out, 2.25);
        put_str(&mut out, "hello");
        put_bytes(&mut out, &[1, 2, 3]);
        let mut r = Reader::new(&out);
        assert_eq!(r.u64().expect("u64"), 42);
        assert_eq!(r.f32().expect("f32"), -1.5);
        assert_eq!(r.f64().expect("f64"), 2.25);
        assert_eq!(r.str().expect("str"), "hello");
        assert_eq!(r.bytes().expect("bytes"), &[1, 2, 3]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn truncated_input_fails_without_allocating() {
        // Claimed length far exceeds remaining bytes; must error, not OOM.
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut r = Reader::new(&out);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut out = Vec::new();
        put_u64(&mut out, 1);
        out.push(0);
        let mut r = Reader::new(&out);
        r.u64().expect("u64");
        assert!(r.finish().is_err());
    }
}
