//! Env-driven fault injection for chaos tests.
//!
//! Grammar (comma-separated entries in `PROMPTEM_FAILPOINTS`):
//!
//! ```text
//! <name>:<mode>@<hit>
//! ```
//!
//! e.g. `ckpt_write:io_err@2,batch:panic@117` — the 2nd checkpoint write
//! fails with an I/O error, and the 117th batch panics (crash-at-step).
//! Modes: `io_err`, `truncate`, `delay`, `panic`, `nan`. An entry fires
//! exactly once, on its Nth evaluation of that name (1-based); the same
//! name may appear in several entries to fire at several points.
//!
//! With the variable unset, [`check`] is a single relaxed atomic load —
//! release hot paths stay effectively free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// What an armed failpoint injects at its trigger site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return a synthetic `io::Error` from the guarded operation.
    IoErr,
    /// Complete the guarded write with only a prefix of the payload.
    Truncate,
    /// Sleep briefly before proceeding (stalled-disk simulation).
    Delay,
    /// Panic — the crash-at-step primitive for kill-and-resume tests.
    Panic,
    /// Poison the guarded value (trainers treat the batch loss as NaN).
    Nan,
}

struct Point {
    name: String,
    action: Action,
    at: u64,
    hits: AtomicU64,
}

static REGISTRY: OnceLock<Vec<Point>> = OnceLock::new();

fn parse_entry(entry: &str) -> Option<Point> {
    let entry = entry.trim();
    if entry.is_empty() {
        return None;
    }
    let (name, rest) = entry.split_once(':')?;
    let (mode, at) = rest.split_once('@')?;
    let action = match mode {
        "io_err" => Action::IoErr,
        "truncate" => Action::Truncate,
        "delay" => Action::Delay,
        "panic" => Action::Panic,
        "nan" => Action::Nan,
        _ => return None,
    };
    let at: u64 = at.parse().ok().filter(|&n| n > 0)?;
    Some(Point {
        name: name.trim().to_string(),
        action,
        at,
        hits: AtomicU64::new(0),
    })
}

fn registry() -> &'static [Point] {
    REGISTRY.get_or_init(|| {
        let spec = match std::env::var("PROMPTEM_FAILPOINTS") {
            Ok(s) => s,
            Err(_) => return Vec::new(),
        };
        let mut points = Vec::new();
        for entry in spec.split(',') {
            match parse_entry(entry) {
                Some(p) => points.push(p),
                None if !entry.trim().is_empty() => {
                    eprintln!(
                        "warning: ignoring malformed failpoint entry '{entry}' (want name:mode@N)"
                    );
                }
                None => {}
            }
        }
        points
    })
}

/// Evaluate the failpoint `name`. Each call counts as one hit for every
/// entry with that name; an entry whose hit count reaches its `@N` fires
/// once and returns its action. Callers evaluate exactly once per guarded
/// unit (one batch, one write attempt).
#[inline]
pub fn check(name: &str) -> Option<Action> {
    let reg = registry();
    if reg.is_empty() {
        return None;
    }
    check_slow(reg, name)
}

#[cold]
fn check_slow(reg: &[Point], name: &str) -> Option<Action> {
    let mut fired = None;
    for p in reg {
        if p.name == name {
            let hit = p.hits.fetch_add(1, Ordering::Relaxed) + 1;
            if hit == p.at && fired.is_none() {
                fired = Some(p.action);
            }
        }
    }
    fired
}

/// Apply the scheduling-only actions a trainer loop supports inline:
/// `Delay` sleeps here, `Panic` panics here; `Nan` is returned for the
/// caller to poison its loss; I/O actions are ignored (wrong context).
pub fn trigger_in_batch(name: &str) -> Option<Action> {
    match check(name) {
        Some(Action::Panic) => panic!("failpoint '{name}': injected crash"),
        Some(Action::Delay) => {
            std::thread::sleep(std::time::Duration::from_millis(100));
            None
        }
        Some(Action::Nan) => Some(Action::Nan),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry parsing is driven by env at first use, which is awkward in
    // unit tests sharing a process; parse_entry is tested directly and the
    // env-driven path is exercised by the subprocess chaos tests in the CLI.

    #[test]
    fn parses_well_formed_entries() {
        let p = parse_entry("ckpt_write:io_err@2").expect("valid entry");
        assert_eq!(p.name, "ckpt_write");
        assert_eq!(p.action, Action::IoErr);
        assert_eq!(p.at, 2);
        let p = parse_entry(" batch : panic@117 ");
        // Inner spaces around the mode are not trimmed — entry is rejected.
        assert!(p.is_none());
        let p = parse_entry("batch:panic@117").expect("valid entry");
        assert_eq!(p.action, Action::Panic);
        assert_eq!(p.at, 117);
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "",
            "noatsign:io_err",
            "name@3",
            "x:unknown@1",
            "x:delay@0",
            "x:delay@-1",
        ] {
            assert!(parse_entry(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unset_registry_is_inert() {
        // REGISTRY initializes from the test process env, which does not set
        // PROMPTEM_FAILPOINTS; every check must be None.
        assert_eq!(check("anything"), None);
        assert_eq!(trigger_in_batch("batch"), None);
    }
}
