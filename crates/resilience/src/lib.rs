//! Crash safety for long training runs.
//!
//! Pretraining plus the self-train loop is the dominant cost of a PromptEM
//! run; this crate makes that path survivable. It provides:
//!
//! - [`checkpoint`]: a versioned, CRC32-checksummed container format plus a
//!   [`checkpoint::CheckpointDir`] that writes atomically (temp → fsync →
//!   rename) with keep-last-k rotation and corruption-tolerant loading.
//! - [`atomic_io`]: the atomic durable-write primitive and a bounded
//!   deterministic-backoff retry wrapper, both observable through em-obs.
//! - [`failpoint`]: an env-driven fault-injection registry
//!   (`PROMPTEM_FAILPOINTS=ckpt_write:io_err@2,batch:panic@117`) used by the
//!   chaos tests; it costs one relaxed atomic load when unset.
//! - [`wire`]: tiny little-endian encode/decode helpers shared by the
//!   checkpoint payload writers in `em-lm` and `promptem`.
//!
//! The trainers in `em-lm` / `promptem` consume these through a
//! [`ResilienceCtx`] built from the CLI's `--checkpoint-dir D
//! --checkpoint-every N --resume` flags.

pub mod atomic_io;
pub mod checkpoint;
pub mod failpoint;
pub mod wire;

use std::io;
use std::path::PathBuf;

pub use atomic_io::{atomic_write, atomic_write_named};
pub use checkpoint::{Checkpoint, CheckpointDir, CkptError, DEFAULT_KEEP};
pub use failpoint::Action;

/// After this many consecutive non-finite batches the trainer restores the
/// last checkpoint (or best snapshot) instead of continuing to skip.
pub const MAX_CONSECUTIVE_BAD_BATCHES: u32 = 3;

/// Bound on checkpoint restores triggered by bad batches before a phase
/// early-stops; keeps a persistently-diverging run from looping forever.
pub const MAX_BAD_BATCH_RESTORES: u32 = 2;

/// User-facing checkpoint configuration, carried inside `PromptEmConfig`.
#[derive(Debug, Clone)]
pub struct ResilienceCfg {
    /// Root checkpoint directory; phases use subdirectories of it.
    pub dir: PathBuf,
    /// Checkpoint every N optimizer steps (0 = only at phase boundaries).
    pub every: u64,
    /// Resume from the newest valid checkpoint instead of starting fresh.
    pub resume: bool,
}

/// A phase-scoped handle: one checkpoint stream (e.g. `<dir>/pretrain`)
/// plus the shared cadence/resume policy.
pub struct ResilienceCtx {
    dir: CheckpointDir,
    /// Checkpoint every N optimizer steps (0 = phase boundaries only).
    pub every: u64,
    /// Whether this run was asked to resume.
    pub resume: bool,
}

impl ResilienceCtx {
    /// Open (creating if needed) the checkpoint stream for one phase.
    pub fn new(cfg: &ResilienceCfg, phase: &str) -> io::Result<Self> {
        let dir = CheckpointDir::new(cfg.dir.join(phase), checkpoint::DEFAULT_KEEP)?;
        Ok(ResilienceCtx {
            dir,
            every: cfg.every,
            resume: cfg.resume,
        })
    }

    /// True when a periodic checkpoint is due after `steps` optimizer steps.
    pub fn due(&self, steps: u64) -> bool {
        self.every > 0 && steps > 0 && steps.is_multiple_of(self.every)
    }

    /// Save a checkpoint tagged with a monotone step/round counter.
    pub fn save(&self, tag: u64, ckpt: &Checkpoint) -> Result<PathBuf, CkptError> {
        self.dir.save(tag, ckpt)
    }

    /// Newest checkpoint that decodes cleanly, if any (corrupt files are
    /// skipped with a warning — the documented recovery for torn writes).
    pub fn load_latest(&self) -> Option<(u64, Checkpoint)> {
        self.dir.load_latest()
    }
}
