//! The checkpoint container: named sections, each CRC32-checksummed.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes   "EMCKPT01"
//! version  u32       currently 1
//! count    u64       number of sections
//! section  repeated: name_len u64, name bytes,
//!                    payload_len u64, payload bytes,
//!                    crc u32 over (name bytes ++ payload bytes)
//! ```
//!
//! Decoding validates the magic, version, every CRC, and exact
//! consumption of the input — any single-byte corruption or truncation
//! yields a typed [`CkptError`], never a silently different checkpoint
//! (covered exhaustively by the flip-every-byte test below).

use crate::atomic_io;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"EMCKPT01";
const VERSION: u32 = 1;

/// Checkpoint files kept per stream after rotation.
pub const DEFAULT_KEEP: usize = 3;

/// Why a checkpoint failed to read or write.
#[derive(Debug)]
pub enum CkptError {
    Io(io::Error),
    BadMagic,
    BadVersion(u32),
    Truncated,
    /// CRC mismatch in the named section.
    ChecksumMismatch(String),
    Malformed(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::Truncated => write!(f, "checkpoint file truncated"),
            CkptError::ChecksumMismatch(s) => write!(f, "checksum mismatch in section '{s}'"),
            CkptError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// CRC32 (IEEE 802.3, reflected), the same polynomial gzip/PNG use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An in-memory checkpoint: ordered named sections of opaque bytes.
/// Trainers serialize their state (params, optimizer moments, RNG, cursor)
/// into sections with [`crate::wire`] and hand the container to a
/// [`CheckpointDir`] for durable storage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    pub fn new() -> Self {
        Checkpoint::default()
    }

    /// Add a section (replacing any previous one with the same name).
    pub fn insert(&mut self, name: &str, payload: Vec<u8>) {
        if let Some(s) = self.sections.iter_mut().find(|(n, _)| n == name) {
            s.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Payload of the named section, if present.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// Payload of a section that must exist.
    pub fn require(&self, name: &str) -> Result<&[u8], CkptError> {
        self.get(name)
            .ok_or_else(|| CkptError::Malformed(format!("missing section '{name}'")))
    }

    /// `(name, payload length)` pairs in file order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, usize)> {
        self.sections.iter().map(|(n, p)| (n.as_str(), p.len()))
    }

    /// Serialize to the on-disk representation.
    pub fn encode(&self) -> Vec<u8> {
        let total: usize = self
            .sections
            .iter()
            .map(|(n, p)| 8 + n.len() + 8 + p.len() + 4)
            .sum();
        let mut out = Vec::with_capacity(8 + 4 + 8 + total);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u64).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            let mut crc_input = Vec::with_capacity(name.len() + payload.len());
            crc_input.extend_from_slice(name.as_bytes());
            crc_input.extend_from_slice(payload);
            out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        }
        out
    }

    /// Parse and fully validate the on-disk representation.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CkptError> {
            if n > bytes.len() - *pos {
                return Err(CkptError::Truncated);
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let take_u64 = |pos: &mut usize| -> Result<u64, CkptError> {
            let b = take(pos, 8)?;
            Ok(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))
        };

        if take(&mut pos, 8)? != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let vb = take(&mut pos, 4)?;
        let version = u32::from_le_bytes([vb[0], vb[1], vb[2], vb[3]]);
        if version != VERSION {
            return Err(CkptError::BadVersion(version));
        }
        let count = take_u64(&mut pos)?;
        let mut sections = Vec::new();
        for _ in 0..count {
            let name_len = take_u64(&mut pos)? as usize;
            let name_bytes = take(&mut pos, name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| CkptError::Malformed("non-utf8 section name".to_string()))?
                .to_string();
            let payload_len = take_u64(&mut pos)? as usize;
            let payload = take(&mut pos, payload_len)?.to_vec();
            let cb = take(&mut pos, 4)?;
            let stored = u32::from_le_bytes([cb[0], cb[1], cb[2], cb[3]]);
            let mut crc_input = Vec::with_capacity(name.len() + payload.len());
            crc_input.extend_from_slice(name.as_bytes());
            crc_input.extend_from_slice(&payload);
            if crc32(&crc_input) != stored {
                return Err(CkptError::ChecksumMismatch(name));
            }
            sections.push((name, payload));
        }
        if pos != bytes.len() {
            return Err(CkptError::Malformed(
                "trailing bytes after sections".to_string(),
            ));
        }
        Ok(Checkpoint { sections })
    }
}

/// One checkpoint stream on disk: `ckpt-<tag>.bin` files with atomic
/// writes, bounded retry, keep-last-k rotation, and newest-valid loading.
pub struct CheckpointDir {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointDir {
    /// Open the stream, creating the directory if needed.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointDir {
            dir,
            keep: keep.max(1),
        })
    }

    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn file_for(&self, tag: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{tag:010}.bin"))
    }

    /// Tagged checkpoint files present, sorted oldest → newest.
    pub fn list(&self) -> Vec<(u64, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(tag) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((tag, entry.path()));
            }
        }
        out.sort_by_key(|(tag, _)| *tag);
        out
    }

    /// Durably save a checkpoint under `tag`, then rotate old files so at
    /// most `keep` remain. The write is atomic and retried (bounded, with
    /// deterministic backoff) on transient I/O errors; a `ckpt_save` em-obs
    /// event records the outcome.
    pub fn save(&self, tag: u64, ckpt: &Checkpoint) -> Result<PathBuf, CkptError> {
        let bytes = ckpt.encode();
        let path = self.file_for(tag);
        atomic_io::write_with_retry("ckpt_write", || {
            atomic_io::atomic_write_named("ckpt_write", &path, &bytes)
        })?;
        let files = self.list();
        if files.len() > self.keep {
            for (_, old) in &files[..files.len() - self.keep] {
                let _ = std::fs::remove_file(old);
            }
        }
        em_obs::ckpt_save(
            tag,
            bytes.len() as u64,
            self.keep.min(self.list().len()) as u64,
        );
        Ok(path)
    }

    /// Newest checkpoint that decodes cleanly. Corrupt or truncated files
    /// (e.g. from an injected torn write) are skipped with a warning and
    /// the next-oldest is tried — the documented recovery policy.
    pub fn load_latest(&self) -> Option<(u64, Checkpoint)> {
        for (tag, path) in self.list().into_iter().rev() {
            match std::fs::read(&path)
                .map_err(CkptError::from)
                .and_then(|b| Checkpoint::decode(&b))
            {
                Ok(ckpt) => return Some((tag, ckpt)),
                Err(e) => {
                    em_obs::warn(format!(
                        "skipping unreadable checkpoint {}: {e}",
                        path.display()
                    ));
                }
            }
        }
        None
    }

    /// Human-readable summary of the newest (or given) checkpoint file —
    /// backs `promptem ckpt inspect`.
    pub fn inspect(path: &Path) -> Result<String, CkptError> {
        let bytes = std::fs::read(path)?;
        let ckpt = Checkpoint::decode(&bytes)?;
        let mut out = format!(
            "{}: {} bytes, version {}, {} sections (all checksums OK)\n",
            path.display(),
            bytes.len(),
            VERSION,
            ckpt.sections.len()
        );
        for (name, len) in ckpt.sections() {
            out.push_str(&format!("  {name:<12} {len:>10} bytes\n"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new();
        c.insert("params", vec![1, 2, 3, 4, 5]);
        c.insert("rng", vec![9; 32]);
        c.insert("cursor", b"epoch=3".to_vec());
        c
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        let bytes = c.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        assert_eq!(back, c);
        assert_eq!(back.get("rng").map(<[u8]>::len), Some(32));
        assert!(back.require("missing").is_err());
    }

    #[test]
    fn insert_replaces_existing_section() {
        let mut c = sample();
        c.insert("rng", vec![7; 8]);
        assert_eq!(c.get("rng"), Some(&[7u8; 8][..]));
        assert_eq!(c.sections().count(), 3);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "truncation at byte {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let c = sample();
        let bytes = c.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match Checkpoint::decode(&bad) {
                Err(_) => {}
                Ok(got) => panic!("flip at byte {i} decoded; equal to original: {}", got == c),
            }
        }
    }

    #[test]
    fn dir_saves_rotates_and_loads_latest() {
        let dir = std::env::temp_dir().join(format!("em-ckpt-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cd = CheckpointDir::new(&dir, 2).expect("open dir");
        for tag in 1..=5u64 {
            let mut c = Checkpoint::new();
            c.insert("cursor", vec![tag as u8]);
            cd.save(tag, &c).expect("save");
        }
        let files = cd.list();
        assert_eq!(files.len(), 2, "rotation keeps last k");
        assert_eq!(files[0].0, 4);
        assert_eq!(files[1].0, 5);
        let (tag, ckpt) = cd.load_latest().expect("latest");
        assert_eq!(tag, 5);
        assert_eq!(ckpt.get("cursor"), Some(&[5u8][..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_latest_falls_back_to_older() {
        let dir = std::env::temp_dir().join(format!("em-ckpt-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cd = CheckpointDir::new(&dir, 3).expect("open dir");
        for tag in [1u64, 2] {
            let mut c = Checkpoint::new();
            c.insert("cursor", vec![tag as u8]);
            cd.save(tag, &c).expect("save");
        }
        // Corrupt the newest file in place (torn write survivor).
        let newest = cd.file_for(2);
        let mut bytes = std::fs::read(&newest).expect("read");
        let cut = bytes.len() / 2;
        bytes.truncate(cut);
        std::fs::write(&newest, &bytes).expect("corrupt");
        let (tag, ckpt) = cd.load_latest().expect("fallback");
        assert_eq!(tag, 1);
        assert_eq!(ckpt.get("cursor"), Some(&[1u8][..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_summarizes_sections() {
        let dir = std::env::temp_dir().join(format!("em-ckpt-ins-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cd = CheckpointDir::new(&dir, 3).expect("open dir");
        let path = cd.save(7, &sample()).expect("save");
        let text = CheckpointDir::inspect(&path).expect("inspect");
        assert!(text.contains("3 sections"));
        assert!(text.contains("params"));
        assert!(text.contains("cursor"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
