//! Named parameter storage plus the optimizers used in the paper's setup
//! (AdamW for all LM training; plain SGD is kept for tests and baselines).

use crate::tensor::Matrix;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

struct Param {
    name: String,
    value: Matrix,
    grad: Matrix,
    /// First/second Adam moments, allocated lazily on first AdamW step.
    m: Option<Matrix>,
    v: Option<Matrix>,
    /// Frozen parameters are skipped by optimizer steps.
    frozen: bool,
}

/// Owns every trainable matrix of a model, its gradient buffer and optimizer
/// state. Cloning the store snapshots the full model (used for teacher /
/// student copies and best-on-validation checkpoints).
pub struct ParamStore {
    params: Vec<Param>,
}

impl Clone for ParamStore {
    fn clone(&self) -> Self {
        ParamStore {
            params: self
                .params
                .iter()
                .map(|p| Param {
                    name: p.name.clone(),
                    value: p.value.clone(),
                    grad: Matrix::zeros(p.grad.rows(), p.grad.cols()),
                    m: None,
                    v: None,
                    frozen: p.frozen,
                })
                .collect(),
        }
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Register a new parameter; names are for debugging and need not be
    /// unique (layers prefix them).
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.params.push(Param {
            name: name.into(),
            value,
            grad,
            m: None,
            v: None,
            frozen: false,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count (for the efficiency table).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Debug name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter's value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Mutable access to a parameter's gradient buffer.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].grad
    }

    /// Zero every gradient buffer (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            for g in p.grad.data_mut() {
                *g = 0.0;
            }
        }
    }

    /// Freeze (exclude from optimizer updates) a parameter.
    pub fn set_frozen(&mut self, id: ParamId, frozen: bool) {
        self.params[id.0].frozen = frozen;
    }

    /// Whether a parameter is excluded from optimizer updates.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.params[id.0].frozen
    }

    /// Ids of all registered parameters.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.params.len()).map(ParamId)
    }

    /// Adam moment buffers of a parameter (`None` before the first AdamW
    /// step). Exposed for checkpointing.
    pub fn moments(&self, id: ParamId) -> (Option<&Matrix>, Option<&Matrix>) {
        let p = &self.params[id.0];
        (p.m.as_ref(), p.v.as_ref())
    }

    /// Install Adam moment buffers (checkpoint restore). Shapes must match
    /// the parameter value; both moments must be present or both absent.
    pub fn set_moments(&mut self, id: ParamId, m: Option<Matrix>, v: Option<Matrix>) {
        let p = &mut self.params[id.0];
        assert_eq!(
            m.is_some(),
            v.is_some(),
            "moments must be set or cleared together"
        );
        if let (Some(m), Some(v)) = (&m, &v) {
            assert_eq!(m.shape(), p.value.shape(), "first-moment shape mismatch");
            assert_eq!(v.shape(), p.value.shape(), "second-moment shape mismatch");
        }
        p.m = m;
        p.v = v;
    }

    /// Global gradient clipping by L2 norm; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f32 = self
            .params
            .iter()
            .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        if total > max_norm && total > 0.0 {
            let scale = max_norm / total;
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= scale;
                }
            }
        }
        total
    }
}

/// Decoupled-weight-decay Adam (Loshchilov & Hutter), the optimizer PromptEM
/// uses ("We use AdamW as the optimizer for training", §5.1).
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabilizer.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    step: u64,
}

impl AdamW {
    /// Default AdamW (β₁ 0.9, β₂ 0.999, ε 1e-8, weight decay 0.01).
    pub fn new(lr: f32) -> Self {
        AdamW {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            step: 0,
        }
    }

    /// Override the weight-decay coefficient.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Restore the step counter from a checkpoint. Bias correction (and any
    /// schedule derived from [`AdamW::steps`]) depends on it, so a resumed
    /// optimizer must get the saved value back before its next step.
    pub fn set_steps(&mut self, steps: u64) {
        self.step = steps;
    }

    /// Apply one update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.step += 1;
        if em_obs::enabled() {
            use std::sync::OnceLock;
            static STEPS: OnceLock<em_obs::metrics::Counter> = OnceLock::new();
            STEPS
                .get_or_init(|| em_obs::metrics::counter("nn_optimizer_steps", &[("opt", "adamw")]))
                .inc();
        }
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for p in &mut store.params {
            if p.frozen {
                continue;
            }
            let (rows, cols) = p.value.shape();
            let m = p.m.get_or_insert_with(|| Matrix::zeros(rows, cols));
            let v = p.v.get_or_insert_with(|| Matrix::zeros(rows, cols));
            let value = p.value.data_mut();
            let grad = p.grad.data();
            let md = m.data_mut();
            let vd = v.data_mut();
            for i in 0..value.len() {
                let g = grad[i];
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * g;
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * g * g;
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                value[i] -=
                    self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * value[i]);
            }
        }
    }
}

/// Plain stochastic gradient descent (used by tests and the TDmatch* MLP).
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Plain SGD at a fixed rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Apply `w -= lr * grad` to every unfrozen parameter.
    pub fn step(&mut self, store: &mut ParamStore) {
        if em_obs::enabled() {
            use std::sync::OnceLock;
            static STEPS: OnceLock<em_obs::metrics::Counter> = OnceLock::new();
            STEPS
                .get_or_init(|| em_obs::metrics::counter("nn_optimizer_steps", &[("opt", "sgd")]))
                .inc();
        }
        for p in &mut store.params {
            if p.frozen {
                continue;
            }
            let lr = self.lr;
            let grad = p.grad.data();
            for (w, &g) in p.value.data_mut().iter_mut().zip(grad) {
                *w -= lr * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimize mean((w - t)^2) and verify convergence for both optimizers.
    fn converges(mut step: impl FnMut(&mut ParamStore)) {
        let mut store = ParamStore::new();
        let target = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let w = store.register("w", Matrix::zeros(2, 2));
        for _ in 0..2000 {
            store.zero_grads();
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let loss = tape.mse_loss(wv, &target);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            step(&mut store);
        }
        for (a, b) in store.value(w).data().iter().zip(target.data()) {
            assert!((a - b).abs() < 0.05, "no convergence: {a} vs {b}");
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.5);
        converges(move |s| opt.step(s));
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let mut opt = AdamW::new(0.05).with_weight_decay(0.0);
        converges(move |s| opt.step(s));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 4, 10.0));
        let mut opt = AdamW::new(0.1).with_weight_decay(0.5);
        // No gradient at all: only decay acts.
        for _ in 0..50 {
            store.zero_grads();
            opt.step(&mut store);
        }
        for &v in store.value(w).data() {
            assert!(
                v.abs() < 10.0 * 0.95f32.powi(40),
                "decay had no effect: {v}"
            );
        }
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 2, 1.0));
        store.set_frozen(w, true);
        store.grad_mut(w).data_mut().fill(100.0);
        let mut opt = AdamW::new(0.1);
        opt.step(&mut store);
        assert_eq!(store.value(w).data(), &[1.0, 1.0]);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::zeros(1, 3));
        store
            .grad_mut(w)
            .data_mut()
            .copy_from_slice(&[3.0, 4.0, 0.0]);
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = store
            .grad(w)
            .data()
            .iter()
            .map(|g| g * g)
            .sum::<f32>()
            .sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn moment_accessors_round_trip() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 2, 1.0));
        store.grad_mut(w).data_mut().fill(0.5);
        let mut opt = AdamW::new(0.1);
        opt.step(&mut store);
        let (m, v) = store.moments(w);
        let (m, v) = (m.cloned(), v.cloned());
        assert!(m.is_some() && v.is_some());
        let mut restored = store.clone(); // clone drops optimizer state
        assert!(restored.moments(w).0.is_none());
        restored.set_moments(w, m.clone(), v);
        assert_eq!(restored.moments(w).0, m.as_ref());
        let mut resumed = AdamW::new(0.1);
        resumed.set_steps(opt.steps());
        assert_eq!(resumed.steps(), 1);
    }

    #[test]
    fn clone_snapshots_values_but_not_grads() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(1, 2, 3.0));
        store.grad_mut(w).data_mut().fill(9.0);
        let snap = store.clone();
        assert_eq!(snap.value(w).data(), &[3.0, 3.0]);
        assert_eq!(snap.grad(w).data(), &[0.0, 0.0]);
    }
}
