//! Learning-rate schedules. The pipeline's recorded experiments use a
//! constant rate (matching the paper's fixed 2e-5); these schedules are
//! provided for larger-scale training where warmup/decay matter.

/// A learning-rate schedule: maps a 0-based step index to a rate.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// The same rate forever.
    Constant {
        /// The fixed learning rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `lr` over `warmup` steps, then constant.
    WarmupConstant {
        /// Peak learning rate.
        lr: f32,
        /// Warmup length in steps.
        warmup: u64,
    },
    /// Linear warmup, then linear decay to zero at `total` steps.
    WarmupLinearDecay {
        /// Peak learning rate.
        lr: f32,
        /// Warmup length in steps.
        warmup: u64,
        /// Step at which the rate reaches zero.
        total: u64,
    },
    /// Linear warmup, then cosine decay to `floor` at `total` steps.
    WarmupCosine {
        /// Peak learning rate.
        lr: f32,
        /// Warmup length in steps.
        warmup: u64,
        /// Step at which the floor is reached.
        total: u64,
        /// Terminal learning rate.
        floor: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::WarmupConstant { lr, warmup } => warmup_factor(step, warmup) * lr,
            LrSchedule::WarmupLinearDecay { lr, warmup, total } => {
                let w = warmup_factor(step, warmup);
                if step < warmup {
                    return w * lr;
                }
                let span = total.saturating_sub(warmup).max(1) as f32;
                let done = (step - warmup).min(total.saturating_sub(warmup)) as f32;
                lr * (1.0 - done / span).max(0.0)
            }
            LrSchedule::WarmupCosine {
                lr,
                warmup,
                total,
                floor,
            } => {
                if step < warmup {
                    return warmup_factor(step, warmup) * lr;
                }
                let span = total.saturating_sub(warmup).max(1) as f32;
                let done = (step - warmup).min(total.saturating_sub(warmup)) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * done / span).cos());
                floor + (lr - floor) * cos
            }
        }
    }

    /// Drive an [`AdamW`](crate::optim::AdamW) optimizer: set its rate for
    /// the *next* step from its internal step counter.
    pub fn apply(&self, opt: &mut crate::optim::AdamW) {
        opt.lr = self.at(opt.steps());
    }
}

fn warmup_factor(step: u64, warmup: u64) -> f32 {
    if warmup == 0 || step >= warmup {
        1.0
    } else {
        (step + 1) as f32 / warmup as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(1_000_000), 0.01);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::WarmupConstant { lr: 1.0, warmup: 4 };
        assert!((s.at(0) - 0.25).abs() < 1e-6);
        assert!((s.at(1) - 0.5).abs() < 1e-6);
        assert!((s.at(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.at(100), 1.0);
    }

    #[test]
    fn linear_decay_hits_zero_at_total() {
        let s = LrSchedule::WarmupLinearDecay {
            lr: 1.0,
            warmup: 2,
            total: 12,
        };
        assert_eq!(s.at(2), 1.0);
        assert!((s.at(7) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(12), 0.0);
        assert_eq!(s.at(99), 0.0);
    }

    #[test]
    fn cosine_decays_to_floor_smoothly() {
        let s = LrSchedule::WarmupCosine {
            lr: 1.0,
            warmup: 0,
            total: 10,
            floor: 0.1,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        let mid = s.at(5);
        assert!((mid - 0.55).abs() < 0.01, "midpoint {mid}");
        assert!((s.at(10) - 0.1).abs() < 1e-6);
        // Monotone nonincreasing after warmup.
        let mut prev = f32::INFINITY;
        for step in 0..=10 {
            let v = s.at(step);
            assert!(v <= prev + 1e-6);
            prev = v;
        }
    }

    #[test]
    fn apply_sets_optimizer_rate() {
        let mut opt = crate::optim::AdamW::new(999.0);
        let s = LrSchedule::WarmupConstant { lr: 0.5, warmup: 2 };
        s.apply(&mut opt);
        assert!((opt.lr - 0.25).abs() < 1e-6);
    }
}
