//! Binary (de)serialization of parameter values.
//!
//! The format is deliberately simple: for each parameter, its name, shape
//! and little-endian `f32` buffer. Loading requires the destination
//! [`ParamStore`] to have been built by the *same model constructor* (same
//! registration order); names and shapes are verified to catch mismatches.

use crate::optim::ParamStore;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"EMNNPAR1";

/// Write every parameter's value to `w`.
pub fn write_params(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        let m = store.value(id);
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &v in m.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read parameter values from `r` into an already-constructed store.
pub fn read_params(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let count = read_u64(r)? as usize;
    if count != store.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: file {count}, store {}",
                store.len()
            ),
        ));
    }
    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        let name_len = read_u64(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 name"))?;
        if name != store.name(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter name mismatch: file '{name}', store '{}'",
                    store.name(id)
                ),
            ));
        }
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        if (rows, cols) != store.value(id).shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for '{name}'"),
            ));
        }
        let buf = store.value_mut(id).data_mut();
        let mut bytes = vec![0u8; rows * cols * 4];
        r.read_exact(&mut bytes)?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            buf[i] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    Ok(())
}

/// Read a little-endian u64 (helper shared with higher-level formats).
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Read a length-prefixed UTF-8 string.
pub fn read_string(r: &mut impl Read) -> io::Result<String> {
    let len = read_u64(r)? as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8"))
}

/// Write a length-prefixed UTF-8 string.
pub fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u64).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    fn store_with(vals: &[f32]) -> ParamStore {
        let mut s = ParamStore::new();
        s.register("a", Matrix::from_vec(1, 2, vec![vals[0], vals[1]]));
        s.register("b", Matrix::from_vec(2, 1, vec![vals[2], vals[3]]));
        s
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = store_with(&[1.5, -2.25, 3.0, 0.125]);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = store_with(&[0.0; 4]);
        read_params(&mut dst, &mut buf.as_slice()).unwrap();
        for id in src.ids() {
            assert_eq!(src.value(id), dst.value(id));
        }
    }

    #[test]
    fn mismatched_structure_is_rejected() {
        let src = store_with(&[1.0; 4]);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();

        let mut wrong_count = ParamStore::new();
        wrong_count.register("a", Matrix::zeros(1, 2));
        assert!(read_params(&mut wrong_count, &mut buf.as_slice()).is_err());

        let mut wrong_name = ParamStore::new();
        wrong_name.register("a", Matrix::zeros(1, 2));
        wrong_name.register("x", Matrix::zeros(2, 1));
        assert!(read_params(&mut wrong_name, &mut buf.as_slice()).is_err());

        let mut wrong_shape = ParamStore::new();
        wrong_shape.register("a", Matrix::zeros(2, 2));
        wrong_shape.register("b", Matrix::zeros(2, 1));
        assert!(read_params(&mut wrong_shape, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut dst = store_with(&[0.0; 4]);
        let garbage = b"NOTMAGIC________";
        assert!(read_params(&mut dst, &mut garbage.as_slice()).is_err());
    }

    #[test]
    fn string_helpers_roundtrip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "hello world").unwrap();
        let s = read_string(&mut buf.as_slice()).unwrap();
        assert_eq!(s, "hello world");
    }
}
