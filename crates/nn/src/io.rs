//! Binary (de)serialization of parameter values.
//!
//! The format is deliberately simple: for each parameter, its name, shape
//! and little-endian `f32` buffer. Loading requires the destination
//! [`ParamStore`] to have been built by the *same model constructor* (same
//! registration order); names and shapes are verified to catch mismatches.

use crate::optim::ParamStore;
use crate::tensor::Matrix;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"EMNNPAR1";
const OPT_MAGIC: &[u8; 8] = b"EMNNOPT1";

/// Cap on a single length-prefixed field; a claimed length beyond this on
/// a stream reader is corruption, not data, and must not drive allocation.
const MAX_FIELD: usize = 1 << 20;

/// Write every parameter's value to `w`.
pub fn write_params(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name)?;
        let m = store.value(id);
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &v in m.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Read parameter values from `r` into an already-constructed store.
///
/// Loading is all-or-nothing: every section is parsed into a staging
/// buffer and validated (magic, count, each name and shape) before a
/// single value is written back. A truncated or mismatched file leaves
/// `store` exactly as it was.
pub fn read_params(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let count = read_u64(r)? as usize;
    if count != store.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: file {count}, store {}",
                store.len()
            ),
        ));
    }
    // Stage: parse and validate everything without touching the store.
    let mut staged: Vec<Vec<f32>> = Vec::with_capacity(count);
    for id in store.ids() {
        let name = read_string(r)?;
        if name != store.name(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter name mismatch: file '{name}', store '{}'",
                    store.name(id)
                ),
            ));
        }
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        if (rows, cols) != store.value(id).shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch for '{name}'"),
            ));
        }
        staged.push(read_f32s(r, rows * cols)?);
    }
    // Commit: only now does the destination change.
    for (id, values) in store.ids().collect::<Vec<_>>().into_iter().zip(staged) {
        store.value_mut(id).data_mut().copy_from_slice(&values);
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read, n: usize) -> io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Write the Adam moment buffers held in `store` (presence flag + both
/// moment matrices per parameter). The optimizer's step counter lives
/// outside the store and is serialized by the caller's cursor.
pub fn write_opt_state(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(OPT_MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for id in store.ids() {
        let (m, v) = store.moments(id);
        match (m, v) {
            (Some(m), Some(v)) => {
                w.write_all(&[1u8])?;
                for mat in [m, v] {
                    for &x in mat.data() {
                        w.write_all(&x.to_le_bytes())?;
                    }
                }
            }
            _ => w.write_all(&[0u8])?,
        }
    }
    Ok(())
}

/// Restore Adam moment buffers written by [`write_opt_state`]. Like
/// [`read_params`], this is all-or-nothing: the store's moments change
/// only after the whole stream validates. Shapes are taken from the
/// store's current values (the format stores none of its own).
pub fn read_opt_state(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != OPT_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad opt magic"));
    }
    let count = read_u64(r)? as usize;
    if count != store.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "optimizer state count mismatch: file {count}, store {}",
                store.len()
            ),
        ));
    }
    let mut staged: Vec<Option<(Vec<f32>, Vec<f32>)>> = Vec::with_capacity(count);
    for id in store.ids() {
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        match flag[0] {
            0 => staged.push(None),
            1 => {
                let n = store.value(id).len();
                let m = read_f32s(r, n)?;
                let v = read_f32s(r, n)?;
                staged.push(Some((m, v)));
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad moment presence flag {other}"),
                ));
            }
        }
    }
    for (id, entry) in store.ids().collect::<Vec<_>>().into_iter().zip(staged) {
        let (rows, cols) = store.value(id).shape();
        match entry {
            Some((m, v)) => store.set_moments(
                id,
                Some(Matrix::from_vec(rows, cols, m)),
                Some(Matrix::from_vec(rows, cols, v)),
            ),
            None => store.set_moments(id, None, None),
        }
    }
    Ok(())
}

/// Read a little-endian u64 (helper shared with higher-level formats).
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Read a length-prefixed UTF-8 string.
pub fn read_string(r: &mut impl Read) -> io::Result<String> {
    let len = read_u64(r)? as usize;
    if len > MAX_FIELD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("string length {len} exceeds limit (corrupt input?)"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8"))
}

/// Write a length-prefixed UTF-8 string.
pub fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u64).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    fn store_with(vals: &[f32]) -> ParamStore {
        let mut s = ParamStore::new();
        s.register("a", Matrix::from_vec(1, 2, vec![vals[0], vals[1]]));
        s.register("b", Matrix::from_vec(2, 1, vec![vals[2], vals[3]]));
        s
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = store_with(&[1.5, -2.25, 3.0, 0.125]);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = store_with(&[0.0; 4]);
        read_params(&mut dst, &mut buf.as_slice()).unwrap();
        for id in src.ids() {
            assert_eq!(src.value(id), dst.value(id));
        }
    }

    #[test]
    fn mismatched_structure_is_rejected() {
        let src = store_with(&[1.0; 4]);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();

        let mut wrong_count = ParamStore::new();
        wrong_count.register("a", Matrix::zeros(1, 2));
        assert!(read_params(&mut wrong_count, &mut buf.as_slice()).is_err());

        let mut wrong_name = ParamStore::new();
        wrong_name.register("a", Matrix::zeros(1, 2));
        wrong_name.register("x", Matrix::zeros(2, 1));
        assert!(read_params(&mut wrong_name, &mut buf.as_slice()).is_err());

        let mut wrong_shape = ParamStore::new();
        wrong_shape.register("a", Matrix::zeros(2, 2));
        wrong_shape.register("b", Matrix::zeros(2, 1));
        assert!(read_params(&mut wrong_shape, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn failed_read_leaves_store_untouched() {
        let src = store_with(&[1.0, 2.0, 3.0, 4.0]);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();

        let original = [9.0, 8.0, 7.0, 6.0];
        // Truncation at every prefix length must leave all values intact.
        for cut in 0..buf.len() {
            let mut dst = store_with(&original);
            assert!(
                read_params(&mut dst, &mut buf[..cut].as_ref()).is_err(),
                "prefix of {cut} bytes parsed successfully"
            );
            let got: Vec<f32> = dst
                .ids()
                .flat_map(|id| dst.value(id).data().to_vec())
                .collect();
            assert_eq!(got, original, "store mutated by truncation at {cut}");
        }

        // A late mismatch (second parameter's shape) must also be atomic.
        let mut wrong_shape = ParamStore::new();
        wrong_shape.register("a", Matrix::full(1, 2, 5.0));
        wrong_shape.register("b", Matrix::full(1, 1, 5.0));
        assert!(read_params(&mut wrong_shape, &mut buf.as_slice()).is_err());
        for id in wrong_shape.ids() {
            assert!(wrong_shape.value(id).data().iter().all(|&v| v == 5.0));
        }
    }

    #[test]
    fn opt_state_round_trips() {
        use crate::optim::AdamW;
        let mut src = store_with(&[1.0, 2.0, 3.0, 4.0]);
        for id in src.ids().collect::<Vec<_>>() {
            src.grad_mut(id).data_mut().fill(0.25);
        }
        let mut opt = AdamW::new(0.01);
        opt.step(&mut src);
        let mut buf = Vec::new();
        write_opt_state(&src, &mut buf).unwrap();

        let mut dst = src.clone(); // clone drops moments
        read_opt_state(&mut dst, &mut buf.as_slice()).unwrap();
        for id in src.ids() {
            assert_eq!(src.moments(id).0, dst.moments(id).0);
            assert_eq!(src.moments(id).1, dst.moments(id).1);
        }

        // Truncated optimizer state must not install partial moments.
        let mut partial = src.clone();
        assert!(read_opt_state(&mut partial, &mut buf[..buf.len() - 3].as_ref()).is_err());
        for id in partial.ids() {
            assert!(partial.moments(id).0.is_none());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut dst = store_with(&[0.0; 4]);
        let garbage = b"NOTMAGIC________";
        assert!(read_params(&mut dst, &mut garbage.as_slice()).is_err());
    }

    #[test]
    fn string_helpers_roundtrip() {
        let mut buf = Vec::new();
        write_string(&mut buf, "hello world").unwrap();
        let s = read_string(&mut buf.as_slice()).unwrap();
        assert_eq!(s, "hello world");
    }
}
