//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] is built per forward pass (typically one per mini-batch). Ops
//! append nodes; [`Tape::backward`] walks the node list in reverse and fills
//! per-node gradients; [`Tape::accumulate_param_grads`] folds leaf gradients
//! back into the shared [`ParamStore`](crate::optim::ParamStore).
//!
//! Model parameters enter the tape through [`Tape::param`], which caches the
//! leaf so a parameter used by many samples in one batch is materialized only
//! once.

use crate::optim::{ParamId, ParamStore};
use crate::tensor::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::opstats::{OpStatsTable, RelaxedWord};
use std::sync::OnceLock;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The node index on its tape (stable; nodes are append-only).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A structural defect caught while recording (or differentiating) a tape.
///
/// Every shape constraint an op imposes is validated at record time and
/// reported through this type, carrying the op name and the offending
/// shapes, so callers and the `em-check` graph auditor get an actionable
/// diagnostic instead of a bare `assert_eq!` abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeError {
    /// Two operand shapes are incompatible for `op`.
    ShapeMismatch {
        /// Op being recorded.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// A single operand violated an op's shape constraint.
    BadShape {
        /// Op being recorded.
        op: &'static str,
        /// The shape that was supplied.
        got: (usize, usize),
        /// What the op required, in words.
        want: &'static str,
    },
    /// A class target index is out of range for the class dimension.
    TargetOutOfRange {
        /// Op being recorded.
        op: &'static str,
        /// The offending target.
        target: usize,
        /// Number of classes (columns) available.
        classes: usize,
    },
    /// A row/column index reaches past the end of the operand.
    IndexOutOfRange {
        /// Op being recorded.
        op: &'static str,
        /// First out-of-range index.
        index: usize,
        /// Extent of the indexed dimension.
        len: usize,
    },
}

impl std::fmt::Display for TapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapeError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "tape op `{op}`: incompatible shapes {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TapeError::BadShape { op, got, want } => write!(
                f,
                "tape op `{op}`: operand is {}x{}, need {want}",
                got.0, got.1
            ),
            TapeError::TargetOutOfRange {
                op,
                target,
                classes,
            } => write!(
                f,
                "tape op `{op}`: target {target} out of {classes} classes"
            ),
            TapeError::IndexOutOfRange { op, index, len } => {
                write!(f, "tape op `{op}`: index {index} out of range 0..{len}")
            }
        }
    }
}

impl std::error::Error for TapeError {}

/// Runtime switch for the NaN/Inf sanitizer (see [`sanitize_enabled`]).
static SANITIZE_FORCE: AtomicBool = AtomicBool::new(false);

fn sanitize_env() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV
        .get_or_init(|| std::env::var("PROMPTEM_SANITIZE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// True when the backward-pass NaN/Inf sanitizer is on: either
/// `PROMPTEM_SANITIZE=1` was set in the environment or [`set_sanitize`]
/// was called (the CLI `--sanitize` flag does the latter). The `em-check`
/// auditor hooks also audit every batch instead of just the first one
/// while this is on.
pub fn sanitize_enabled() -> bool {
    // ordering: Relaxed — a lone boolean flag; readers only need to see
    // the flip eventually, and no other data is published through it.
    SANITIZE_FORCE.load(Ordering::Relaxed) || sanitize_env()
}

/// Programmatically enable the sanitizer (cannot un-set the environment
/// variable; `set_sanitize(false)` only clears a previous programmatic
/// enable).
pub fn set_sanitize(on: bool) {
    // ordering: Relaxed — see sanitize_enabled; the flag guards no data.
    SANITIZE_FORCE.store(on, Ordering::Relaxed);
}

/// Runtime switch for the op profiler (see [`op_profile_enabled`]).
static OP_PROFILE_FORCE: AtomicBool = AtomicBool::new(false);

fn op_profile_env() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("PROMPTEM_OP_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// True when the op-level profiler is on: either `PROMPTEM_OP_PROFILE=1`
/// was set in the environment or [`set_op_profile`] was called (the CLI
/// `--op-profile` flag does the latter). While on, every op recording and
/// every backward visit adds into a process-global table of relaxed
/// atomics; [`flush_op_stats`] drains that table into `op_stats` events.
/// The disabled path is a single relaxed load per op — no clock reads, no
/// extra tape nodes, no RNG perturbation, so profiled and unprofiled runs
/// take identical optimizer steps.
pub fn op_profile_enabled() -> bool {
    // ordering: Relaxed — a lone boolean flag; a racing reader at worst
    // attributes one op to the wrong side of the flip, and the table's
    // counters are themselves single atomic RMWs.
    OP_PROFILE_FORCE.load(Ordering::Relaxed) || op_profile_env()
}

/// Programmatically enable the op profiler (cannot un-set the environment
/// variable; `set_op_profile(false)` only clears a previous programmatic
/// enable).
pub fn set_op_profile(on: bool) {
    // ordering: Relaxed — see op_profile_enabled; the flag guards no data.
    OP_PROFILE_FORCE.store(on, Ordering::Relaxed);
}

/// The profiler's accumulation table, one slot per op in
/// [`em_obs::names::ALL_OP_NAMES`] order (`Op::index` pins the
/// correspondence; a test asserts it against `Op::name`). The swap-drain
/// algorithm lives in [`crate::opstats`] behind the `StatWord` shim so
/// the `em-sched` interleaving checker can model-check the identical
/// code path (`crates/nn/tests/sched_opstats.rs`).
static OP_TABLE: OpStatsTable<RelaxedWord, { em_obs::names::ALL_OP_NAMES.len() }> =
    OpStatsTable::new_relaxed();

/// Forward-timing handle opened at recording-method entry when the
/// profiler is on; [`Tape::push_timed`] closes it once the result exists.
struct OpTimer {
    sw: em_obs::Stopwatch,
    bytes0: usize,
}

impl OpTimer {
    #[inline]
    fn start() -> Option<OpTimer> {
        if !op_profile_enabled() {
            return None;
        }
        Some(OpTimer {
            sw: em_obs::Stopwatch::new(),
            bytes0: em_obs::alloc::current_bytes(),
        })
    }

    fn finish(self, op_idx: usize, elems: usize) {
        let grown = em_obs::alloc::current_bytes().saturating_sub(self.bytes0);
        OP_TABLE.record_fwd(
            op_idx,
            (self.sw.secs() * 1e9) as u64,
            elems as u64,
            grown as u64,
        );
    }
}

/// Drain the op-profiler table: emit one `op_stats` event per op with
/// nonzero activity since the previous flush, then reset the counters.
/// Call at a stage boundary while the owning span is still open so the
/// totals nest under that phase in the trace. No-op when the profiler is
/// off.
pub fn flush_op_stats() {
    if !op_profile_enabled() {
        return;
    }
    for (i, name) in em_obs::names::ALL_OP_NAMES.iter().enumerate() {
        let row = OP_TABLE.drain(i);
        if row.is_empty() {
            continue;
        }
        em_obs::op_stats(
            name,
            row.fwd_calls,
            row.fwd_ns / 1000,
            row.bwd_calls,
            row.bwd_ns / 1000,
            row.elems,
            row.bytes,
        );
    }
}

enum Op {
    /// Constant or parameter leaf. `param` is set when the leaf mirrors a
    /// [`ParamStore`] entry and should receive gradient at the end.
    Leaf,
    Matmul(Var, Var),
    Add(Var, Var),
    /// `a (R,C) + broadcast of b (1,C)` over rows.
    AddRowBroadcast(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    /// Adds a constant matrix (no gradient through the constant); used for
    /// additive attention masks.
    AddConst(Var),
    /// Identity forward; backward multiplies the gradient by `-lambda`
    /// (the gradient-reversal layer of DANN-style domain adaptation).
    GradReverse(Var, f32),
    Transpose(Var),
    Tanh(Var),
    Sigmoid(Var),
    Gelu(Var),
    Relu(Var),
    /// Row-wise softmax; caches output for the backward pass.
    SoftmaxRows(Var),
    /// Layer normalization over each row with learnable gain/bias (1,C).
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        normed: Matrix,
        inv_std: Vec<f32>,
    },
    /// Select rows of `src` by index; backward scatter-adds.
    GatherRows {
        src: Var,
        idx: Vec<usize>,
    },
    /// Inverted dropout; `mask` holds 0.0 or `1/(1-p)` per element.
    Dropout {
        x: Var,
        mask: Matrix,
    },
    ConcatRows(Vec<Var>),
    ConcatCols(Vec<Var>),
    SliceRows {
        x: Var,
        start: usize,
    },
    SliceCols {
        x: Var,
        start: usize,
    },
    /// Mean over rows, producing (1,C).
    MeanRows(Var),
    /// Mean of every element, producing a scalar.
    MeanAll(Var),
    /// Fused softmax + negative log likelihood, mean over rows. Caches probs.
    CrossEntropy {
        logits: Var,
        targets: Vec<usize>,
        probs: Matrix,
    },
    /// Mean squared error against a constant target.
    MseLoss {
        pred: Var,
        target: Matrix,
    },
    /// Mean negative log likelihood over rows of an already-normalized
    /// probability matrix (used by verbalizer losses, where class
    /// probabilities are averages of word probabilities — Eq. 1 of the
    /// PromptEM paper).
    NllProbs {
        probs: Var,
        targets: Vec<usize>,
    },
}

impl Op {
    /// Static name of the op, used by diagnostics and telemetry.
    fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Matmul(..) => "matmul",
            Op::Add(..) => "add",
            Op::AddRowBroadcast(..) => "add_row_broadcast",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Scale(..) => "scale",
            Op::AddConst(..) => "add_const",
            Op::GradReverse(..) => "grad_reverse",
            Op::Transpose(..) => "transpose",
            Op::Tanh(..) => "tanh",
            Op::Sigmoid(..) => "sigmoid",
            Op::Gelu(..) => "gelu",
            Op::Relu(..) => "relu",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::LayerNorm { .. } => "layer_norm",
            Op::GatherRows { .. } => "gather_rows",
            Op::Dropout { .. } => "dropout",
            Op::ConcatRows(..) => "concat_rows",
            Op::ConcatCols(..) => "concat_cols",
            Op::SliceRows { .. } => "slice_rows",
            Op::SliceCols { .. } => "slice_cols",
            Op::MeanRows(..) => "mean_rows",
            Op::MeanAll(..) => "mean_all",
            Op::CrossEntropy { .. } => "cross_entropy",
            Op::MseLoss { .. } => "mse_loss",
            Op::NllProbs { .. } => "nll_probs",
        }
    }

    /// The op's slot in the profiler table — its position in
    /// [`em_obs::names::ALL_OP_NAMES`] (a test pins the correspondence).
    fn index(&self) -> usize {
        match self {
            Op::Leaf => 0,
            Op::Matmul(..) => 1,
            Op::Add(..) => 2,
            Op::AddRowBroadcast(..) => 3,
            Op::Sub(..) => 4,
            Op::Mul(..) => 5,
            Op::Scale(..) => 6,
            Op::AddConst(..) => 7,
            Op::GradReverse(..) => 8,
            Op::Transpose(..) => 9,
            Op::Tanh(..) => 10,
            Op::Sigmoid(..) => 11,
            Op::Gelu(..) => 12,
            Op::Relu(..) => 13,
            Op::SoftmaxRows(..) => 14,
            Op::LayerNorm { .. } => 15,
            Op::GatherRows { .. } => 16,
            Op::Dropout { .. } => 17,
            Op::ConcatRows(..) => 18,
            Op::ConcatCols(..) => 19,
            Op::SliceRows { .. } => 20,
            Op::SliceCols { .. } => 21,
            Op::MeanRows(..) => 22,
            Op::MeanAll(..) => 23,
            Op::CrossEntropy { .. } => 24,
            Op::MseLoss { .. } => 25,
            Op::NllProbs { .. } => 26,
        }
    }

    /// The vars this op reads (its graph predecessors).
    fn inputs(&self) -> Vec<Var> {
        match self {
            Op::Leaf => Vec::new(),
            Op::Matmul(a, b)
            | Op::Add(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b) => vec![*a, *b],
            Op::Scale(a, _)
            | Op::AddConst(a)
            | Op::GradReverse(a, _)
            | Op::Transpose(a)
            | Op::Tanh(a)
            | Op::Sigmoid(a)
            | Op::Gelu(a)
            | Op::Relu(a)
            | Op::SoftmaxRows(a)
            | Op::MeanRows(a)
            | Op::MeanAll(a) => vec![*a],
            Op::LayerNorm { x, gamma, beta, .. } => vec![*x, *gamma, *beta],
            Op::GatherRows { src, .. } => vec![*src],
            Op::Dropout { x, .. } => vec![*x],
            Op::ConcatRows(parts) | Op::ConcatCols(parts) => parts.clone(),
            Op::SliceRows { x, .. } | Op::SliceCols { x, .. } => vec![*x],
            Op::CrossEntropy { logits, .. } => vec![*logits],
            Op::MseLoss { pred, .. } => vec![*pred],
            Op::NllProbs { probs, .. } => vec![*probs],
        }
    }
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A single-use computation graph.
pub struct Tape {
    nodes: Vec<Node>,
    param_cache: HashMap<ParamId, Var>,
    /// When false, `dropout` is the identity (inference mode).
    pub train: bool,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// A fresh training-mode tape (dropout active).
    pub fn new() -> Self {
        Tape {
            nodes: Vec::with_capacity(256),
            param_cache: HashMap::new(),
            train: true,
        }
    }

    /// A tape whose dropout layers are disabled (deterministic inference).
    pub fn inference() -> Self {
        let mut t = Self::new();
        t.train = false;
        t
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        NODES_PUSHED.with(|c| c.set(c.get() + 1));
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// [`Tape::push`] plus op-profiler accounting. `timer` was started at
    /// the recording method's entry (before the forward compute); `None`
    /// when the profiler is off, in which case this is exactly `push`.
    fn push_timed(&mut self, timer: Option<OpTimer>, value: Matrix, op: Op) -> Var {
        if let Some(t) = timer {
            t.finish(op.index(), value.len());
        }
        self.push(value, op)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of `v` after [`Tape::backward`]; zeros if unused.
    pub fn grad(&self, v: Var) -> Matrix {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.nodes[v.0].value.shape();
                Matrix::zeros(r, c)
            }
        }
    }

    // ---- graph topology (read-only; consumed by the em-check auditor) ----

    /// Static name of the op that produced `v`.
    pub fn op_name(&self, v: Var) -> &'static str {
        self.nodes[v.0].op.name()
    }

    /// The vars `v` was computed from (empty for leaves).
    pub fn inputs(&self, v: Var) -> Vec<Var> {
        self.nodes[v.0].op.inputs()
    }

    /// Forward shape of `v`.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// All recorded vars, in record order.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.nodes.len()).map(Var)
    }

    /// True when `v` is a leaf (constant or parameter mirror).
    pub fn is_leaf(&self, v: Var) -> bool {
        matches!(self.nodes[v.0].op, Op::Leaf)
    }

    /// Every parameter leaf on the tape, sorted by [`ParamId`] so walks are
    /// deterministic.
    pub fn param_leaves(&self) -> Vec<(ParamId, Var)> {
        let mut out: Vec<(ParamId, Var)> = self.param_cache.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    // ---- op recording ----

    /// Insert a constant leaf (no gradient flows out of the tape).
    pub fn constant(&mut self, value: Matrix) -> Var {
        let prof = OpTimer::start();
        self.push_timed(prof, value, Op::Leaf)
    }

    /// Insert (or reuse) a leaf mirroring parameter `id` from `store`.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.param_cache.get(&id) {
            return v;
        }
        let prof = OpTimer::start();
        let value = store.value(id).clone();
        let v = self.push_timed(prof, value, Op::Leaf);
        self.param_cache.insert(id, v);
        v
    }

    /// Unwrap a record-time result; the panic message is the structured
    /// [`TapeError`] rendering, so even the infallible entry points abort
    /// with the op name and both shapes.
    #[track_caller]
    fn recorded(r: Result<Var, TapeError>) -> Var {
        match r {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Tape::recorded`] for unit-returning entry points.
    #[track_caller]
    fn recorded_unit(r: Result<(), TapeError>) {
        if let Err(e) = r {
            panic!("{e}")
        }
    }

    fn same_shape(&self, op: &'static str, a: Var, b: Var) -> Result<(), TapeError> {
        let (la, lb) = (self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape());
        if la != lb {
            return Err(TapeError::ShapeMismatch {
                op,
                lhs: la,
                rhs: lb,
            });
        }
        Ok(())
    }

    /// Matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        Self::recorded(self.try_matmul(a, b))
    }

    /// Shape-checked [`Tape::matmul`].
    pub fn try_matmul(&mut self, a: Var, b: Var) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let (la, lb) = (self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape());
        if la.1 != lb.0 {
            return Err(TapeError::ShapeMismatch {
                op: "matmul",
                lhs: la,
                rhs: lb,
            });
        }
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        Ok(self.push_timed(prof, value, Op::Matmul(a, b)))
    }

    /// Elementwise sum (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        Self::recorded(self.try_add(a, b))
    }

    /// Shape-checked [`Tape::add`].
    pub fn try_add(&mut self, a: Var, b: Var) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        self.same_shape("add", a, b)?;
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        Ok(self.push_timed(prof, value, Op::Add(a, b)))
    }

    /// `a + b` where `b` is a (1,C) row broadcast over the rows of `a`.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        Self::recorded(self.try_add_row_broadcast(a, b))
    }

    /// Shape-checked [`Tape::add_row_broadcast`].
    pub fn try_add_row_broadcast(&mut self, a: Var, b: Var) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let (la, lb) = (self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape());
        if lb.0 != 1 {
            return Err(TapeError::BadShape {
                op: "add_row_broadcast",
                got: lb,
                want: "a (1,C) row vector",
            });
        }
        if la.1 != lb.1 {
            return Err(TapeError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: la,
                rhs: lb,
            });
        }
        let am = &self.nodes[a.0].value;
        let bm = &self.nodes[b.0].value;
        let mut value = am.clone();
        for r in 0..value.rows() {
            for (v, &x) in value.row_mut(r).iter_mut().zip(bm.row(0)) {
                *v += x;
            }
        }
        Ok(self.push_timed(prof, value, Op::AddRowBroadcast(a, b)))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        Self::recorded(self.try_sub(a, b))
    }

    /// Shape-checked [`Tape::sub`].
    pub fn try_sub(&mut self, a: Var, b: Var) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        self.same_shape("sub", a, b)?;
        let value = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        Ok(self.push_timed(prof, value, Op::Sub(a, b)))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        Self::recorded(self.try_mul(a, b))
    }

    /// Shape-checked [`Tape::mul`].
    pub fn try_mul(&mut self, a: Var, b: Var) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        self.same_shape("mul", a, b)?;
        let value = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        Ok(self.push_timed(prof, value, Op::Mul(a, b)))
    }

    /// Multiply every element by the constant `c`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.scale(c);
        self.push_timed(prof, value, Op::Scale(a, c))
    }

    /// Add a constant matrix elementwise (no gradient to the constant).
    pub fn add_const(&mut self, a: Var, k: &Matrix) -> Var {
        Self::recorded(self.try_add_const(a, k))
    }

    /// Shape-checked [`Tape::add_const`].
    pub fn try_add_const(&mut self, a: Var, k: &Matrix) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let la = self.nodes[a.0].value.shape();
        if la != k.shape() {
            return Err(TapeError::ShapeMismatch {
                op: "add_const",
                lhs: la,
                rhs: k.shape(),
            });
        }
        let value = self.nodes[a.0].value.add(k);
        Ok(self.push_timed(prof, value, Op::AddConst(a)))
    }

    /// Gradient-reversal layer: forward identity, backward `-lambda * g`.
    pub fn grad_reverse(&mut self, a: Var, lambda: f32) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.clone();
        self.push_timed(prof, value, Op::GradReverse(a, lambda))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.transpose();
        self.push_timed(prof, value, Op::Transpose(a))
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.map(f32::tanh);
        self.push_timed(prof, value, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push_timed(prof, value, Op::Sigmoid(a))
    }

    /// Elementwise GELU (tanh approximation, as in BERT).
    pub fn gelu(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.map(gelu);
        self.push_timed(prof, value, Op::Gelu(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push_timed(prof, value, Op::Relu(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[a.0].value.softmax_rows();
        self.push_timed(prof, value, Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalization. `gamma` and `beta` must be (1,C).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        Self::recorded(self.try_layer_norm(x, gamma, beta, eps))
    }

    /// Shape-checked [`Tape::layer_norm`].
    pub fn try_layer_norm(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    ) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let xm = self.nodes[x.0].value.clone();
        let (rows, cols) = xm.shape();
        for v in [gamma, beta] {
            let shape = self.nodes[v.0].value.shape();
            if shape != (1, cols) {
                return Err(TapeError::ShapeMismatch {
                    op: "layer_norm",
                    lhs: (rows, cols),
                    rhs: shape,
                });
            }
        }
        let gm = &self.nodes[gamma.0].value;
        let bm = &self.nodes[beta.0].value;
        let mut normed = Matrix::zeros(rows, cols);
        let mut inv_std = Vec::with_capacity(rows);
        let mut value = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let row = xm.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std.push(istd);
            for (c, &xv) in row.iter().enumerate() {
                let n = (xv - mean) * istd;
                normed.set(r, c, n);
                value.set(r, c, n * gm.get(0, c) + bm.get(0, c));
            }
        }
        Ok(self.push_timed(
            prof,
            value,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                normed,
                inv_std,
            },
        ))
    }

    /// Select rows of `src` by `idx` (duplicates allowed).
    pub fn gather_rows(&mut self, src: Var, idx: &[usize]) -> Var {
        Self::recorded(self.try_gather_rows(src, idx))
    }

    /// Shape-checked [`Tape::gather_rows`].
    pub fn try_gather_rows(&mut self, src: Var, idx: &[usize]) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let rows = self.nodes[src.0].value.rows();
        if let Some(&bad) = idx.iter().find(|&&i| i >= rows) {
            return Err(TapeError::IndexOutOfRange {
                op: "gather_rows",
                index: bad,
                len: rows,
            });
        }
        let value = self.nodes[src.0].value.gather_rows(idx);
        Ok(self.push_timed(
            prof,
            value,
            Op::GatherRows {
                src,
                idx: idx.to_vec(),
            },
        ))
    }

    /// Inverted dropout with keep-probability `1-p`. Identity when the tape
    /// is in inference mode or `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut impl rand::Rng) -> Var {
        if !self.train || p <= 0.0 {
            return x;
        }
        let prof = OpTimer::start();
        assert!(p < 1.0, "dropout probability must be < 1");
        let (rows, cols) = self.nodes[x.0].value.shape();
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let mask = Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let value = self.nodes[x.0].value.hadamard(&mask);
        self.push_timed(prof, value, Op::Dropout { x, mask })
    }

    /// Stack vars vertically (equal column counts).
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        Self::recorded(self.try_concat_rows(parts))
    }

    /// Shape-checked [`Tape::concat_rows`].
    pub fn try_concat_rows(&mut self, parts: &[Var]) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        if let [first, rest @ ..] = parts {
            let want = self.nodes[first.0].value.cols();
            for p in rest {
                let shape = self.nodes[p.0].value.shape();
                if shape.1 != want {
                    return Err(TapeError::ShapeMismatch {
                        op: "concat_rows",
                        lhs: self.nodes[first.0].value.shape(),
                        rhs: shape,
                    });
                }
            }
        }
        let mats: Vec<&Matrix> = parts.iter().map(|v| &self.nodes[v.0].value).collect();
        let value = Matrix::vstack(&mats);
        Ok(self.push_timed(prof, value, Op::ConcatRows(parts.to_vec())))
    }

    /// Stack vars horizontally (equal row counts).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        Self::recorded(self.try_concat_cols(parts))
    }

    /// Shape-checked [`Tape::concat_cols`].
    pub fn try_concat_cols(&mut self, parts: &[Var]) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        if let [first, rest @ ..] = parts {
            let want = self.nodes[first.0].value.rows();
            for p in rest {
                let shape = self.nodes[p.0].value.shape();
                if shape.0 != want {
                    return Err(TapeError::ShapeMismatch {
                        op: "concat_cols",
                        lhs: self.nodes[first.0].value.shape(),
                        rhs: shape,
                    });
                }
            }
        }
        let mats: Vec<&Matrix> = parts.iter().map(|v| &self.nodes[v.0].value).collect();
        let value = Matrix::hstack(&mats);
        Ok(self.push_timed(prof, value, Op::ConcatCols(parts.to_vec())))
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        Self::recorded(self.try_slice_rows(x, start, len))
    }

    /// Shape-checked [`Tape::slice_rows`].
    pub fn try_slice_rows(&mut self, x: Var, start: usize, len: usize) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let rows = self.nodes[x.0].value.rows();
        if start + len > rows {
            return Err(TapeError::IndexOutOfRange {
                op: "slice_rows",
                index: start + len,
                len: rows,
            });
        }
        let value = self.nodes[x.0].value.slice_rows(start, len);
        Ok(self.push_timed(prof, value, Op::SliceRows { x, start }))
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        Self::recorded(self.try_slice_cols(x, start, len))
    }

    /// Shape-checked [`Tape::slice_cols`].
    pub fn try_slice_cols(&mut self, x: Var, start: usize, len: usize) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let cols = self.nodes[x.0].value.cols();
        if start + len > cols {
            return Err(TapeError::IndexOutOfRange {
                op: "slice_cols",
                index: start + len,
                len: cols,
            });
        }
        let value = self.nodes[x.0].value.slice_cols(start, len);
        Ok(self.push_timed(prof, value, Op::SliceCols { x, start }))
    }

    /// Mean over rows, producing a `(1, C)` row.
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.nodes[x.0].value.mean_rows();
        self.push_timed(prof, value, Op::MeanRows(x))
    }

    /// Mean of every element, producing a scalar var.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let prof = OpTimer::start();
        let m = &self.nodes[x.0].value;
        let value = Matrix::scalar(m.sum() / m.len() as f32);
        self.push_timed(prof, value, Op::MeanAll(x))
    }

    /// Validate a (matrix, class-target list) pairing for a loss op.
    fn check_targets(&self, op: &'static str, m: Var, targets: &[usize]) -> Result<(), TapeError> {
        let shape = self.nodes[m.0].value.shape();
        if shape.0 != targets.len() {
            return Err(TapeError::BadShape {
                op,
                got: shape,
                want: "one row per target",
            });
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= shape.1) {
            return Err(TapeError::TargetOutOfRange {
                op,
                target: bad,
                classes: shape.1,
            });
        }
        Ok(())
    }

    /// Mean cross-entropy of row-wise softmax(logits) against integer
    /// `targets`. Returns a scalar var.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        Self::recorded(self.try_cross_entropy(logits, targets))
    }

    /// Shape-checked [`Tape::cross_entropy`].
    pub fn try_cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        self.check_targets("cross_entropy", logits, targets)?;
        let lm = &self.nodes[logits.0].value;
        let probs = lm.softmax_rows();
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= targets.len() as f32;
        Ok(self.push_timed(
            prof,
            Matrix::scalar(loss),
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        ))
    }

    /// Mean negative log likelihood of already-normalized probabilities:
    /// `-(1/n) Σ log probs[r][targets[r]]`. Scalar var.
    pub fn nll_probs(&mut self, probs: Var, targets: &[usize]) -> Var {
        Self::recorded(self.try_nll_probs(probs, targets))
    }

    /// Shape-checked [`Tape::nll_probs`].
    pub fn try_nll_probs(&mut self, probs: Var, targets: &[usize]) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        self.check_targets("nll_probs", probs, targets)?;
        let pm = &self.nodes[probs.0].value;
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            loss -= pm.get(r, t).max(1e-12).ln();
        }
        loss /= targets.len() as f32;
        Ok(self.push_timed(
            prof,
            Matrix::scalar(loss),
            Op::NllProbs {
                probs,
                targets: targets.to_vec(),
            },
        ))
    }

    /// Mean squared error against a constant target matrix. Scalar var.
    pub fn mse_loss(&mut self, pred: Var, target: &Matrix) -> Var {
        Self::recorded(self.try_mse_loss(pred, target))
    }

    /// Shape-checked [`Tape::mse_loss`].
    pub fn try_mse_loss(&mut self, pred: Var, target: &Matrix) -> Result<Var, TapeError> {
        let prof = OpTimer::start();
        let pm = &self.nodes[pred.0].value;
        if pm.shape() != target.shape() {
            return Err(TapeError::ShapeMismatch {
                op: "mse_loss",
                lhs: pm.shape(),
                rhs: target.shape(),
            });
        }
        let diff = pm.sub(target);
        let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / pm.len() as f32;
        Ok(self.push_timed(
            prof,
            Matrix::scalar(loss),
            Op::MseLoss {
                pred,
                target: target.clone(),
            },
        ))
    }

    fn add_grad(&mut self, v: Var, g: Matrix) {
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Run reverse-mode differentiation from scalar `loss`.
    pub fn backward(&mut self, loss: Var) {
        Self::recorded_unit(self.try_backward(loss))
    }

    /// Shape-checked [`Tape::backward`]: fails if `loss` is not scalar.
    pub fn try_backward(&mut self, loss: Var) -> Result<(), TapeError> {
        // Timing is telemetry-gated so the hot path stays free of clock
        // reads when no sink is active.
        let timed = em_obs::Stopwatch::if_enabled();
        let shape = self.nodes[loss.0].value.shape();
        if shape != (1, 1) {
            return Err(TapeError::BadShape {
                op: "backward",
                got: shape,
                want: "a scalar (1x1) loss",
            });
        }
        let sanitize = sanitize_enabled();
        let profiling = op_profile_enabled();
        self.nodes[loss.0].grad = Some(Matrix::scalar(1.0));
        for i in (0..=loss.0).rev() {
            let g = match self.nodes[i].grad.take() {
                Some(g) => g,
                None => continue,
            };
            if sanitize {
                self.sanitize_node(i, Some(&g));
            }
            if profiling {
                let sw = em_obs::Stopwatch::new();
                let idx = self.nodes[i].op.index();
                self.backprop_node(i, &g);
                OP_TABLE.record_bwd(idx, (sw.secs() * 1e9) as u64);
            } else {
                self.backprop_node(i, &g);
            }
            self.nodes[i].grad = Some(g);
        }
        if let Some(sw) = timed {
            use std::sync::OnceLock;
            static BACKWARD_SECS: OnceLock<em_obs::metrics::Histogram> = OnceLock::new();
            BACKWARD_SECS
                .get_or_init(|| em_obs::metrics::histogram("nn_tape_backward_secs", &[]))
                .record(sw.secs());
        }
        // Graph-size counters (reports divide these by optimizer steps to
        // explain per-step cost). Kept outside the telemetry gate: two
        // relaxed atomic adds, and counters must agree with step counts.
        static TAPE_NODES: std::sync::OnceLock<em_obs::metrics::Counter> =
            std::sync::OnceLock::new();
        static TAPE_PARAM_LEAVES: std::sync::OnceLock<em_obs::metrics::Counter> =
            std::sync::OnceLock::new();
        TAPE_NODES
            .get_or_init(|| em_obs::metrics::counter("nn_tape_nodes", &[]))
            .add(self.nodes.len() as u64);
        TAPE_PARAM_LEAVES
            .get_or_init(|| em_obs::metrics::counter("nn_tape_param_leaves", &[]))
            .add(self.param_cache.len() as u64);
        Ok(())
    }

    /// Check one node's value (and, if present, gradient) buffers for
    /// NaN/Inf and emit a `non_finite` event per bad buffer. Returns true
    /// when everything is finite.
    fn sanitize_node(&self, i: usize, grad: Option<&Matrix>) -> bool {
        fn count_bad(m: &Matrix) -> u64 {
            m.data().iter().filter(|x| !x.is_finite()).count() as u64
        }
        let node = &self.nodes[i];
        let mut clean = true;
        let bad = count_bad(&node.value);
        if bad > 0 {
            clean = false;
            em_obs::non_finite(
                node.op.name(),
                i as u64,
                "value",
                bad,
                node.value.len() as u64,
            );
        }
        if let Some(g) = grad {
            let bad = count_bad(g);
            if bad > 0 {
                clean = false;
                em_obs::non_finite(node.op.name(), i as u64, "grad", bad, g.len() as u64);
            }
        }
        clean
    }

    /// Sanitizer sweep over every recorded value buffer (no gradients
    /// required) — the forward-pass half of `PROMPTEM_SANITIZE=1`. Returns
    /// the number of nodes with at least one non-finite element.
    pub fn sanitize_values(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&i| !self.sanitize_node(i, None))
            .count()
    }

    fn backprop_node(&mut self, i: usize, g: &Matrix) {
        // Split borrows: read the op by pointer, mutate grads via add_grad.
        // Ops are cheap to match; values needed for backward are cloned or
        // recomputed locally.
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
        match &op {
            Op::Leaf => {}
            Op::Matmul(a, b) => {
                let (a, b) = (*a, *b);
                let da = g.matmul_nt(&self.nodes[b.0].value);
                let db = self.nodes[a.0].value.matmul_tn(g);
                self.add_grad(a, da);
                self.add_grad(b, db);
            }
            Op::Add(a, b) => {
                self.add_grad(*a, g.clone());
                self.add_grad(*b, g.clone());
            }
            Op::AddRowBroadcast(a, b) => {
                self.add_grad(*a, g.clone());
                // Sum over rows into a (1,C) gradient.
                let mut db = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += x;
                    }
                }
                self.add_grad(*b, db);
            }
            Op::Sub(a, b) => {
                self.add_grad(*a, g.clone());
                self.add_grad(*b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                let da = g.hadamard(&self.nodes[b.0].value);
                let db = g.hadamard(&self.nodes[a.0].value);
                self.add_grad(a, da);
                self.add_grad(b, db);
            }
            Op::Scale(a, c) => self.add_grad(*a, g.scale(*c)),
            Op::GradReverse(a, lambda) => self.add_grad(*a, g.scale(-*lambda)),
            Op::Transpose(a) => self.add_grad(*a, g.transpose()),
            Op::AddConst(a) => self.add_grad(*a, g.clone()),
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let da = Matrix::from_fn(y.rows(), y.cols(), |r, c| {
                    let t = y.get(r, c);
                    g.get(r, c) * (1.0 - t * t)
                });
                self.add_grad(*a, da);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let da = Matrix::from_fn(y.rows(), y.cols(), |r, c| {
                    let s = y.get(r, c);
                    g.get(r, c) * s * (1.0 - s)
                });
                self.add_grad(*a, da);
            }
            Op::Gelu(a) => {
                let x = &self.nodes[a.0].value;
                let da = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
                    g.get(r, c) * gelu_dx(x.get(r, c))
                });
                self.add_grad(*a, da);
            }
            Op::Relu(a) => {
                let x = &self.nodes[a.0].value;
                let da = Matrix::from_fn(x.rows(), x.cols(), |r, c| {
                    if x.get(r, c) > 0.0 {
                        g.get(r, c)
                    } else {
                        0.0
                    }
                });
                self.add_grad(*a, da);
            }
            Op::SoftmaxRows(a) => {
                let y = &self.nodes[i].value;
                let mut da = Matrix::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let dot: f32 = y.row(r).iter().zip(g.row(r)).map(|(a, b)| a * b).sum();
                    for c in 0..y.cols() {
                        da.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                self.add_grad(*a, da);
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                normed,
                inv_std,
            } => {
                let gm = self.nodes[gamma.0].value.clone();
                let (rows, cols) = normed.shape();
                let mut dx = Matrix::zeros(rows, cols);
                let mut dgamma = Matrix::zeros(1, cols);
                let mut dbeta = Matrix::zeros(1, cols);
                for (r, &istd) in inv_std.iter().enumerate() {
                    // dy-hat = g * gamma; standard layernorm backward per row.
                    let mut dyh = vec![0.0f32; cols];
                    for (c, d) in dyh.iter_mut().enumerate() {
                        let gv = g.get(r, c);
                        *d = gv * gm.get(0, c);
                        dgamma.row_mut(0)[c] += gv * normed.get(r, c);
                        dbeta.row_mut(0)[c] += gv;
                    }
                    let mean_dyh = dyh.iter().sum::<f32>() / cols as f32;
                    let mean_dyh_n = dyh
                        .iter()
                        .enumerate()
                        .map(|(c, &d)| d * normed.get(r, c))
                        .sum::<f32>()
                        / cols as f32;
                    for (c, &d) in dyh.iter().enumerate() {
                        let n = normed.get(r, c);
                        dx.set(r, c, istd * (d - mean_dyh - n * mean_dyh_n));
                    }
                }
                self.add_grad(*x, dx);
                self.add_grad(*gamma, dgamma);
                self.add_grad(*beta, dbeta);
            }
            Op::GatherRows { src, idx } => {
                let (rows, cols) = self.nodes[src.0].value.shape();
                let mut da = Matrix::zeros(rows, cols);
                for (out_r, &src_r) in idx.iter().enumerate() {
                    for (o, &x) in da.row_mut(src_r).iter_mut().zip(g.row(out_r)) {
                        *o += x;
                    }
                }
                self.add_grad(*src, da);
            }
            Op::Dropout { x, mask } => self.add_grad(*x, g.hadamard(mask)),
            Op::ConcatRows(parts) => {
                let mut start = 0;
                for &p in parts {
                    let rows = self.nodes[p.0].value.rows();
                    self.add_grad(p, g.slice_rows(start, rows));
                    start += rows;
                }
            }
            Op::ConcatCols(parts) => {
                let mut start = 0;
                for &p in parts {
                    let cols = self.nodes[p.0].value.cols();
                    self.add_grad(p, g.slice_cols(start, cols));
                    start += cols;
                }
            }
            Op::SliceRows { x, start } => {
                let (rows, cols) = self.nodes[x.0].value.shape();
                let mut da = Matrix::zeros(rows, cols);
                for r in 0..g.rows() {
                    da.row_mut(start + r).copy_from_slice(g.row(r));
                }
                self.add_grad(*x, da);
            }
            Op::SliceCols { x, start } => {
                let (rows, cols) = self.nodes[x.0].value.shape();
                let mut da = Matrix::zeros(rows, cols);
                for r in 0..g.rows() {
                    da.row_mut(r)[*start..start + g.cols()].copy_from_slice(g.row(r));
                }
                self.add_grad(*x, da);
            }
            Op::MeanRows(x) => {
                let rows = self.nodes[x.0].value.rows();
                let inv = 1.0 / rows as f32;
                let da = Matrix::from_fn(rows, g.cols(), |_, c| g.get(0, c) * inv);
                self.add_grad(*x, da);
            }
            Op::MeanAll(x) => {
                let (rows, cols) = self.nodes[x.0].value.shape();
                let v = g.item() / (rows * cols) as f32;
                self.add_grad(*x, Matrix::full(rows, cols, v));
            }
            Op::CrossEntropy {
                logits,
                targets,
                probs,
            } => {
                let gs = g.item() / targets.len() as f32;
                let mut da = probs.scale(gs);
                for (r, &t) in targets.iter().enumerate() {
                    let cur = da.get(r, t);
                    da.set(r, t, cur - gs);
                }
                self.add_grad(*logits, da);
            }
            Op::NllProbs { probs, targets } => {
                let pm = &self.nodes[probs.0].value;
                let gs = g.item() / targets.len() as f32;
                let mut da = Matrix::zeros(pm.rows(), pm.cols());
                for (r, &t) in targets.iter().enumerate() {
                    da.set(r, t, -gs / pm.get(r, t).max(1e-12));
                }
                self.add_grad(*probs, da);
            }
            Op::MseLoss { pred, target } => {
                let pm = &self.nodes[pred.0].value;
                let c = 2.0 * g.item() / pm.len() as f32;
                let da = pm.sub(target).scale(c);
                self.add_grad(*pred, da);
            }
        }
        self.nodes[i].op = op;
    }

    /// Fold parameter-leaf gradients back into the store's grad buffers.
    /// Call after [`Tape::backward`].
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        for (&id, &var) in &self.param_cache {
            if let Some(g) = &self.nodes[var.0].grad {
                store.grad_mut(id).add_assign(g);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tape-free inference
// ---------------------------------------------------------------------------

thread_local! {
    /// Nodes this thread has ever pushed onto any recording [`Tape`].
    /// Diagnostics only: the tape-free tests pin this counter flat across a
    /// [`NoGradTape`] forward — the "zero tape nodes" claim is asserted, not
    /// stated (same proof pattern as the heartbeat module's `clock_reads`).
    static NODES_PUSHED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total tape nodes recorded by the current thread since it started. A
/// [`NoGradTape`] forward must leave this unchanged.
pub fn nodes_recorded_on_thread() -> u64 {
    NODES_PUSHED.with(|c| c.get())
}

/// Advance `rng` past `n` dropout draws without using them. Single-row
/// forwards (`MultiHeadSelfAttention::forward_row` and the encoder row
/// path built on it) skip whole rows of each dropout mask but must leave
/// the RNG in exactly the state the full forward would: the draws for the
/// skipped rows are burned at their stream positions, so analytic draw
/// counts (`Encoder::dropout_draws`) hold for both paths. One `next_u64`
/// per element mirrors dropout's `gen::<f32>()`, which makes exactly one.
pub fn burn_draws(rng: &mut impl rand::Rng, n: usize) {
    for _ in 0..n {
        rng.next_u64();
    }
}

/// Profiler slots for the tape-free path: positions in
/// [`em_obs::names::ALL_OP_NAMES`], numerically identical to `Op::index`
/// (a test pins every constant against the registry).
mod op_idx {
    pub const LEAF: usize = 0;
    pub const MATMUL: usize = 1;
    pub const ADD: usize = 2;
    pub const ADD_ROW_BROADCAST: usize = 3;
    pub const SUB: usize = 4;
    pub const MUL: usize = 5;
    pub const SCALE: usize = 6;
    pub const ADD_CONST: usize = 7;
    pub const TRANSPOSE: usize = 9;
    pub const TANH: usize = 10;
    pub const SIGMOID: usize = 11;
    pub const GELU: usize = 12;
    pub const RELU: usize = 13;
    pub const SOFTMAX_ROWS: usize = 14;
    pub const LAYER_NORM: usize = 15;
    pub const GATHER_ROWS: usize = 16;
    pub const DROPOUT: usize = 17;
    pub const CONCAT_ROWS: usize = 18;
    pub const CONCAT_COLS: usize = 19;
    pub const SLICE_ROWS: usize = 20;
    pub const SLICE_COLS: usize = 21;
    pub const MEAN_ROWS: usize = 22;
}

/// The forward-only op surface shared by the recording [`Tape`] and the
/// tape-free [`NoGradTape`].
///
/// Model forwards (`em-layers`, `mini-lm`, `em-core`) are generic over this
/// trait, so one implementation of each layer serves both modes: training
/// instantiates it with [`Tape`] (recording, differentiable), inference with
/// [`NoGradTape`] (value-only, zero graph bookkeeping). Loss ops,
/// `backward`, and the graph-topology accessors are deliberately *not* part
/// of the trait — code that differentiates must name [`Tape`] concretely.
///
/// Both implementations run the identical numeric kernels in identical
/// order — including the RNG draw order and `x * m` products inside
/// [`TapeExec::dropout`] — so outputs are bit-exact across modes; tests
/// here and in `mini-lm`/`em-core` pin that equivalence.
pub trait TapeExec {
    /// True when dropout is active (a training-mode executor).
    fn is_train(&self) -> bool;
    /// Insert a constant leaf.
    fn constant(&mut self, value: Matrix) -> Var;
    /// Insert (or reuse) a leaf mirroring parameter `id` from `store`.
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var;
    /// The forward value of `v`.
    fn value(&self, v: Var) -> &Matrix;
    /// Matrix product `a @ b`.
    fn matmul(&mut self, a: Var, b: Var) -> Var;
    /// Elementwise sum (same shapes).
    fn add(&mut self, a: Var, b: Var) -> Var;
    /// `a + b` where `b` is a (1,C) row broadcast over the rows of `a`.
    fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var;
    /// Elementwise difference.
    fn sub(&mut self, a: Var, b: Var) -> Var;
    /// Elementwise (Hadamard) product.
    fn mul(&mut self, a: Var, b: Var) -> Var;
    /// Multiply every element by the constant `c`.
    fn scale(&mut self, a: Var, c: f32) -> Var;
    /// Add a constant matrix elementwise (no gradient to the constant).
    fn add_const(&mut self, a: Var, k: &Matrix) -> Var;
    /// Matrix transpose.
    fn transpose(&mut self, a: Var) -> Var;
    /// Elementwise `tanh`.
    fn tanh(&mut self, a: Var) -> Var;
    /// Elementwise logistic sigmoid.
    fn sigmoid(&mut self, a: Var) -> Var;
    /// Elementwise GELU (tanh approximation, as in BERT).
    fn gelu(&mut self, a: Var) -> Var;
    /// Elementwise ReLU.
    fn relu(&mut self, a: Var) -> Var;
    /// Row-wise softmax.
    fn softmax_rows(&mut self, a: Var) -> Var;
    /// Row-wise layer normalization. `gamma` and `beta` must be (1,C).
    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var;
    /// Select rows of `src` by `idx` (duplicates allowed).
    fn gather_rows(&mut self, src: Var, idx: &[usize]) -> Var;
    /// Inverted dropout with keep-probability `1-p`. Identity when the
    /// executor is in inference mode or `p == 0`.
    fn dropout(&mut self, x: Var, p: f32, rng: &mut impl rand::Rng) -> Var;
    /// Stack vars vertically (equal column counts).
    fn concat_rows(&mut self, parts: &[Var]) -> Var;
    /// Stack vars horizontally (equal row counts).
    fn concat_cols(&mut self, parts: &[Var]) -> Var;
    /// Copy of rows `[start, start+len)`.
    fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var;
    /// Copy of columns `[start, start+len)`.
    fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var;
    /// Mean over rows, producing a `(1, C)` row.
    fn mean_rows(&mut self, x: Var) -> Var;
}

impl TapeExec for Tape {
    fn is_train(&self) -> bool {
        self.train
    }
    fn constant(&mut self, value: Matrix) -> Var {
        Tape::constant(self, value)
    }
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        Tape::param(self, store, id)
    }
    fn value(&self, v: Var) -> &Matrix {
        Tape::value(self, v)
    }
    fn matmul(&mut self, a: Var, b: Var) -> Var {
        Tape::matmul(self, a, b)
    }
    fn add(&mut self, a: Var, b: Var) -> Var {
        Tape::add(self, a, b)
    }
    fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        Tape::add_row_broadcast(self, a, b)
    }
    fn sub(&mut self, a: Var, b: Var) -> Var {
        Tape::sub(self, a, b)
    }
    fn mul(&mut self, a: Var, b: Var) -> Var {
        Tape::mul(self, a, b)
    }
    fn scale(&mut self, a: Var, c: f32) -> Var {
        Tape::scale(self, a, c)
    }
    fn add_const(&mut self, a: Var, k: &Matrix) -> Var {
        Tape::add_const(self, a, k)
    }
    fn transpose(&mut self, a: Var) -> Var {
        Tape::transpose(self, a)
    }
    fn tanh(&mut self, a: Var) -> Var {
        Tape::tanh(self, a)
    }
    fn sigmoid(&mut self, a: Var) -> Var {
        Tape::sigmoid(self, a)
    }
    fn gelu(&mut self, a: Var) -> Var {
        Tape::gelu(self, a)
    }
    fn relu(&mut self, a: Var) -> Var {
        Tape::relu(self, a)
    }
    fn softmax_rows(&mut self, a: Var) -> Var {
        Tape::softmax_rows(self, a)
    }
    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        Tape::layer_norm(self, x, gamma, beta, eps)
    }
    fn gather_rows(&mut self, src: Var, idx: &[usize]) -> Var {
        Tape::gather_rows(self, src, idx)
    }
    fn dropout(&mut self, x: Var, p: f32, rng: &mut impl rand::Rng) -> Var {
        Tape::dropout(self, x, p, rng)
    }
    fn concat_rows(&mut self, parts: &[Var]) -> Var {
        Tape::concat_rows(self, parts)
    }
    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        Tape::concat_cols(self, parts)
    }
    fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        Tape::slice_rows(self, x, start, len)
    }
    fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        Tape::slice_cols(self, x, start, len)
    }
    fn mean_rows(&mut self, x: Var) -> Var {
        Tape::mean_rows(self, x)
    }
}

/// Value-only executor: runs the same op kernels as [`Tape`] but records no
/// graph — no op payloads, no grad slots, no LayerNorm/Dropout caches — so
/// a forward pass allocates nothing beyond the value matrices themselves.
///
/// Every inference path uses this (teacher scoring, MC-dropout uncertainty,
/// grid probes, CLI `match` prediction). `train` controls dropout exactly as
/// on [`Tape`]: MC-dropout scoring runs a *training-mode* `NoGradTape`
/// (dropout active, RNG consumed in the same order as a recording tape),
/// deterministic prediction runs [`NoGradTape::inference`].
pub struct NoGradTape {
    slots: Vec<Matrix>,
    param_cache: HashMap<ParamId, Var>,
    /// When false, `dropout` is the identity (inference mode).
    pub train: bool,
}

impl Default for NoGradTape {
    fn default() -> Self {
        Self::new()
    }
}

impl NoGradTape {
    /// A fresh training-mode executor (dropout active; MC-dropout scoring).
    pub fn new() -> Self {
        NoGradTape {
            slots: Vec::with_capacity(256),
            param_cache: HashMap::new(),
            train: true,
        }
    }

    /// An executor whose dropout layers are disabled (deterministic
    /// inference).
    pub fn inference() -> Self {
        let mut t = Self::new();
        t.train = false;
        t
    }

    /// Number of values held so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no value has been computed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn push(&mut self, timer: Option<OpTimer>, op_idx: usize, value: Matrix) -> Var {
        if let Some(t) = timer {
            t.finish(op_idx, value.len());
        }
        self.slots.push(value);
        Var(self.slots.len() - 1)
    }
}

impl TapeExec for NoGradTape {
    fn is_train(&self) -> bool {
        self.train
    }

    fn constant(&mut self, value: Matrix) -> Var {
        let prof = OpTimer::start();
        self.push(prof, op_idx::LEAF, value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.param_cache.get(&id) {
            return v;
        }
        let prof = OpTimer::start();
        let value = store.value(id).clone();
        let v = self.push(prof, op_idx::LEAF, value);
        self.param_cache.insert(id, v);
        v
    }

    fn value(&self, v: Var) -> &Matrix {
        &self.slots[v.0]
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].matmul(&self.slots[b.0]);
        self.push(prof, op_idx::MATMUL, value)
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].add(&self.slots[b.0]);
        self.push(prof, op_idx::ADD, value)
    }

    fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let prof = OpTimer::start();
        let (am, bm) = (&self.slots[a.0], &self.slots[b.0]);
        assert_eq!(bm.rows(), 1, "add_row_broadcast needs a (1,C) row vector");
        assert_eq!(am.cols(), bm.cols(), "add_row_broadcast column mismatch");
        let mut value = am.clone();
        for r in 0..value.rows() {
            for (v, &x) in value.row_mut(r).iter_mut().zip(self.slots[b.0].row(0)) {
                *v += x;
            }
        }
        self.push(prof, op_idx::ADD_ROW_BROADCAST, value)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].sub(&self.slots[b.0]);
        self.push(prof, op_idx::SUB, value)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].hadamard(&self.slots[b.0]);
        self.push(prof, op_idx::MUL, value)
    }

    fn scale(&mut self, a: Var, c: f32) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].scale(c);
        self.push(prof, op_idx::SCALE, value)
    }

    fn add_const(&mut self, a: Var, k: &Matrix) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].add(k);
        self.push(prof, op_idx::ADD_CONST, value)
    }

    fn transpose(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].transpose();
        self.push(prof, op_idx::TRANSPOSE, value)
    }

    fn tanh(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].map(f32::tanh);
        self.push(prof, op_idx::TANH, value)
    }

    fn sigmoid(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(prof, op_idx::SIGMOID, value)
    }

    fn gelu(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].map(gelu);
        self.push(prof, op_idx::GELU, value)
    }

    fn relu(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].map(|x| x.max(0.0));
        self.push(prof, op_idx::RELU, value)
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[a.0].softmax_rows();
        self.push(prof, op_idx::SOFTMAX_ROWS, value)
    }

    fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let prof = OpTimer::start();
        let (rows, cols) = self.slots[x.0].shape();
        for v in [gamma, beta] {
            assert_eq!(
                self.slots[v.0].shape(),
                (1, cols),
                "layer_norm gain/bias must be (1,C)"
            );
        }
        // Same per-row arithmetic as the recording tape, minus the `normed`
        // and `inv_std` backward caches.
        let mut value = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let row = self.slots[x.0].row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let istd = 1.0 / (var + eps).sqrt();
            for (c, &xv) in row.iter().enumerate() {
                let n = (xv - mean) * istd;
                value.set(
                    r,
                    c,
                    n * self.slots[gamma.0].get(0, c) + self.slots[beta.0].get(0, c),
                );
            }
        }
        self.push(prof, op_idx::LAYER_NORM, value)
    }

    fn gather_rows(&mut self, src: Var, idx: &[usize]) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[src.0].gather_rows(idx);
        self.push(prof, op_idx::GATHER_ROWS, value)
    }

    fn dropout(&mut self, x: Var, p: f32, rng: &mut impl rand::Rng) -> Var {
        if !self.train || p <= 0.0 {
            return x;
        }
        let prof = OpTimer::start();
        assert!(p < 1.0, "dropout probability must be < 1");
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let xm = &self.slots[x.0];
        // Fused mask-multiply: identical draws in identical (row-major)
        // order and the same `x * m` products as the recording tape's
        // mask + hadamard, without materializing the mask. Streaming the
        // backing slice keeps the per-element cost at one draw + one
        // multiply (no index arithmetic).
        let data: Vec<f32> = xm
            .data()
            .iter()
            .map(|&v| {
                let m = if rng.gen::<f32>() < keep { scale } else { 0.0 };
                v * m
            })
            .collect();
        let value = Matrix::from_vec(xm.rows(), xm.cols(), data);
        self.push(prof, op_idx::DROPOUT, value)
    }

    fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let prof = OpTimer::start();
        let mats: Vec<&Matrix> = parts.iter().map(|v| &self.slots[v.0]).collect();
        let value = Matrix::vstack(&mats);
        self.push(prof, op_idx::CONCAT_ROWS, value)
    }

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let prof = OpTimer::start();
        let mats: Vec<&Matrix> = parts.iter().map(|v| &self.slots[v.0]).collect();
        let value = Matrix::hstack(&mats);
        self.push(prof, op_idx::CONCAT_COLS, value)
    }

    fn slice_rows(&mut self, x: Var, start: usize, len: usize) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[x.0].slice_rows(start, len);
        self.push(prof, op_idx::SLICE_ROWS, value)
    }

    fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[x.0].slice_cols(start, len);
        self.push(prof, op_idx::SLICE_COLS, value)
    }

    fn mean_rows(&mut self, x: Var) -> Var {
        let prof = OpTimer::start();
        let value = self.slots[x.0].mean_rows();
        self.push(prof, op_idx::MEAN_ROWS, value)
    }
}

/// Exact GELU via erf approximation (tanh form, as used by BERT/RoBERTa).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of the tanh-form GELU.
#[inline]
pub fn gelu_dx(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::ParamStore;

    /// Central-difference check of `d loss / d x[r][c]` for a scalar-valued
    /// computation `f(tape, x_var)`.
    fn grad_check(x0: Matrix, f: impl Fn(&mut Tape, Var) -> Var) {
        let mut tape = Tape::new();
        let x = tape.constant(x0.clone());
        let loss = f(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x);

        let eps = 1e-3f32;
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut xp = x0.clone();
                xp.set(r, c, x0.get(r, c) + eps);
                let mut tp = Tape::new();
                let vp = tp.constant(xp);
                let lp = f(&mut tp, vp);
                let fp = tp.value(lp).item();

                let mut xm = x0.clone();
                xm.set(r, c, x0.get(r, c) - eps);
                let mut tm = Tape::new();
                let vm = tm.constant(xm);
                let lm = f(&mut tm, vm);
                let fm = tm.value(lm).item();

                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    fn test_input() -> Matrix {
        Matrix::from_vec(2, 3, vec![0.5, -1.2, 0.3, 0.9, -0.4, 1.7])
    }

    #[test]
    fn backward_moves_graph_size_counters() {
        let nodes = em_obs::metrics::counter("nn_tape_nodes", &[]);
        let leaves = em_obs::metrics::counter("nn_tape_param_leaves", &[]);
        let (n0, l0) = (nodes.get(), leaves.get());
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(1, 2, vec![0.5, -0.25]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let loss = tape.mean_all(wv);
        tape.backward(loss);
        // Deltas, not absolutes: the registry is process-global and other
        // tests run backward passes in parallel.
        assert!(
            nodes.get() >= n0 + tape.len() as u64,
            "nn_tape_nodes did not move"
        );
        assert!(leaves.get() > l0, "nn_tape_param_leaves did not move");
    }

    #[test]
    fn grad_matmul() {
        let w = Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.4, 0.3, -0.5, 0.2]);
        grad_check(test_input(), move |t, x| {
            let wv = t.constant(w.clone());
            let y = t.matmul(x, wv);
            t.mean_all(y)
        });
    }

    #[test]
    fn grad_matmul_rhs() {
        // Gradient w.r.t. the right operand of a matmul.
        let a = Matrix::from_vec(2, 2, vec![0.3, -0.8, 1.1, 0.2]);
        grad_check(
            Matrix::from_vec(2, 3, vec![0.5, -0.1, 0.2, 0.8, 0.4, -0.6]),
            move |t, x| {
                let av = t.constant(a.clone());
                let y = t.matmul(av, x);
                t.mean_all(y)
            },
        );
    }

    #[test]
    fn grad_elementwise_chain() {
        grad_check(test_input(), |t, x| {
            let a = t.tanh(x);
            let b = t.sigmoid(a);
            let c = t.mul(b, x);
            t.mean_all(c)
        });
    }

    #[test]
    fn grad_gelu_relu() {
        grad_check(test_input(), |t, x| {
            let a = t.gelu(x);
            let b = t.relu(a);
            t.mean_all(b)
        });
    }

    #[test]
    fn grad_softmax_rows() {
        // Weighted sum of softmax outputs so the gradient is non-trivial.
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.5, 2.0]);
        grad_check(test_input(), move |t, x| {
            let s = t.softmax_rows(x);
            let wv = t.constant(w.clone());
            let m = t.mul(s, wv);
            t.mean_all(m)
        });
    }

    #[test]
    fn grad_layer_norm() {
        let gamma = Matrix::from_vec(1, 3, vec![1.2, 0.8, 1.0]);
        let beta = Matrix::from_vec(1, 3, vec![0.1, -0.1, 0.0]);
        let w = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.3, 1.0, -1.0]);
        grad_check(test_input(), move |t, x| {
            let g = t.constant(gamma.clone());
            let b = t.constant(beta.clone());
            let y = t.layer_norm(x, g, b, 1e-5);
            let wv = t.constant(w.clone());
            let m = t.mul(y, wv);
            t.mean_all(m)
        });
    }

    #[test]
    fn grad_layer_norm_gamma_beta() {
        let x0 = test_input();
        let probe = Matrix::from_vec(2, 3, vec![1.0, -1.0, 2.0, 0.5, 0.2, -0.7]);
        // Check gamma gradient by treating gamma as the checked input.
        grad_check(Matrix::from_vec(1, 3, vec![1.0, 0.9, 1.1]), {
            let x0 = x0.clone();
            let probe = probe.clone();
            move |t, gamma| {
                let x = t.constant(x0.clone());
                let beta = t.constant(Matrix::zeros(1, 3));
                let y = t.layer_norm(x, gamma, beta, 1e-5);
                let p = t.constant(probe.clone());
                let m = t.mul(y, p);
                t.mean_all(m)
            }
        });
        // And the beta gradient.
        grad_check(
            Matrix::from_vec(1, 3, vec![0.0, 0.1, -0.2]),
            move |t, beta| {
                let x = t.constant(x0.clone());
                let gamma = t.constant(Matrix::full(1, 3, 1.0));
                let y = t.layer_norm(x, gamma, beta, 1e-5);
                let p = t.constant(probe.clone());
                let m = t.mul(y, p);
                t.mean_all(m)
            },
        );
    }

    #[test]
    fn grad_gather_and_slice() {
        grad_check(test_input(), |t, x| {
            let g = t.gather_rows(x, &[1, 0, 1]);
            let s = t.slice_rows(g, 1, 2);
            let c = t.slice_cols(s, 0, 2);
            t.mean_all(c)
        });
    }

    #[test]
    fn grad_concat() {
        grad_check(test_input(), |t, x| {
            let a = t.tanh(x);
            let rows = t.concat_rows(&[x, a]);
            let cols = t.concat_cols(&[rows, rows]);
            t.mean_all(cols)
        });
    }

    #[test]
    fn grad_cross_entropy() {
        grad_check(test_input(), |t, x| t.cross_entropy(x, &[2, 0]));
    }

    #[test]
    fn grad_reverse_flips_and_scales() {
        let mut tape = Tape::new();
        let x = tape.constant(test_input());
        let y = tape.grad_reverse(x, 0.5);
        assert_eq!(tape.value(y), tape.value(x));
        let loss = tape.mean_all(y);
        tape.backward(loss);
        let g = tape.grad(x);
        let expected = -0.5 / 6.0;
        for &v in g.data() {
            assert!((v - expected).abs() < 1e-6, "{v} vs {expected}");
        }
    }

    #[test]
    fn grad_nll_probs() {
        // Compose softmax + constant projection + NLL, the verbalizer path.
        let m = Matrix::from_vec(3, 2, vec![0.5, 0.0, 0.5, 0.0, 0.0, 1.0]);
        grad_check(test_input(), move |t, x| {
            let probs = t.softmax_rows(x);
            let mv = t.constant(m.clone());
            let class_probs = t.matmul(probs, mv);
            t.nll_probs(class_probs, &[0, 1])
        });
    }

    #[test]
    fn grad_mse() {
        let target = Matrix::from_vec(2, 3, vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        grad_check(test_input(), move |t, x| t.mse_loss(x, &target));
    }

    #[test]
    fn grad_mean_rows_broadcast() {
        let b = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.7]);
        grad_check(test_input(), move |t, x| {
            let bv = t.constant(b.clone());
            let y = t.add_row_broadcast(x, bv);
            let m = t.mean_rows(y);
            t.mean_all(m)
        });
    }

    #[test]
    fn grad_scale_sub_addconst() {
        let k = Matrix::from_vec(2, 3, vec![0.1; 6]);
        grad_check(test_input(), move |t, x| {
            let a = t.scale(x, 2.5);
            let b = t.sub(a, x);
            let c = t.add_const(b, &k);
            t.mean_all(c)
        });
    }

    #[test]
    fn param_grads_accumulate_into_store() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        // Parameter fetched twice must reuse the same leaf.
        let wv2 = tape.param(&store, w);
        assert_eq!(wv, wv2);
        let y = tape.mul(wv, wv2); // y = w^2 elementwise
        let loss = tape.mean_all(y);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        // d mean(w^2) / dw = 2w / 4
        let g = store.grad(w);
        for (i, expected) in [0.5f32, 1.0, 1.5, 2.0].iter().enumerate() {
            assert!((g.data()[i] - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn dropout_identity_in_inference() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut tape = Tape::inference();
        let x = tape.constant(test_input());
        let y = tape.dropout(x, 0.5, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn op_indices_match_the_obs_registry() {
        // One of each variant; index() must be its position in
        // em_obs::names::ALL_OP_NAMES and name() the string stored there.
        let v = Var(0);
        let m = Matrix::zeros(1, 1);
        let ops = vec![
            Op::Leaf,
            Op::Matmul(v, v),
            Op::Add(v, v),
            Op::AddRowBroadcast(v, v),
            Op::Sub(v, v),
            Op::Mul(v, v),
            Op::Scale(v, 1.0),
            Op::AddConst(v),
            Op::GradReverse(v, 1.0),
            Op::Transpose(v),
            Op::Tanh(v),
            Op::Sigmoid(v),
            Op::Gelu(v),
            Op::Relu(v),
            Op::SoftmaxRows(v),
            Op::LayerNorm {
                x: v,
                gamma: v,
                beta: v,
                normed: m.clone(),
                inv_std: Vec::new(),
            },
            Op::GatherRows {
                src: v,
                idx: Vec::new(),
            },
            Op::Dropout {
                x: v,
                mask: m.clone(),
            },
            Op::ConcatRows(Vec::new()),
            Op::ConcatCols(Vec::new()),
            Op::SliceRows { x: v, start: 0 },
            Op::SliceCols { x: v, start: 0 },
            Op::MeanRows(v),
            Op::MeanAll(v),
            Op::CrossEntropy {
                logits: v,
                targets: Vec::new(),
                probs: m.clone(),
            },
            Op::MseLoss { pred: v, target: m },
            Op::NllProbs {
                probs: v,
                targets: Vec::new(),
            },
        ];
        assert_eq!(ops.len(), em_obs::names::ALL_OP_NAMES.len());
        let mut seen = vec![false; ops.len()];
        for op in &ops {
            assert_eq!(
                em_obs::names::ALL_OP_NAMES[op.index()],
                op.name(),
                "slot/name mismatch for {}",
                op.name()
            );
            assert!(!seen[op.index()], "duplicate slot {}", op.index());
            seen[op.index()] = true;
        }
    }

    #[test]
    fn op_profiler_off_is_silent_and_on_flushes_named_totals() {
        // Counter-based on purpose (wall-clock assertions are flaky): the
        // off phase asserts zero op_stats events and that flushing emits
        // nothing; the on phase asserts per-op call counts, and both
        // phases must record the identical graph.
        fn build_and_backward() -> usize {
            let mut tape = Tape::new();
            let x = tape.constant(Matrix::from_vec(2, 3, vec![0.5, -1.2, 0.3, 0.9, -0.4, 1.7]));
            let w = tape.constant(Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.4, 0.3, -0.5, 0.2]));
            let y = tape.matmul(x, w);
            let a = tape.tanh(y);
            let loss = tape.mean_all(a);
            tape.backward(loss);
            tape.len()
        }
        let is_op_stats = |e: &em_obs::Event| matches!(e.kind, em_obs::EventKind::OpStats { .. });

        // Off (the default — the env override is never set under test).
        let (nodes_off, events_off) = em_obs::capture(build_and_backward);
        let ((), flush_off) = em_obs::capture(flush_op_stats);
        assert!(
            !events_off.iter().any(is_op_stats),
            "disabled profiler emitted op_stats"
        );
        assert!(
            !flush_off.iter().any(is_op_stats),
            "disabled flush emitted op_stats"
        );

        // On. Parallel tests in this process may add their own ops to the
        // global table while the switch is up, so assert lower bounds on
        // the ops this graph certainly recorded, never exact totals.
        set_op_profile(true);
        let (nodes_on, _) = em_obs::capture(build_and_backward);
        let ((), flushed) = em_obs::capture(flush_op_stats);
        set_op_profile(false);

        assert_eq!(nodes_off, nodes_on, "profiling changed the recorded graph");
        let stats = |name: &str| {
            flushed.iter().find_map(|e| match &e.kind {
                em_obs::EventKind::OpStats {
                    op,
                    fwd_calls,
                    bwd_calls,
                    elems,
                    ..
                } if op == name => Some((*fwd_calls, *bwd_calls, *elems)),
                _ => None,
            })
        };
        for (name, min_elems) in [("leaf", 12), ("matmul", 4), ("tanh", 4), ("mean_all", 1)] {
            let (fwd, bwd, elems) = stats(name).unwrap_or_else(|| panic!("{name} not flushed"));
            assert!(fwd >= 1, "{name}: no forward calls");
            assert!(elems >= min_elems, "{name}: {elems} elems");
            if name != "leaf" {
                assert!(bwd >= 1, "{name}: no backward visits");
            }
        }
        for e in &flushed {
            if let em_obs::EventKind::OpStats { op, .. } = &e.kind {
                assert!(
                    em_obs::names::ALL_OP_NAMES.contains(&op.as_str()),
                    "op name {op} not in the registry"
                );
            }
        }
    }

    #[test]
    fn dropout_scales_kept_elements() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(10, 10, 1.0));
        let y = tape.dropout(x, 0.5, &mut rng);
        for &v in tape.value(y).data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    // ---- tape-free inference ----

    /// One forward through every `TapeExec` op, generic over the executor,
    /// so the exact same call sequence can run taped and tape-free.
    fn exercise_all_ops<T: TapeExec>(
        exec: &mut T,
        store: &ParamStore,
        w: ParamId,
        rng: &mut rand::rngs::StdRng,
    ) -> Matrix {
        let x = exec.constant(Matrix::from_vec(
            3,
            4,
            vec![
                0.5, -1.2, 0.3, 0.9, -0.4, 1.7, 0.05, -0.6, 1.1, -0.2, 0.8, -1.5,
            ],
        ));
        let wv = exec.param(store, w);
        let h = exec.matmul(x, wv);
        let bias = exec.constant(Matrix::from_vec(1, 4, vec![0.1, -0.1, 0.2, -0.2]));
        let h = exec.add_row_broadcast(h, bias);
        let g = exec.gelu(h);
        let gamma = exec.constant(Matrix::full(1, 4, 1.0));
        let beta = exec.constant(Matrix::full(1, 4, 0.0));
        let n = exec.layer_norm(g, gamma, beta, 1e-5);
        let d = exec.dropout(n, 0.3, rng);
        let s = exec.softmax_rows(d);
        let t = exec.transpose(s);
        let t = exec.transpose(t);
        let a = exec.tanh(t);
        let b = exec.sigmoid(t);
        let m = exec.mul(a, b);
        let m = exec.relu(m);
        let m2 = exec.scale(m, 1.5);
        let sum = exec.add(m, m2);
        let diff = exec.sub(sum, m);
        let k = Matrix::full(3, 4, 0.25);
        let shifted = exec.add_const(diff, &k);
        let picked = exec.gather_rows(shifted, &[2, 0, 1, 2]);
        let top = exec.slice_rows(picked, 0, 2);
        let left = exec.slice_cols(top, 0, 2);
        let right = exec.slice_cols(top, 2, 2);
        let wide = exec.concat_cols(&[left, right]);
        let tall = exec.concat_rows(&[wide, top]);
        let pooled = exec.mean_rows(tall);
        let out = exec.concat_rows(&[tall, pooled]);
        exec.value(out).clone()
    }

    #[test]
    fn tape_free_forward_is_bit_exact_and_records_zero_nodes() {
        use rand::SeedableRng;
        let mut store = ParamStore::new();
        let w = store.register(
            "w",
            Matrix::from_vec(
                4,
                4,
                vec![
                    0.2, -0.4, 0.6, 0.1, -0.3, 0.5, -0.2, 0.7, 0.4, -0.6, 0.3, -0.1, 0.8, 0.2,
                    -0.5, 0.4,
                ],
            ),
        );

        let mut taped = Tape::new();
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(7);
        let y_taped = exercise_all_ops(&mut taped, &store, w, &mut rng_a);

        let pushed_before = nodes_recorded_on_thread();
        let mut free = NoGradTape::new();
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(7);
        let y_free = exercise_all_ops(&mut free, &store, w, &mut rng_b);
        assert_eq!(
            nodes_recorded_on_thread(),
            pushed_before,
            "a NoGradTape forward must record zero tape nodes"
        );
        assert!(!free.is_empty());

        // Bit-exact, not approximately equal: compare f32 bit patterns so
        // even a ±0.0 divergence in the fused dropout would be caught.
        assert_eq!(y_taped.shape(), y_free.shape());
        for (i, (a, b)) in y_taped.data().iter().zip(y_free.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "logit {i} diverged: taped {a} vs tape-free {b}"
            );
        }
        // Both executors must consume the RNG identically (same number of
        // draws in the same order), or downstream passes would diverge.
        assert_eq!(rng_a.state(), rng_b.state(), "RNG streams diverged");
    }

    #[test]
    fn nograd_op_indices_match_the_obs_registry() {
        for (idx, name) in [
            (op_idx::LEAF, "leaf"),
            (op_idx::MATMUL, "matmul"),
            (op_idx::ADD, "add"),
            (op_idx::ADD_ROW_BROADCAST, "add_row_broadcast"),
            (op_idx::SUB, "sub"),
            (op_idx::MUL, "mul"),
            (op_idx::SCALE, "scale"),
            (op_idx::ADD_CONST, "add_const"),
            (op_idx::TRANSPOSE, "transpose"),
            (op_idx::TANH, "tanh"),
            (op_idx::SIGMOID, "sigmoid"),
            (op_idx::GELU, "gelu"),
            (op_idx::RELU, "relu"),
            (op_idx::SOFTMAX_ROWS, "softmax_rows"),
            (op_idx::LAYER_NORM, "layer_norm"),
            (op_idx::GATHER_ROWS, "gather_rows"),
            (op_idx::DROPOUT, "dropout"),
            (op_idx::CONCAT_ROWS, "concat_rows"),
            (op_idx::CONCAT_COLS, "concat_cols"),
            (op_idx::SLICE_ROWS, "slice_rows"),
            (op_idx::SLICE_COLS, "slice_cols"),
            (op_idx::MEAN_ROWS, "mean_rows"),
        ] {
            assert_eq!(
                em_obs::names::ALL_OP_NAMES[idx],
                name,
                "tape-free profiler slot {idx} drifted from the registry"
            );
        }
    }

    #[test]
    fn nograd_inference_dropout_is_identity_and_draws_nothing() {
        let mut exec = NoGradTape::inference();
        let x = exec.constant(Matrix::full(2, 2, 1.0));
        // A step RNG that would visibly perturb the mask if consumed.
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let y = exec.dropout(x, 0.5, &mut rng);
        assert_eq!(x, y, "inference-mode dropout must be the identity");
        assert_eq!(exec.len(), 1, "identity dropout must not push a value");
    }

    #[test]
    fn nograd_param_cache_reuses_leaves() {
        let mut store = ParamStore::new();
        let w = store.register("w", Matrix::full(2, 2, 0.5));
        let mut exec = NoGradTape::inference();
        let a = exec.param(&store, w);
        let b = exec.param(&store, w);
        assert_eq!(a, b);
        assert_eq!(exec.len(), 1);
    }
}
