//! Dense row-major `f32` matrix with the handful of BLAS-like kernels the
//! autograd tape needs. Everything is CPU-only and single-threaded; the
//! matmul is written so LLVM autovectorizes the inner loop.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from an explicit row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            rows * cols,
            data.len(),
            "buffer length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A 1x1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    /// A 1xN row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-element matrix.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The row-major backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the row-major backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, yielding its buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    /// Element at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    /// Write element at `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// The value of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (1, 1),
            "item() on non-scalar {:?}",
            self.shape()
        );
        self.data[0]
    }

    /// `self @ other` — the classic ikj loop; the innermost loop is a
    /// contiguous axpy which LLVM turns into SIMD with `target-cpu=native`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Matrix {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}^T @ {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = vec![0.0f32; m * n];
        // out[i][j] = sum_p self[p][i] * other[p][j]
        for p in 0..k {
            let arow = &self.data[p * m..(p + 1) * m];
            let brow = &other.data[p * n..(p + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Matrix {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// `self @ other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} @ {:?}^T",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow.iter()) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Matrix {
            rows: m,
            cols: n,
            data: out,
        }
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += c * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, c: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// Elementwise `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, c: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * c).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Apply `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the whole buffer.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Row-wise softmax (numerically stable).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// Stack matrices vertically. All inputs must share the column count.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Stack matrices horizontally. All inputs must share the row count.
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack of nothing");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for p in parts {
                assert_eq!(p.rows, rows, "hstack row mismatch");
                data.extend_from_slice(p.row(r));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "slice_rows out of range");
        let data = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Matrix {
            rows: len,
            cols: self.cols,
            data,
        }
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..start + len]);
        }
        Matrix {
            rows: self.rows,
            cols: len,
            data,
        }
    }

    /// Gather rows by index (duplicates allowed).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            assert!(
                i < self.rows,
                "gather_rows index {} out of {}",
                i,
                self.rows
            );
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Mean over rows, producing a 1xC row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out {
            *o *= inv;
        }
        Matrix {
            rows: 1,
            cols: self.cols,
            data: out,
        }
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// Numerically stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Numerically stable log-sum-exp of a slice.
pub fn log_sum_exp(row: &[f32]) -> f32 {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let s: f32 = row.iter().map(|v| (v - max).exp()).sum();
    max + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_by_hand() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r + c) as f32 * 0.25);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(5, 3, |r, c| (r + 2 * c) as f32 * 0.25);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_values() {
        let a = Matrix::from_vec(1, 3, vec![1000., 1000., 1000.]);
        let s = a.softmax_rows();
        for &v in s.data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn stack_and_slice_roundtrip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(1, 3, |_, c| 100.0 + c as f32);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.slice_rows(0, 2), a);
        assert_eq!(v.slice_rows(2, 1), b);

        let c = Matrix::from_fn(2, 2, |r, _| r as f32);
        let h = Matrix::hstack(&[&a, &c]);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h.slice_cols(0, 3), a);
        assert_eq!(h.slice_cols(3, 2), c);
    }

    #[test]
    fn gather_rows_duplicates() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), a.row(2));
        assert_eq!(g.row(1), a.row(0));
        assert_eq!(g.row(2), a.row(2));
    }

    #[test]
    fn mean_rows_is_columnwise_mean() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let m = a.mean_rows();
        assert_eq!(m.data(), &[2., 3.]);
    }

    #[test]
    fn log_sum_exp_stable() {
        let v = [1000.0f32, 1000.0, 1000.0];
        let lse = log_sum_exp(&v);
        assert!((lse - (1000.0 + 3.0f32.ln())).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
