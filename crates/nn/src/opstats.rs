//! The op-profiler's accumulation table, factored behind a word-level
//! shim so the *same* algorithm runs in two worlds:
//!
//! * production — [`RelaxedWord`] over `std::sync::atomic::AtomicU64`
//!   with `Relaxed` ordering (the table is a pile of independent
//!   counters; no cross-word invariant needs publication order), and
//! * model checking — the `em-sched` test harness substitutes a
//!   scheduler-instrumented word type, so the interleaving checker can
//!   drive concurrent `record_*` vs `drain` schedules and prove the
//!   swap-drain protocol never loses or double-counts an increment
//!   (`crates/nn/tests/sched_opstats.rs`).
//!
//! The correctness argument the checker exercises: every mutation is a
//! single atomic RMW (`fetch_add` to record, `swap(0)` to drain), so any
//! interleaving of recorders and a drainer partitions each counter's
//! increments exactly — whatever the drains return plus whatever remains
//! in the table equals whatever was recorded. A load-then-store variant
//! (the natural "read, add, write back" bug) breaks that partition, and
//! the checker finds it within a bounded number of seeds.

use std::sync::atomic::{AtomicU64, Ordering};

/// One profiler counter word. Implementations must make [`add`] and
/// [`take`] single atomic RMW operations — the lost-update freedom of
/// the whole table reduces to that property.
///
/// [`add`]: StatWord::add
/// [`take`]: StatWord::take
pub trait StatWord: Sync {
    /// Atomically add `v` to the counter.
    fn add(&self, v: u64);
    /// Atomically read the counter and reset it to zero.
    fn take(&self) -> u64;
    /// Read the current value (diagnostics only; no atomicity claim
    /// beyond the single load).
    fn peek(&self) -> u64;
}

/// Production word: a `Relaxed` `AtomicU64`.
#[derive(Default)]
pub struct RelaxedWord(AtomicU64);

impl RelaxedWord {
    /// A zeroed word, usable in `const` initializers.
    pub const fn new() -> RelaxedWord {
        RelaxedWord(AtomicU64::new(0))
    }
}

impl StatWord for RelaxedWord {
    // ordering: Relaxed throughout — each word is an independent counter
    // with no cross-word invariant, so only the per-word RMW atomicity
    // matters, not publication order between words.
    fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }

    fn peek(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One op's accumulation slot. Time is kept in nanoseconds so the many
/// sub-microsecond ops (add, scale, slices) don't truncate to zero; the
/// tape's flush converts to microseconds.
pub struct OpSlot<W> {
    fwd_calls: W,
    fwd_ns: W,
    bwd_calls: W,
    bwd_ns: W,
    elems: W,
    bytes: W,
}

/// A drained (or peeked) snapshot of one op's counters, in plain `u64`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpRow {
    /// Forward-pass recordings.
    pub fwd_calls: u64,
    /// Forward-pass nanoseconds.
    pub fwd_ns: u64,
    /// Backward-pass visits.
    pub bwd_calls: u64,
    /// Backward-pass nanoseconds.
    pub bwd_ns: u64,
    /// Output elements produced.
    pub elems: u64,
    /// Heap bytes grown while recording.
    pub bytes: u64,
}

impl OpRow {
    /// True when the op saw no activity (the flush skips such rows).
    pub fn is_empty(&self) -> bool {
        self.fwd_calls == 0 && self.bwd_calls == 0
    }

    /// Field-wise sum (used by the model-check harness to total partial
    /// drains against what was recorded).
    pub fn merged(&self, other: &OpRow) -> OpRow {
        OpRow {
            fwd_calls: self.fwd_calls + other.fwd_calls,
            fwd_ns: self.fwd_ns + other.fwd_ns,
            bwd_calls: self.bwd_calls + other.bwd_calls,
            bwd_ns: self.bwd_ns + other.bwd_ns,
            elems: self.elems + other.elems,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// The accumulation table: `N` slots of six counter words each.
pub struct OpStatsTable<W, const N: usize> {
    slots: [OpSlot<W>; N],
}

impl<const N: usize> OpStatsTable<RelaxedWord, N> {
    /// A zeroed production table, usable as a `static` initializer.
    pub const fn new_relaxed() -> OpStatsTable<RelaxedWord, N> {
        // A const fn can't call trait methods, so the production table
        // gets its own concrete constructor with the repeat-const trick.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: OpSlot<RelaxedWord> = OpSlot {
            fwd_calls: RelaxedWord::new(),
            fwd_ns: RelaxedWord::new(),
            bwd_calls: RelaxedWord::new(),
            bwd_ns: RelaxedWord::new(),
            elems: RelaxedWord::new(),
            bytes: RelaxedWord::new(),
        };
        OpStatsTable { slots: [ZERO; N] }
    }
}

impl<W: StatWord, const N: usize> OpStatsTable<W, N> {
    /// A zeroed table over any defaultable word type (the model-check
    /// harness builds shim-word tables this way at runtime).
    pub fn zeroed() -> OpStatsTable<W, N>
    where
        W: Default,
    {
        OpStatsTable {
            slots: std::array::from_fn(|_| OpSlot {
                fwd_calls: W::default(),
                fwd_ns: W::default(),
                bwd_calls: W::default(),
                bwd_ns: W::default(),
                elems: W::default(),
                bytes: W::default(),
            }),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        N
    }

    /// True when the table has no slots.
    pub fn is_empty(&self) -> bool {
        N == 0
    }

    /// Record one forward execution of op `op`.
    pub fn record_fwd(&self, op: usize, ns: u64, elems: u64, bytes: u64) {
        let slot = &self.slots[op];
        slot.fwd_calls.add(1);
        slot.fwd_ns.add(ns);
        slot.elems.add(elems);
        slot.bytes.add(bytes);
    }

    /// Record one backward visit of op `op`.
    pub fn record_bwd(&self, op: usize, ns: u64) {
        let slot = &self.slots[op];
        slot.bwd_calls.add(1);
        slot.bwd_ns.add(ns);
    }

    /// Atomically drain slot `op` to zero, returning what was taken.
    ///
    /// Each word is taken with a single `swap(0)`, so concurrent
    /// recorders never lose an increment: it lands either in this drain's
    /// row or in the residual table, never both, never neither. The six
    /// words are *not* drained as one transaction — a row can pair a
    /// recorder's `fwd_calls` with a not-yet-added `fwd_ns` — which is
    /// fine for profiling totals because later drains pick up the rest.
    pub fn drain(&self, op: usize) -> OpRow {
        let slot = &self.slots[op];
        OpRow {
            fwd_calls: slot.fwd_calls.take(),
            fwd_ns: slot.fwd_ns.take(),
            bwd_calls: slot.bwd_calls.take(),
            bwd_ns: slot.bwd_ns.take(),
            elems: slot.elems.take(),
            bytes: slot.bytes.take(),
        }
    }

    /// Non-destructive snapshot of slot `op`.
    pub fn peek(&self, op: usize) -> OpRow {
        let slot = &self.slots[op];
        OpRow {
            fwd_calls: slot.fwd_calls.peek(),
            fwd_ns: slot.fwd_ns.peek(),
            bwd_calls: slot.bwd_calls.peek(),
            bwd_ns: slot.bwd_ns.peek(),
            elems: slot.elems.peek(),
            bytes: slot.bytes.peek(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_drain_roundtrip() {
        let t: OpStatsTable<RelaxedWord, 3> = OpStatsTable::zeroed();
        t.record_fwd(1, 500, 12, 96);
        t.record_fwd(1, 250, 12, 0);
        t.record_bwd(1, 125);
        assert!(t.peek(0).is_empty() && t.peek(2).is_empty());
        let row = t.drain(1);
        assert_eq!(
            row,
            OpRow {
                fwd_calls: 2,
                fwd_ns: 750,
                bwd_calls: 1,
                bwd_ns: 125,
                elems: 24,
                bytes: 96,
            }
        );
        // Drained means drained: a second drain sees nothing.
        assert!(t.drain(1).is_empty());
    }

    #[test]
    fn const_table_matches_zeroed() {
        static T: OpStatsTable<RelaxedWord, 2> = OpStatsTable::new_relaxed();
        assert_eq!(T.len(), 2);
        assert!(T.peek(0).is_empty());
        T.record_bwd(0, 7);
        let row = T.drain(0);
        assert_eq!((row.bwd_calls, row.bwd_ns), (1, 7));
    }

    #[test]
    fn merged_totals_fieldwise() {
        let a = OpRow {
            fwd_calls: 1,
            fwd_ns: 2,
            bwd_calls: 3,
            bwd_ns: 4,
            elems: 5,
            bytes: 6,
        };
        let b = a.merged(&a);
        assert_eq!(b.fwd_calls, 2);
        assert_eq!(b.bytes, 12);
    }
}
