//! Weight initialization schemes.

use crate::tensor::Matrix;
use rand::Rng;
use rand_distr_free::normal_sample;

/// Xavier/Glorot uniform: U(-a, a) with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

/// Truncated-free normal initialization N(0, std^2), the BERT default
/// (std = 0.02).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| normal_sample(rng) * std)
}

/// Uniform U(-a, a).
pub fn uniform(rows: usize, cols: usize, a: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

mod rand_distr_free {
    //! Box–Muller standard normal sampling so we do not need `rand_distr`.
    use rand::Rng;

    pub fn normal_sample(rng: &mut impl Rng) -> f32 {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        for &v in m.data() {
            assert!(v.abs() <= bound);
        }
    }

    #[test]
    fn normal_has_requested_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = normal(100, 100, 0.02, &mut rng);
        let mean = m.sum() / m.len() as f32;
        let var = m
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 0.005, "std {}", var.sqrt());
    }

    #[test]
    fn initializers_are_deterministic_under_seed() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
