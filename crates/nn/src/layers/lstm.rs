//! LSTM and BiLSTM. Used by the P-tuning continuous prompt encoder (per
//! PromptEM §3.1, which follows Liu et al.'s P-tuning) and by the
//! DeepMatcher baseline's attribute aggregator.

use crate::init;
use crate::optim::{ParamId, ParamStore};
use crate::tape::{TapeExec, Var};
use crate::tensor::Matrix;
use rand::Rng;

/// A single-direction LSTM processing a `(seq, in_dim)` var row by row.
/// Gate layout in the fused weight matrices: `[i | f | g | o]`.
#[derive(Clone)]
pub struct Lstm {
    /// Input-to-gates weights `(in_dim, 4*hidden)`.
    pub w_ih: ParamId,
    /// Hidden-to-gates weights `(hidden, 4*hidden)`.
    pub w_hh: ParamId,
    /// Fused gate bias `(1, 4*hidden)`; forget gate initialized to 1.
    pub bias: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Hidden-state width.
    pub hidden: usize,
}

impl Lstm {
    /// Create a cell with Xavier-initialized weights.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w_ih = store.register(
            format!("{name}.w_ih"),
            init::xavier_uniform(in_dim, 4 * hidden, rng),
        );
        let w_hh = store.register(
            format!("{name}.w_hh"),
            init::xavier_uniform(hidden, 4 * hidden, rng),
        );
        // Forget-gate bias starts at 1.0 (standard trick for gradient flow).
        let mut b = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        let bias = store.register(format!("{name}.bias"), b);
        Lstm {
            w_ih,
            w_hh,
            bias,
            in_dim,
            hidden,
        }
    }

    /// Returns the sequence of hidden states `(seq, hidden)`.
    pub fn forward(&self, tape: &mut impl TapeExec, store: &ParamStore, x: Var) -> Var {
        let seq = tape.value(x).rows();
        let w_ih = tape.param(store, self.w_ih);
        let w_hh = tape.param(store, self.w_hh);
        let bias = tape.param(store, self.bias);
        let mut h = tape.constant(Matrix::zeros(1, self.hidden));
        let mut c = tape.constant(Matrix::zeros(1, self.hidden));
        let mut outputs = Vec::with_capacity(seq);
        for t in 0..seq {
            let xt = tape.slice_rows(x, t, 1);
            let gx = tape.matmul(xt, w_ih);
            let gh = tape.matmul(h, w_hh);
            let gates = tape.add(gx, gh);
            let gates = tape.add_row_broadcast(gates, bias);
            let i = tape.slice_cols(gates, 0, self.hidden);
            let f = tape.slice_cols(gates, self.hidden, self.hidden);
            let g = tape.slice_cols(gates, 2 * self.hidden, self.hidden);
            let o = tape.slice_cols(gates, 3 * self.hidden, self.hidden);
            let i = tape.sigmoid(i);
            let f = tape.sigmoid(f);
            let g = tape.tanh(g);
            let o = tape.sigmoid(o);
            let fc = tape.mul(f, c);
            let ig = tape.mul(i, g);
            c = tape.add(fc, ig);
            let tc = tape.tanh(c);
            h = tape.mul(o, tc);
            outputs.push(h);
        }
        tape.concat_rows(&outputs)
    }
}

/// Bidirectional LSTM: forward and backward passes concatenated per
/// position, producing `(seq, 2*hidden)`.
#[derive(Clone)]
pub struct BiLstm {
    /// Forward-direction cell.
    pub fwd: Lstm,
    /// Backward-direction cell.
    pub bwd: Lstm,
}

impl BiLstm {
    /// Create both directional cells.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        BiLstm {
            fwd: Lstm::new(store, &format!("{name}.fwd"), in_dim, hidden, rng),
            bwd: Lstm::new(store, &format!("{name}.bwd"), in_dim, hidden, rng),
        }
    }

    /// Run both directions and concatenate per position → `(seq, 2*hidden)`.
    pub fn forward(&self, tape: &mut impl TapeExec, store: &ParamStore, x: Var) -> Var {
        let seq = tape.value(x).rows();
        let hf = self.fwd.forward(tape, store, x);
        // Reverse the sequence for the backward direction, then un-reverse
        // its outputs so positions line up.
        let rev: Vec<usize> = (0..seq).rev().collect();
        let x_rev = tape.gather_rows(x, &rev);
        let hb_rev = self.bwd.forward(tape, store, x_rev);
        let hb = tape.gather_rows(hb_rev, &rev);
        tape.concat_cols(&[hf, hb])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lstm_output_shape() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 3, 5, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(7, 3, |r, c| ((r + c) as f32).sin()));
        let y = lstm.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (7, 5));
    }

    #[test]
    fn bilstm_output_shape_and_direction_symmetry() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut store = ParamStore::new();
        let bi = BiLstm::new(&mut store, "b", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(6, 3, |r, c| ((r * 3 + c) as f32).cos()));
        let y = bi.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (6, 8));
    }

    #[test]
    fn lstm_learns_last_token_detection() {
        // Classify a sequence by whether its final row is positive — forces
        // the recurrence to carry information.
        let mut rng = StdRng::seed_from_u64(33);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "l", 1, 8, &mut rng);
        let head = crate::layers::Linear::new(&mut store, "head", 8, 2, &mut rng);
        let mut opt = AdamW::new(0.02).with_weight_decay(0.0);
        let seqs: Vec<(Vec<f32>, usize)> = (0..16)
            .map(|i| {
                let last = if i % 2 == 0 { 1.0 } else { -1.0 };
                (vec![0.1, -0.2, 0.05, last], if i % 2 == 0 { 1 } else { 0 })
            })
            .collect();
        for _ in 0..200 {
            store.zero_grads();
            let mut tape = Tape::new();
            let mut losses = Vec::new();
            for (seq, label) in &seqs {
                let x = tape.constant(Matrix::from_vec(seq.len(), 1, seq.clone()));
                let h = lstm.forward(&mut tape, &store, x);
                let hn = tape.slice_rows(h, seq.len() - 1, 1);
                let logits = head.forward(&mut tape, &store, hn);
                losses.push(tape.cross_entropy(logits, &[*label]));
            }
            let mut total = losses[0];
            for &l in &losses[1..] {
                total = tape.add(total, l);
            }
            let loss = tape.scale(total, 1.0 / losses.len() as f32);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        // Verify accuracy.
        let mut correct = 0;
        for (seq, label) in &seqs {
            let mut tape = Tape::inference();
            let x = tape.constant(Matrix::from_vec(seq.len(), 1, seq.clone()));
            let h = lstm.forward(&mut tape, &store, x);
            let hn = tape.slice_rows(h, seq.len() - 1, 1);
            let logits = head.forward(&mut tape, &store, hn);
            let lm = tape.value(logits);
            let pred = if lm.get(0, 1) > lm.get(0, 0) { 1 } else { 0 };
            if pred == *label {
                correct += 1;
            }
        }
        assert!(correct >= 15, "LSTM failed to learn: {correct}/16");
    }
}
