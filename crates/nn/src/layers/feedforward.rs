//! Position-wise feed-forward block (Linear → GELU → Linear).

use super::linear::Linear;
use crate::optim::ParamStore;
use crate::tape::{TapeExec, Var};
use rand::Rng;

/// Position-wise feed-forward block: `fc2(dropout(gelu(fc1(x))))`.
#[derive(Clone)]
pub struct FeedForward {
    /// Expansion projection (`d_model → d_ff`).
    pub fc1: Linear,
    /// Contraction projection (`d_ff → d_model`).
    pub fc2: Linear,
    /// Dropout probability applied after the activation.
    pub dropout: f32,
}

impl FeedForward {
    /// Create the block with Xavier-initialized projections.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        d_ff: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        FeedForward {
            fc1: Linear::new(store, &format!("{name}.fc1"), d_model, d_ff, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), d_ff, d_model, rng),
            dropout,
        }
    }

    /// Apply the block to `(rows, d_model)` input.
    pub fn forward(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        x: Var,
        rng: &mut impl Rng,
    ) -> Var {
        let h = self.fc1.forward(tape, store, x);
        let h = tape.gelu(h);
        let h = tape.dropout(h, self.dropout, rng);
        self.fc2.forward(tape, store, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_model_dim() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let ffn = FeedForward::new(&mut store, "f", 8, 32, 0.0, &mut rng);
        let mut tape = Tape::inference();
        let x = tape.constant(Matrix::zeros(6, 8));
        let y = ffn.forward(&mut tape, &store, x, &mut rng);
        assert_eq!(tape.value(y).shape(), (6, 8));
    }
}
