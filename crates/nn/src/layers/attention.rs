//! Multi-head scaled dot-product self-attention (encoder-style,
//! bidirectional, with an additive padding mask).

use super::linear::Linear;
use crate::optim::ParamStore;
use crate::tape::{TapeExec, Var};
use crate::tensor::Matrix;
use rand::Rng;

/// Multi-head self-attention block with learned Q/K/V/output projections.
#[derive(Clone)]
pub struct MultiHeadSelfAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection applied to the concatenated heads.
    pub wo: Linear,
    /// Number of attention heads.
    pub heads: usize,
    /// Model width (must divide evenly into `heads`).
    pub d_model: usize,
    /// Per-head width (`d_model / heads`).
    pub d_head: usize,
    /// Dropout probability applied to attention weights.
    pub dropout: f32,
}

impl MultiHeadSelfAttention {
    /// Create a block with Xavier-initialized projections.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        heads: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must divide evenly into heads");
        MultiHeadSelfAttention {
            wq: Linear::new(store, &format!("{name}.wq"), d_model, d_model, rng),
            wk: Linear::new(store, &format!("{name}.wk"), d_model, d_model, rng),
            wv: Linear::new(store, &format!("{name}.wv"), d_model, d_model, rng),
            wo: Linear::new(store, &format!("{name}.wo"), d_model, d_model, rng),
            heads,
            d_model,
            d_head: d_model / heads,
            dropout,
        }
    }

    /// Re-initialize head 0's query/key projections with an identity
    /// overlay, turning it into a *token-identity head*: its attention
    /// score between positions i and j is `x_i[0..d_head]·x_j[0..d_head]`,
    /// which (after embedding LayerNorm) is large exactly when the two
    /// positions hold the same token. This is an inductive-bias
    /// initialization, not a frozen feature — training refines it. Large
    /// pretrained LMs acquire such "duplicate token" heads from scale;
    /// a from-scratch mini-LM needs the head start.
    pub fn seed_identity_head(&self, store: &mut ParamStore) {
        for w in [self.wq.w, self.wk.w] {
            let m = store.value_mut(w);
            for i in 0..self.d_head {
                let cur = m.get(i, i);
                m.set(i, i, cur + 1.0);
            }
        }
    }

    /// Build the additive mask matrix for a sequence where positions
    /// `valid_len..seq_len` are padding: masked columns get -1e9.
    pub fn padding_mask(seq_len: usize, valid_len: usize) -> Matrix {
        Matrix::from_fn(
            seq_len,
            seq_len,
            |_, c| if c < valid_len { 0.0 } else { -1e9 },
        )
    }

    /// The additive mask row any single query sees under
    /// [`MultiHeadSelfAttention::padding_mask`]: masking depends only on
    /// the key column, so every query row of the full mask is identical.
    pub fn padding_mask_row(seq_len: usize, valid_len: usize) -> Matrix {
        Matrix::from_fn(1, seq_len, |_, c| if c < valid_len { 0.0 } else { -1e9 })
    }

    /// [`MultiHeadSelfAttention::forward`] restricted to one query row:
    /// keys and values still span the full sequence, but the query
    /// projection, scores, softmax and output projection cover row `row`
    /// only. Bit-exact with row `row` of the full forward — every kernel
    /// in the path accumulates each output row independently and in the
    /// same element order — and RNG-transparent: the dropout draws for
    /// the skipped score rows are burned at their exact stream positions
    /// ([`crate::tape::burn_draws`]), so the generator leaves this call
    /// in the state the full forward would have left it.
    pub fn forward_row(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        x: Var,
        row: usize,
        mask_row: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> Var {
        let seq = tape.value(x).rows();
        let xr = tape.slice_rows(x, row, 1);
        let q = self.wq.forward(tape, store, xr);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);
        let scale = 1.0 / (self.d_head as f32).sqrt();
        let burn = tape.is_train() && self.dropout > 0.0;

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.d_head;
            let qh = tape.slice_cols(q, off, self.d_head);
            let kh = tape.slice_cols(k, off, self.d_head);
            let vh = tape.slice_cols(v, off, self.d_head);
            let kt = tape.transpose(kh);
            let scores = tape.matmul(qh, kt);
            let scores = tape.scale(scores, scale);
            let scores = match mask_row {
                Some(m) => tape.add_const(scores, m),
                None => scores,
            };
            let attn = tape.softmax_rows(scores);
            if burn {
                crate::tape::burn_draws(rng, row * seq);
            }
            let attn = tape.dropout(attn, self.dropout, rng);
            if burn {
                crate::tape::burn_draws(rng, (seq - 1 - row) * seq);
            }
            head_outputs.push(tape.matmul(attn, vh));
        }
        let concat = tape.concat_cols(&head_outputs);
        self.wo.forward(tape, store, concat)
    }

    /// `x` is `(seq, d_model)`; `mask` (optional) is `(seq, seq)` additive.
    pub fn forward(
        &self,
        tape: &mut impl TapeExec,
        store: &ParamStore,
        x: Var,
        mask: Option<&Matrix>,
        rng: &mut impl Rng,
    ) -> Var {
        let q = self.wq.forward(tape, store, x);
        let k = self.wk.forward(tape, store, x);
        let v = self.wv.forward(tape, store, x);
        let scale = 1.0 / (self.d_head as f32).sqrt();

        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.d_head;
            let qh = tape.slice_cols(q, off, self.d_head);
            let kh = tape.slice_cols(k, off, self.d_head);
            let vh = tape.slice_cols(v, off, self.d_head);
            let kt = tape.transpose(kh);
            let scores = tape.matmul(qh, kt);
            let scores = tape.scale(scores, scale);
            let scores = match mask {
                Some(m) => tape.add_const(scores, m),
                None => scores,
            };
            let attn = tape.softmax_rows(scores);
            let attn = tape.dropout(attn, self.dropout, rng);
            head_outputs.push(tape.matmul(attn, vh));
        }
        let concat = tape.concat_cols(&head_outputs);
        self.wo.forward(tape, store, concat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tape_transpose_matches_matrix_transpose() {
        let mut tape = Tape::new();
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let x = tape.constant(m.clone());
        let t = tape.transpose(x);
        assert_eq!(tape.value(t), &m.transpose());
    }

    #[test]
    fn attention_output_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, 0.0, &mut rng);
        let mut tape = Tape::inference();
        let x = tape.constant(Matrix::from_fn(5, 8, |r, c| ((r + c) as f32).sin()));
        let y = attn.forward(&mut tape, &store, x, None, &mut rng);
        assert_eq!(tape.value(y).shape(), (5, 8));
    }

    #[test]
    fn padding_mask_blocks_padded_positions() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 4, 1, 0.0, &mut rng);

        // Two inputs identical in the first 2 (valid) positions but different
        // in the padded tail must produce identical outputs at valid rows.
        let base = Matrix::from_fn(4, 4, |r, c| ((r * 4 + c) as f32).cos());
        let mut alt = base.clone();
        for c in 0..4 {
            alt.set(3, c, 99.0);
            alt.set(2, c, -99.0);
        }
        let mask = MultiHeadSelfAttention::padding_mask(4, 2);

        let mut t1 = Tape::inference();
        let x1 = t1.constant(base);
        let y1 = t1.forward_helper(&attn, &store, x1, &mask, &mut rng);
        let mut t2 = Tape::inference();
        let x2 = t2.constant(alt);
        let y2 = t2.forward_helper(&attn, &store, x2, &mask, &mut rng);
        for r in 0..2 {
            for c in 0..4 {
                let a = t1.value(y1).get(r, c);
                let b = t2.value(y2).get(r, c);
                assert!((a - b).abs() < 1e-5, "valid row {r} changed: {a} vs {b}");
            }
        }
    }

    trait ForwardHelper {
        fn forward_helper(
            &mut self,
            attn: &MultiHeadSelfAttention,
            store: &ParamStore,
            x: Var,
            mask: &Matrix,
            rng: &mut StdRng,
        ) -> Var;
    }

    impl ForwardHelper for Tape {
        fn forward_helper(
            &mut self,
            attn: &MultiHeadSelfAttention,
            store: &ParamStore,
            x: Var,
            mask: &Matrix,
            rng: &mut StdRng,
        ) -> Var {
            attn.forward(self, store, x, Some(mask), rng)
        }
    }

    #[test]
    fn attention_gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, 0.0, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(3, 8, |r, c| {
            ((r * 8 + c) as f32 * 0.1).sin()
        }));
        let y = attn.forward(&mut tape, &store, x, None, &mut rng);
        let loss = tape.mean_all(y);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        for id in [attn.wq.w, attn.wk.w, attn.wv.w, attn.wo.w] {
            let norm = store.grad(id).frobenius_norm();
            assert!(norm > 0.0, "no gradient reached {}", store.name(id));
        }
    }
}
