//! Reusable neural-network layers built on the autograd [`Tape`](crate::tape::Tape).
//!
//! Every layer registers its parameters in a [`ParamStore`](crate::optim::ParamStore)
//! at construction and is itself stateless: `forward` records ops on a tape.

mod attention;
mod embedding;
mod feedforward;
mod linear;
mod lstm;
mod norm;

pub use attention::MultiHeadSelfAttention;
pub use embedding::Embedding;
pub use feedforward::FeedForward;
pub use linear::{Linear, Mlp};
pub use lstm::{BiLstm, Lstm};
pub use norm::LayerNorm;
