//! Affine layers and a small MLP helper.

use crate::init;
use crate::optim::{ParamId, ParamStore};
use crate::tape::{TapeExec, Var};
use crate::tensor::Matrix;
use rand::Rng;

/// `y = x W + b` with `W: (in, out)`, `b: (1, out)`.
#[derive(Clone)]
pub struct Linear {
    /// Weight matrix `(in_dim, out_dim)`.
    pub w: ParamId,
    /// Optional bias row `(1, out_dim)`.
    pub b: Option<ParamId>,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Create a layer with Xavier-initialized weights and zero bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let b = store.register(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Linear {
            w,
            b: Some(b),
            in_dim,
            out_dim,
        }
    }

    /// A linear layer without bias (used for tied heads).
    pub fn new_no_bias(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Apply the affine map to `(rows, in_dim)` input.
    pub fn forward(&self, tape: &mut impl TapeExec, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let y = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = tape.param(store, b);
                tape.add_row_broadcast(y, bv)
            }
            None => y,
        }
    }
}

/// Two-layer perceptron with ReLU, the classifier used by TDmatch* and the
/// DADER discriminator.
#[derive(Clone)]
pub struct Mlp {
    /// Hidden projection.
    pub fc1: Linear,
    /// Output projection.
    pub fc2: Linear,
}

impl Mlp {
    /// Create a two-layer ReLU MLP.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, &format!("{name}.fc1"), in_dim, hidden, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), hidden, out_dim, rng),
        }
    }

    /// Apply `fc2(relu(fc1(x)))`.
    pub fn forward(&self, tape: &mut impl TapeExec, store: &ParamStore, x: Var) -> Var {
        let h = self.fc1.forward(tape, store, x);
        let h = tape.relu(h);
        self.fc2.forward(tape, store, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamW;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 7, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(5, 4));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 7));
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "xor", 2, 16, 2, &mut rng);
        let xs = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = [0usize, 1, 1, 0];
        let mut opt = AdamW::new(0.01).with_weight_decay(0.0);
        for _ in 0..600 {
            store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            let logits = mlp.forward(&mut tape, &store, x);
            let loss = tape.cross_entropy(logits, &ys);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        let mut tape = Tape::inference();
        let x = tape.constant(xs);
        let logits = mlp.forward(&mut tape, &store, x);
        let lm = tape.value(logits);
        for (r, &y) in ys.iter().enumerate() {
            let pred = if lm.get(r, 1) > lm.get(r, 0) { 1 } else { 0 };
            assert_eq!(pred, y, "row {r} misclassified");
        }
    }
}
