//! Learnable layer normalization.

use crate::optim::{ParamId, ParamStore};
use crate::tape::{TapeExec, Var};
use crate::tensor::Matrix;

/// Row-wise LayerNorm with learnable gain and bias.
#[derive(Clone)]
pub struct LayerNorm {
    /// Learnable gain `(1, dim)`, initialized to ones.
    pub gamma: ParamId,
    /// Learnable bias `(1, dim)`, initialized to zeros.
    pub beta: ParamId,
    /// Variance stabilizer.
    pub eps: f32,
}

impl LayerNorm {
    /// Create a LayerNorm over rows of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register(format!("{name}.gamma"), Matrix::full(1, dim, 1.0));
        let beta = store.register(format!("{name}.beta"), Matrix::zeros(1, dim));
        LayerNorm {
            gamma,
            beta,
            eps: 1e-5,
        }
    }

    /// Normalize each row and apply gain/bias.
    pub fn forward(&self, tape: &mut impl TapeExec, store: &ParamStore, x: Var) -> Var {
        let gamma = tape.param(store, self.gamma);
        let beta = tape.param(store, self.beta);
        tape.layer_norm(x, gamma, beta, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn output_rows_are_standardized_at_init() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(3, 8, |r, c| {
            (r * 8 + c) as f32 * 0.37 - 2.0
        }));
        let y = ln.forward(&mut tape, &store, x);
        let ym = tape.value(y);
        for r in 0..3 {
            let mean: f32 = ym.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = ym
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }
}
