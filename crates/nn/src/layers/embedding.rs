//! Token embedding table with scatter-add backward.

use crate::init;
use crate::optim::{ParamId, ParamStore};
use crate::tape::{TapeExec, Var};
use rand::Rng;

/// A `(vocab, dim)` lookup table. The table's [`ParamId`] is public so an MLM
/// head can tie its output projection to it.
#[derive(Clone)]
pub struct Embedding {
    /// The `(vocab, dim)` lookup table parameter.
    pub table: ParamId,
    /// Vocabulary size (row count).
    pub vocab: usize,
    /// Embedding width (column count).
    pub dim: usize,
}

impl Embedding {
    /// Register a new table initialized N(0, 0.02²) (the BERT default).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.register(format!("{name}.table"), init::normal(vocab, dim, 0.02, rng));
        Embedding { table, vocab, dim }
    }

    /// Look up a sequence of token ids, producing a `(len, dim)` var.
    pub fn forward(&self, tape: &mut impl TapeExec, store: &ParamStore, ids: &[usize]) -> Var {
        debug_assert!(ids.iter().all(|&i| i < self.vocab), "token id out of vocab");
        let table = tape.param(store, self.table);
        tape.gather_rows(table, ids)
    }

    /// The raw table as a tape var (for tied output projections).
    pub fn table_var(&self, tape: &mut impl TapeExec, store: &ParamStore) -> Var {
        tape.param(store, self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shapes_and_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, &mut rng);
        let mut tape = Tape::new();
        let out = emb.forward(&mut tape, &store, &[3, 3, 7]);
        assert_eq!(tape.value(out).shape(), (3, 4));
        assert_eq!(tape.value(out).row(0), tape.value(out).row(1));
    }

    #[test]
    fn duplicate_ids_accumulate_gradient() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 5, 2, &mut rng);
        let before = store.value(emb.table).row(1).to_vec();
        let mut tape = Tape::new();
        let out = emb.forward(&mut tape, &store, &[1, 1]);
        let loss = tape.mean_all(out);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        // Each of the 4 output elements contributes 1/4; row 1 appears twice.
        let g = store.grad(emb.table);
        for c in 0..2 {
            assert!((g.get(1, c) - 0.5).abs() < 1e-6);
        }
        for r in [0usize, 2, 3, 4] {
            assert_eq!(g.row(r), &[0.0, 0.0]);
        }
        let mut opt = Sgd::new(1.0);
        opt.step(&mut store);
        let after = store.value(emb.table).row(1);
        assert!(after.iter().zip(&before).all(|(a, b)| a != b));
    }
}
