//! # em-nn
//!
//! A minimal, dependency-light neural-network substrate written for the
//! PromptEM reproduction: a dense `f32` [`tensor::Matrix`], a tape-based
//! reverse-mode autograd engine ([`tape::Tape`]), standard layers
//! (linear, embedding, layer-norm, multi-head attention, feed-forward,
//! (Bi)LSTM) and the AdamW/SGD optimizers.
//!
//! Design notes:
//! * one [`tape::Tape`] per mini-batch; parameters enter the tape once via
//!   [`tape::Tape::param`] and their gradients are folded back into the
//!   shared [`optim::ParamStore`] with
//!   [`tape::Tape::accumulate_param_grads`];
//! * everything is CPU-only `f32`; the matmul kernels autovectorize under
//!   `-C target-cpu=native`;
//! * every op has a finite-difference gradient test (see `tape::tests`).

#![warn(missing_docs)]

pub mod init;
pub mod io;
pub mod layers;
pub mod opstats;
pub mod optim;
pub mod schedule;
pub mod tape;
pub mod tensor;

pub use optim::{AdamW, ParamId, ParamStore, Sgd};
pub use schedule::LrSchedule;
pub use tape::{NoGradTape, Tape, TapeExec, Var};
pub use tensor::Matrix;
