//! Model-check the tape op-profiler's swap-drain table with `em-sched`.
//!
//! The table (`em_nn::opstats::OpStatsTable`) is the one piece of
//! shared-memory concurrency the training stack ships today: recorders
//! (`record_fwd`/`record_bwd` from op execution) race against
//! `flush_op_stats`'s swap-drain. Its correctness claim is a counting
//! invariant — **everything drained plus everything residual equals
//! everything recorded** — and these tests check it under *adversarial*
//! schedules, not just the ones the OS happens to produce:
//!
//! * the real algorithm (single-RMW `fetch_add`/`swap` words) must hold
//!   the invariant on every explored seed, and
//! * a deliberately broken word (load-then-store, the natural "read,
//!   add, write back" refactor bug) must be *caught* within the seed
//!   budget — proving the checker has the power to see the bug class,
//!   so the green run on the real table means something.
//!
//! Seed budget: 64 by default, overridable via `PROMPTEM_SCHED_SEEDS`
//! (CI pins it explicitly; wall time is a few milliseconds per seed).

use std::sync::Arc;

use em_nn::opstats::{OpRow, OpStatsTable, StatWord};
use em_sched::{explore, Config, FailureKind, Report};

/// Scheduler-instrumented word: same single-RMW protocol as the
/// production `RelaxedWord`, but every access is a scheduling point.
#[derive(Default)]
struct SchedWord(em_sched::sync::AtomicU64);

impl StatWord for SchedWord {
    fn add(&self, v: u64) {
        self.0.fetch_add(v);
    }

    fn take(&self) -> u64 {
        self.0.swap(0)
    }

    fn peek(&self) -> u64 {
        self.0.load()
    }
}

/// The seeded bug: `add` is a load-then-store, so an increment (or a
/// whole drained batch) can vanish between its two halves.
#[derive(Default)]
struct TornWord(em_sched::sync::AtomicU64);

impl StatWord for TornWord {
    fn add(&self, v: u64) {
        let cur = self.0.load();
        self.0.store(cur + v);
    }

    fn take(&self) -> u64 {
        self.0.swap(0)
    }

    fn peek(&self) -> u64 {
        self.0.load()
    }
}

fn seed_budget() -> u64 {
    std::env::var("PROMPTEM_SCHED_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drive the table the way the trainer does: two recorder tasks bang on
/// it while the root task drains mid-flight (twice) and once after both
/// recorders finished, then asserts the counting invariant.
fn check_table<W>(seeds: u64) -> Report
where
    W: StatWord + Default + Send + Sync + 'static,
{
    explore(
        Config {
            seeds,
            ..Config::default()
        },
        || {
            let table: Arc<OpStatsTable<W, 2>> = Arc::new(OpStatsTable::zeroed());
            let t1 = Arc::clone(&table);
            let t2 = Arc::clone(&table);
            let r1 = em_sched::thread::spawn(move || {
                for _ in 0..3 {
                    t1.record_fwd(0, 1, 1, 1);
                }
                t1.record_bwd(1, 1);
            });
            let r2 = em_sched::thread::spawn(move || {
                for _ in 0..3 {
                    t2.record_fwd(0, 1, 1, 1);
                }
                t2.record_bwd(1, 1);
            });
            // Two mid-flight drains race the recorders, like flush_op_stats
            // at an epoch boundary while ops still run.
            let mut total = [OpRow::default(), OpRow::default()];
            for _ in 0..2 {
                for (op, acc) in total.iter_mut().enumerate() {
                    *acc = acc.merged(&table.drain(op));
                }
            }
            r1.join();
            r2.join();
            // Final drain: whatever the mid-flight drains missed.
            for (op, acc) in total.iter_mut().enumerate() {
                *acc = acc.merged(&table.drain(op));
            }
            assert_eq!(
                total[0],
                OpRow {
                    fwd_calls: 6,
                    fwd_ns: 6,
                    bwd_calls: 0,
                    bwd_ns: 0,
                    elems: 6,
                    bytes: 6,
                },
                "op 0: drained + residual must equal recorded"
            );
            assert_eq!(
                (total[1].bwd_calls, total[1].bwd_ns),
                (2, 2),
                "op 1: backward counts lost or double-counted"
            );
        },
    )
}

#[test]
fn swap_drain_table_passes_the_checker() {
    check_table::<SchedWord>(seed_budget()).assert_ok();
}

#[test]
fn torn_table_fails_within_bounded_seeds() {
    let budget = seed_budget();
    let report = check_table::<TornWord>(budget);
    let failure = report
        .failure
        .unwrap_or_else(|| panic!("checker missed the lost update within {budget} seeds"));
    assert!(
        matches!(&failure.kind, FailureKind::Panic { message, .. }
            if message.contains("must equal recorded") || message.contains("lost or double-counted")),
        "unexpected failure: {failure}"
    );
    assert!(
        report.seeds_run <= budget,
        "exploration ran past its budget"
    );
    // The failing seed is a deterministic reproducer.
    let again = check_table::<TornWord>(1_u64.max(failure.seed + 1));
    assert!(
        again.failure.is_some(),
        "replaying the seed range no longer reproduces the bug"
    );
}
