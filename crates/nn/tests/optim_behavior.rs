//! Behavioral tests of the optimizers beyond convergence: exact first-step
//! values, moment bookkeeping, and interaction with gradient clipping.

use em_nn::{AdamW, Matrix, ParamStore, Sgd, Tape};

#[test]
fn adamw_first_step_magnitude_is_lr() {
    // With bias correction, the very first AdamW step moves each weight by
    // almost exactly lr * sign(grad) (for eps << |grad|, wd = 0).
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::zeros(1, 3));
    store
        .grad_mut(w)
        .data_mut()
        .copy_from_slice(&[0.5, -2.0, 10.0]);
    let mut opt = AdamW::new(0.01).with_weight_decay(0.0);
    opt.step(&mut store);
    for (&v, &g) in store
        .value(w)
        .data()
        .iter()
        .zip([0.5f32, -2.0, 10.0].iter())
    {
        let expected = -0.01 * g.signum();
        assert!((v - expected).abs() < 1e-4, "step {v} vs {expected}");
    }
    assert_eq!(opt.steps(), 1);
}

#[test]
fn sgd_step_is_linear_in_gradient() {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::zeros(1, 2));
    store.grad_mut(w).data_mut().copy_from_slice(&[1.0, -3.0]);
    let mut opt = Sgd::new(0.1);
    opt.step(&mut store);
    assert_eq!(store.value(w).data(), &[-0.1, 0.3]);
}

#[test]
fn zero_grads_resets_accumulation() {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::zeros(2, 2));
    // Two backward passes accumulate.
    for _ in 0..2 {
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let loss = tape.mean_all(wv);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
    }
    let sum1: f32 = store.grad(w).data().iter().sum();
    assert!(
        (sum1 - 2.0).abs() < 1e-6,
        "expected accumulation, got {sum1}"
    );
    store.zero_grads();
    assert_eq!(store.grad(w).data().iter().sum::<f32>(), 0.0);
}

#[test]
fn clip_then_step_bounds_update_norm() {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::zeros(1, 4));
    store
        .grad_mut(w)
        .data_mut()
        .copy_from_slice(&[100.0, -100.0, 100.0, -100.0]);
    store.clip_grad_norm(1.0);
    let mut opt = Sgd::new(1.0);
    opt.step(&mut store);
    let norm: f32 = store
        .value(w)
        .data()
        .iter()
        .map(|v| v * v)
        .sum::<f32>()
        .sqrt();
    assert!(norm <= 1.0 + 1e-5, "clipped update too large: {norm}");
}

#[test]
fn adamw_decay_applies_even_with_zero_grad() {
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::full(1, 1, 4.0));
    let mut opt = AdamW::new(0.1).with_weight_decay(0.1);
    opt.step(&mut store);
    // value -= lr * wd * value = 4.0 - 0.1*0.1*4.0 = 3.96
    let v = store.value(w).data()[0];
    assert!((v - 3.96).abs() < 1e-5, "{v}");
}

#[test]
fn param_store_clone_resets_moments() {
    // A cloned store starts optimizer state fresh: the first AdamW step on
    // the clone has full first-step magnitude again.
    let mut store = ParamStore::new();
    let w = store.register("w", Matrix::zeros(1, 1));
    let mut opt = AdamW::new(0.01).with_weight_decay(0.0);
    for _ in 0..5 {
        store.grad_mut(w).data_mut()[0] = 1.0;
        opt.step(&mut store);
    }
    let mut snap = store.clone();
    let mut opt2 = AdamW::new(0.01).with_weight_decay(0.0);
    let before = snap.value(w).data()[0];
    snap.grad_mut(w).data_mut()[0] = 1.0;
    opt2.step(&mut snap);
    let delta = (snap.value(w).data()[0] - before).abs();
    assert!((delta - 0.01).abs() < 1e-4, "first step on clone: {delta}");
}
