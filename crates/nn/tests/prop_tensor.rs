//! Property-based tests of the tensor kernels and autograd invariants.

use em_nn::{Matrix, Tape};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
        c in small_matrix(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involutive(a in small_matrix(5, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_nt_matches_explicit(a in small_matrix(3, 4), b in small_matrix(5, 4)) {
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_is_a_distribution(a in small_matrix(4, 6)) {
        let s = a.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_finite(
        logits in small_matrix(3, 5),
        targets in proptest::collection::vec(0usize..5, 3),
    ) {
        let mut tape = Tape::new();
        let x = tape.constant(logits);
        let loss = tape.cross_entropy(x, &targets);
        let v = tape.value(loss).item();
        prop_assert!(v.is_finite());
        prop_assert!(v >= 0.0);
    }

    #[test]
    fn backward_never_produces_nan(
        x0 in small_matrix(3, 4),
        w0 in small_matrix(4, 3),
    ) {
        let mut tape = Tape::new();
        let x = tape.constant(x0);
        let w = tape.constant(w0);
        let h = tape.matmul(x, w);
        let g = tape.gelu(h);
        let s = tape.softmax_rows(g);
        let loss = tape.nll_probs(s, &[0, 1, 2]);
        tape.backward(loss);
        prop_assert!(!tape.grad(x).has_non_finite());
        prop_assert!(!tape.grad(w).has_non_finite());
    }

    #[test]
    fn gather_scatter_roundtrip_grad(idx in proptest::collection::vec(0usize..4, 1..6)) {
        // Sum of gathered rows: each source row's gradient equals its
        // selection count / total elements.
        let src = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let mut tape = Tape::new();
        let s = tape.constant(src);
        let g = tape.gather_rows(s, &idx);
        let loss = tape.mean_all(g);
        tape.backward(loss);
        let grad = tape.grad(s);
        let denom = (idx.len() * 2) as f32;
        for r in 0..4 {
            let count = idx.iter().filter(|&&i| i == r).count() as f32;
            for c in 0..2 {
                prop_assert!((grad.get(r, c) - count / denom).abs() < 1e-5);
            }
        }
    }
}
