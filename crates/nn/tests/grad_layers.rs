//! Finite-difference gradient checks for composite layers (attention,
//! LSTM, feed-forward): the unit tests in `tape.rs` cover individual ops;
//! these cover the composition, catching wiring errors between ops.

use em_nn::layers::{BiLstm, FeedForward, Linear, Lstm, MultiHeadSelfAttention};
use em_nn::{Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Numerically verify d loss / d param for the first few entries of a
/// parameter against the analytic gradient.
fn check_param_grad(
    store: &mut ParamStore,
    param: em_nn::ParamId,
    forward: &mut dyn FnMut(&mut Tape, &ParamStore) -> Var,
    tolerance: f32,
) {
    // Analytic gradient.
    store.zero_grads();
    let mut tape = Tape::inference();
    let loss = forward(&mut tape, store);
    tape.backward(loss);
    tape.accumulate_param_grads(store);
    let analytic = store.grad(param).clone();

    let n = analytic.len().min(6);
    let eps = 1e-3f32;
    for k in 0..n {
        let orig = store.value(param).data()[k];
        store.value_mut(param).data_mut()[k] = orig + eps;
        let mut tp = Tape::inference();
        let fp = {
            let l = forward(&mut tp, store);
            tp.value(l).item()
        };
        store.value_mut(param).data_mut()[k] = orig - eps;
        let mut tm = Tape::inference();
        let fm = {
            let l = forward(&mut tm, store);
            tm.value(l).item()
        };
        store.value_mut(param).data_mut()[k] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.data()[k];
        assert!(
            (a - numeric).abs() < tolerance * (1.0 + numeric.abs()),
            "param {} entry {k}: analytic {a}, numeric {numeric}",
            store.name(param)
        );
    }
}

fn probe_input(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * 0.7).sin() * 0.5)
}

#[test]
fn attention_projection_gradients_are_correct() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let attn = MultiHeadSelfAttention::new(&mut store, "a", 8, 2, 0.0, &mut rng);
    let x = probe_input(4, 8);
    for param in [attn.wq.w, attn.wk.w, attn.wv.w, attn.wo.w] {
        let attn_ref = &attn;
        let x_ref = x.clone();
        let mut rng2 = StdRng::seed_from_u64(2);
        check_param_grad(
            &mut store,
            param,
            &mut move |tape, store| {
                let xv = tape.constant(x_ref.clone());
                let y = attn_ref.forward(tape, store, xv, None, &mut rng2);
                tape.mean_all(y)
            },
            3e-2,
        );
    }
}

#[test]
fn lstm_gate_gradients_are_correct() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let lstm = Lstm::new(&mut store, "l", 3, 4, &mut rng);
    let x = probe_input(5, 3);
    for param in [lstm.w_ih, lstm.w_hh, lstm.bias] {
        let lstm_ref = &lstm;
        let x_ref = x.clone();
        check_param_grad(
            &mut store,
            param,
            &mut move |tape, store| {
                let xv = tape.constant(x_ref.clone());
                let h = lstm_ref.forward(tape, store, xv);
                tape.mean_all(h)
            },
            3e-2,
        );
    }
}

#[test]
fn bilstm_both_directions_receive_gradient() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let bi = BiLstm::new(&mut store, "b", 3, 4, &mut rng);
    let x = probe_input(5, 3);
    store.zero_grads();
    let mut tape = Tape::inference();
    let xv = tape.constant(x);
    let h = bi.forward(&mut tape, &store, xv);
    let loss = tape.mean_all(h);
    tape.backward(loss);
    tape.accumulate_param_grads(&mut store);
    assert!(store.grad(bi.fwd.w_ih).frobenius_norm() > 0.0);
    assert!(store.grad(bi.bwd.w_ih).frobenius_norm() > 0.0);
}

#[test]
fn feedforward_gradients_are_correct() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let ffn = FeedForward::new(&mut store, "f", 6, 12, 0.0, &mut rng);
    let x = probe_input(3, 6);
    for param in [ffn.fc1.w, ffn.fc2.w, ffn.fc1.b.unwrap(), ffn.fc2.b.unwrap()] {
        let ffn_ref = &ffn;
        let x_ref = x.clone();
        let mut rng2 = StdRng::seed_from_u64(6);
        check_param_grad(
            &mut store,
            param,
            &mut move |tape, store| {
                let xv = tape.constant(x_ref.clone());
                let y = ffn_ref.forward(tape, store, xv, &mut rng2);
                tape.mean_all(y)
            },
            2e-2,
        );
    }
}

#[test]
fn linear_bias_gradient_is_row_summed() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
    store.zero_grads();
    let mut tape = Tape::inference();
    let x = tape.constant(probe_input(4, 3));
    let y = lin.forward(&mut tape, &store, x);
    let loss = tape.mean_all(y);
    tape.backward(loss);
    tape.accumulate_param_grads(&mut store);
    // d mean(y) / d b[j] = 4 rows * (1/8) per element = 0.5 each.
    let g = store.grad(lin.b.unwrap());
    for &v in g.data() {
        assert!((v - 0.5).abs() < 1e-5, "{v}");
    }
}
