//! Kill-and-resume chaos test, out of process.
//!
//! Three runs of the real `promptem` binary over the same tiny dataset:
//!
//! 1. **base** — uninterrupted, traced;
//! 2. **killed** — same seed, checkpointing on, with a `batch:panic@12`
//!    failpoint crashing the process mid-pretrain (must exit nonzero);
//! 3. **resumed** — `--resume` from the killed run's checkpoint directory,
//!    with a `ckpt_write:io_err@1` failpoint so the first checkpoint write
//!    also exercises the bounded-retry path.
//!
//! The resumed run must print the *same test scores* as the base run, and
//! its trace must pass `promptem report --diff` against the base trace —
//! that diff gates wall/heap under tolerances and optimizer steps and F1
//! exactly, which is the paper-fidelity claim: a crash costs you wall
//! time, never reproducibility.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    std::fs::create_dir_all(dir).expect("fixture dir");
    let mut csv = String::from("name,city,year\n");
    let mut jsonl = String::new();
    let names = ["blue cafe", "red diner", "green grill", "gold bistro"];
    let cities = ["boston", "austin", "denver", "madison"];
    for i in 0..24 {
        let name = names[i % 4];
        let city = cities[(i / 4) % 4];
        let year = 1990 + i;
        csv.push_str(&format!("{name} number {i},{city},{year}\n"));
        jsonl.push_str(&format!(
            "{{\"title\": \"{name} number {i}\", \"place\": \"{city}\", \"opened\": {year}}}\n"
        ));
    }
    let mut labels = String::from("left,right,label\n");
    for i in 0..24 {
        labels.push_str(&format!("{i},{i},1\n"));
        labels.push_str(&format!("{i},{},0\n", (i + 4) % 24));
    }
    let left = dir.join("left.csv");
    let right = dir.join("right.jsonl");
    let lab = dir.join("labels.csv");
    std::fs::write(&left, csv).expect("left");
    std::fs::write(&right, jsonl).expect("right");
    std::fs::write(&lab, labels).expect("labels");
    (left, right, lab)
}

/// The shared `match` invocation; every run uses the same seed and budget.
fn match_cmd(left: &Path, right: &Path, labels: &Path, trace: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_promptem"));
    cmd.args(["match", "--left"])
        .arg(left)
        .arg("--right")
        .arg(right)
        .arg("--labels")
        .arg(labels)
        .args(["--seed", "7", "--pretrain-steps", "20", "--epochs", "2"])
        .args(["--trace", "off", "--metrics-out"])
        .arg(trace)
        .env_remove("PROMPTEM_FAILPOINTS");
    cmd
}

fn scores_line(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .find(|l| l.starts_with("test scores:"))
        .unwrap_or_else(|| panic!("no scores in output: {}", String::from_utf8_lossy(stdout)))
        .to_string()
}

#[test]
fn killed_run_resumes_to_the_same_result() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("crash-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let (left, right, labels) = fixture(&dir);
    let ckpt_dir = dir.join("ckpt");
    let base_trace = dir.join("base.jsonl");
    let resumed_trace = dir.join("resumed.jsonl");

    // Run 1: uninterrupted reference.
    let base = match_cmd(&left, &right, &labels, &base_trace)
        .output()
        .expect("spawn base run");
    assert!(
        base.status.success(),
        "base run failed:\n{}",
        String::from_utf8_lossy(&base.stderr)
    );
    let base_scores = scores_line(&base.stdout);

    // Run 2: same seed, checkpointing every 5 steps, crashed by a
    // failpoint on the 12th batch (mid-pretrain, past the tag-10 save).
    let killed = match_cmd(&left, &right, &labels, &dir.join("killed.jsonl"))
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .args(["--checkpoint-every", "5"])
        .env("PROMPTEM_FAILPOINTS", "batch:panic@12")
        .output()
        .expect("spawn killed run");
    assert!(
        !killed.status.success(),
        "the batch:panic@12 failpoint did not kill the run"
    );
    assert!(
        String::from_utf8_lossy(&killed.stderr).contains("injected crash"),
        "crash was not the injected one:\n{}",
        String::from_utf8_lossy(&killed.stderr)
    );
    assert!(
        std::fs::read_dir(ckpt_dir.join("pretrain"))
            .map(|d| d.count() > 0)
            .unwrap_or(false),
        "killed run left no pretrain checkpoints behind"
    );

    // Run 3: resume. The io_err failpoint makes the first checkpoint
    // write fail once; the bounded retry must absorb it.
    let resumed = match_cmd(&left, &right, &labels, &resumed_trace)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .args(["--checkpoint-every", "5", "--resume"])
        .env("PROMPTEM_FAILPOINTS", "ckpt_write:io_err@1")
        .output()
        .expect("spawn resumed run");
    assert!(
        resumed.status.success(),
        "resumed run failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        scores_line(&resumed.stdout),
        base_scores,
        "resume did not reproduce the uninterrupted run's test scores"
    );

    // The perf/quality gate: optimizer steps and F1 must match exactly
    // (the restore event banks the pre-crash work), wall/heap within
    // tolerance. A generous wall tolerance keeps slow CI machines out of
    // the assertion; step/F1 equality is the invariant under test.
    let diff = Command::new(env!("CARGO_BIN_EXE_promptem"))
        .args(["report", "--diff"])
        .arg(&base_trace)
        .arg(&resumed_trace)
        .args(["--max-wall-frac", "3.0", "--max-heap-frac", "3.0"])
        .output()
        .expect("spawn report --diff");
    assert!(
        diff.status.success(),
        "report --diff flagged the resumed run:\n{}\n{}",
        String::from_utf8_lossy(&diff.stdout),
        String::from_utf8_lossy(&diff.stderr)
    );

    // The resumed trace must record both the restore and the absorbed
    // I/O retry.
    let trace = std::fs::read_to_string(&resumed_trace).expect("resumed trace");
    assert!(
        trace.contains("\"type\":\"ckpt_restore\"") || trace.contains("\"type\": \"ckpt_restore\""),
        "resumed trace has no ckpt_restore event"
    );
    assert!(
        trace.contains("ckpt_write"),
        "resumed trace has no io_retry event for the injected write failure"
    );

    // Second cycle: crash *inside the self-train loop* (batch 35 lands in
    // the student's training, after the teacher-done and selection-done
    // stage checkpoints), then resume. The resumed run restores the
    // teacher's result and the recorded pseudo-label decisions from the
    // checkpoint instead of retraining, and must still land on the same
    // scores and pass the same gate.
    let ckpt2 = dir.join("ckpt-lst");
    let killed2 = match_cmd(&left, &right, &labels, &dir.join("killed2.jsonl"))
        .arg("--checkpoint-dir")
        .arg(&ckpt2)
        .args(["--checkpoint-every", "5"])
        .env("PROMPTEM_FAILPOINTS", "batch:panic@35")
        .output()
        .expect("spawn mid-LST killed run");
    assert!(
        !killed2.status.success(),
        "the batch:panic@35 failpoint did not kill the run"
    );
    assert!(
        std::fs::read_dir(ckpt2.join("selftrain"))
            .map(|d| d.count() > 0)
            .unwrap_or(false),
        "mid-LST crash left no selftrain stage checkpoints behind"
    );

    let resumed2_trace = dir.join("resumed2.jsonl");
    let resumed2 = match_cmd(&left, &right, &labels, &resumed2_trace)
        .arg("--checkpoint-dir")
        .arg(&ckpt2)
        .args(["--checkpoint-every", "5", "--resume"])
        .output()
        .expect("spawn mid-LST resumed run");
    assert!(
        resumed2.status.success(),
        "mid-LST resumed run failed:\n{}",
        String::from_utf8_lossy(&resumed2.stderr)
    );
    assert_eq!(
        scores_line(&resumed2.stdout),
        base_scores,
        "mid-LST resume did not reproduce the uninterrupted run's test scores"
    );
    let diff2 = Command::new(env!("CARGO_BIN_EXE_promptem"))
        .args(["report", "--diff"])
        .arg(&base_trace)
        .arg(&resumed2_trace)
        .args(["--max-wall-frac", "3.0", "--max-heap-frac", "3.0"])
        .output()
        .expect("spawn second report --diff");
    assert!(
        diff2.status.success(),
        "report --diff flagged the mid-LST resumed run:\n{}\n{}",
        String::from_utf8_lossy(&diff2.stdout),
        String::from_utf8_lossy(&diff2.stderr)
    );
}

#[test]
fn ckpt_inspect_reads_what_training_wrote() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("ckpt-inspect");
    let _ = std::fs::remove_dir_all(&dir);
    let (left, right, labels) = fixture(&dir);
    let ckpt_dir = dir.join("ckpt");

    let run = match_cmd(&left, &right, &labels, &dir.join("t.jsonl"))
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .args(["--checkpoint-every", "5", "--no-lst"])
        .output()
        .expect("spawn run");
    assert!(
        run.status.success(),
        "run failed:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );

    let inspect = Command::new(env!("CARGO_BIN_EXE_promptem"))
        .args(["ckpt", "inspect"])
        .arg(ckpt_dir.join("pretrain"))
        .output()
        .expect("spawn ckpt inspect");
    assert!(
        inspect.status.success(),
        "ckpt inspect failed:\n{}",
        String::from_utf8_lossy(&inspect.stderr)
    );
    let out = String::from_utf8_lossy(&inspect.stdout);
    for needle in ["sections", "params", "adam", "cursor"] {
        assert!(
            needle.is_empty() || out.contains(needle),
            "missing {needle} in:\n{out}"
        );
    }
}
