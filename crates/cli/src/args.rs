//! Tiny flag parser: `--key value` pairs plus positional arguments. No
//! external dependencies.

use std::collections::HashMap;

#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse a raw argument list (without the program name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                if name.is_empty() {
                    return Err("bare '--' is not supported".into());
                }
                // A flag followed by another flag or nothing is a switch.
                match iter.next_if(|next| !next.starts_with("--")) {
                    Some(value) => {
                        if out.flags.insert(name.to_string(), value).is_some() {
                            return Err(format!("duplicate flag --{name}"));
                        }
                    }
                    None => out.switches.push(name.to_string()),
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
            None => Ok(default),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(&["match", "--left", "a.csv", "--seed", "7", "--verbose"]);
        assert_eq!(a.positional, vec!["match"]);
        assert_eq!(a.get("left"), Some("a.csv"));
        assert_eq!(a.get_parse::<u64>("seed", 0).unwrap(), 7);
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = parse(&["match"]);
        assert!(a.require("left").is_err());
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(Args::parse(["--x", "1", "--x", "2"].map(String::from)).is_err());
    }

    #[test]
    fn default_when_absent() {
        let a = parse(&[]);
        assert_eq!(a.get_parse::<usize>("epochs", 10).unwrap(), 10);
    }
}
