//! `promptem` — run low-resource generalized entity matching on your own
//! files.
//!
//! ```text
//! promptem stats --left left.csv --right right.jsonl
//! promptem match --left left.csv --right right.jsonl \
//!     --labels labels.csv [--output predictions.csv] [--seed 42] \
//!     [--template t1|t2] [--mode hard|continuous] [--no-lst]
//! ```
//!
//! `labels.csv` columns: `left,right,label` — 0-based row indices into the
//! two tables and a 0/1 label. A fraction of the labels is held out for
//! validation; the remaining candidate pairs of the blocker become the
//! unlabeled pool for self-training.

mod args;
mod serve_cmd;

#[cfg(test)]
mod cli_e2e;

use args::Args;
use em_data::blocking::{record_tokens, TokenIndex};
use em_data::ingest;
use em_data::pair::{three_way_split, GemDataset, LabeledPair, Pair};
use em_data::record::Table;
use em_lm::prompt::{PromptMode, TemplateId};
use promptem::pipeline::{run, PromptEmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

/// Track live/peak heap so span-close events and `promptem report` carry
/// real memory numbers instead of zeros.
#[global_allocator]
static ALLOC: em_obs::alloc::CountingAllocator = em_obs::alloc::CountingAllocator;

/// A CLI failure: the message, plus whether the usage blurb would help.
/// Flag mistakes want the usage text; a perf-regression verdict or a
/// trace parse error does not.
#[derive(Debug)]
pub(crate) struct Failure {
    message: String,
    usage: bool,
}

impl Failure {
    /// A failure where usage text is just noise.
    fn plain(message: impl Into<String>) -> Failure {
        Failure {
            message: message.into(),
            usage: false,
        }
    }

    /// Substring check mirroring `str::contains`, for test assertions.
    #[cfg(test)]
    pub(crate) fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure {
            message,
            usage: true,
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.usage {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  promptem stats --left <file> --right <file>
  promptem match --left <file> --right <file> --labels <csv>
                 [--output <csv>] [--seed <u64>] [--rate <0..1>]
                 [--template t1|t2] [--mode hard|continuous] [--no-lst]
                 [--pretrain-steps <n>] [--epochs <n>]
                 [--checkpoint-dir <dir>] [--checkpoint-every <n>] [--resume]
  promptem serve --left <file> --right <file> --labels <csv>
                 [--port <p>] [--port-file <path>] [--workers <n>]
                 [--batch-max <n>] [--queue-cap <n>] [--inflight-cap <n>]
                 [--deadline-ms <n>] [--wedge-ms <n>]
                 (plus every training flag `match` takes)
  promptem drive --pairs <csv> (--addr <host:port> | --port-file <path>)
                 [--connections <n>] [--out <csv>] [--shutdown]
  promptem ckpt inspect <checkpoint-or-dir>
  promptem export --benchmark <name> --dir <path> [--seed <u64>] [--full]
  promptem report <trace.jsonl> [--top <n>] [--bench-out <path.json>]
  promptem report --diff <base.jsonl> <new.jsonl>
                 [--max-wall-frac <f>] [--max-heap-frac <f>]
                 [--max-steps-frac <f>] [--max-f1-drop <points>]
                 [--max-op-wall-frac <f>] [--max-op-bytes-frac <f>]
                 [--canonical]   (byte-exact equivalence after stripping
                                  timing/heap fields, instead of thresholds)
  promptem top <trace.jsonl> [--interval-ms <n>] [--top <n>]
                 [--once] [--max-seconds <n>]
  promptem history <ledger.jsonl> [--append <trace.jsonl>] [--gate]
                 [--window <k>] [--max-wall-frac <f>] [--max-heap-frac <f>]
                 [--max-f1-drop <points>]

global flags:
  --trace <off|error|warn|info|debug|trace>   stderr verbosity (default info;
                                              PROMPTEM_LOG overrides default)
  --metrics-out <path.jsonl>                  write a structured JSONL trace
  --sanitize                                  audit the autograd graph and check
                                              every value/gradient for NaN/Inf
                                              each step (PROMPTEM_SANITIZE=1)
  --op-profile                                accumulate per-op tape counters and
                                              flush op_stats events at stage
                                              boundaries (PROMPTEM_OP_PROFILE=1)
  --progress-every <n>                        emit a `progress` heartbeat every n
                                              batches/steps/passes in each training
                                              phase (PROMPTEM_PROGRESS_EVERY; 0 off)
  --threads <n>                               worker threads for pseudo-label
                                              scoring (PROMPTEM_THREADS; default 1;
                                              results are bit-identical for any n)

file formats by extension: .csv (relational), .jsonl/.ndjson (semi-structured),
anything else (one textual record per line).
benchmark names: REL-HETER SEMI-HOMO SEMI-HETER SEMI-REL SEMI-TEXT-c
SEMI-TEXT-w REL-TEXT GEO-HETER";

fn run_cli(raw: Vec<String>) -> Result<(), Failure> {
    let args = Args::parse(raw)?;
    init_telemetry(&args)?;
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("stats") => cmd_stats(&args).map_err(Failure::from),
        Some("match") => cmd_match(&args).map_err(Failure::from),
        Some("serve") => serve_cmd::cmd_serve(&args).map_err(Failure::from),
        Some("drive") => serve_cmd::cmd_drive(&args).map_err(Failure::from),
        Some("export") => cmd_export(&args).map_err(Failure::from),
        Some("report") => cmd_report(&args),
        Some("top") => cmd_top(&args),
        Some("history") => cmd_history(&args),
        Some("ckpt") => cmd_ckpt(&args),
        Some(other) => Err(Failure::from(format!("unknown command '{other}'"))),
        None => Err(Failure::from("no command given".to_string())),
    };
    em_obs::shutdown();
    result
}

/// Wire the em-obs sinks: `--trace` (falling back to `PROMPTEM_LOG`, then
/// to `info` so progress messages stay visible by default) and
/// `--metrics-out` for the structured JSONL trace.
fn init_telemetry(args: &Args) -> Result<(), String> {
    let default = Some(em_obs::Level::Info);
    let level = match args.get("trace") {
        Some(raw) => em_obs::parse_filter(raw, default).map_err(|e| format!("--trace: {e}"))?,
        None => match std::env::var("PROMPTEM_LOG") {
            Ok(raw) => {
                em_obs::parse_filter(&raw, default).map_err(|e| format!("PROMPTEM_LOG: {e}"))?
            }
            Err(_) => default,
        },
    };
    em_obs::init_stderr(level);
    if let Some(path) = args.get("metrics-out") {
        em_obs::init_jsonl(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    }
    if args.switch("sanitize") {
        em_nn::tape::set_sanitize(true);
    }
    if args.switch("op-profile") {
        em_nn::tape::set_op_profile(true);
    }
    if args.get("threads").is_some() {
        let n: usize = args.get_parse("threads", 1)?;
        if n == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        em_pool::set_threads(n);
    }
    em_obs::set_progress_every(args.get_parse("progress-every", 0u64)?);
    Ok(())
}

fn load_table(path: &str, name: &str) -> Result<Table, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let ext = std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("txt");
    ingest::table_from_extension(name, ext, &body).map_err(|e| format!("{path}: {e}"))
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let left = load_table(args.require("left")?, "left")?;
    let right = load_table(args.require("right")?, "right")?;
    for t in [&left, &right] {
        println!(
            "{}: {} records, format {}, mean arity {:.2}",
            t.name,
            t.len(),
            t.format,
            t.mean_arity()
        );
    }
    // Blocking preview: how many candidate pairs a token blocker yields.
    let index = TokenIndex::build(&right.records, right.format);
    let mut candidates = 0usize;
    for r in &left.records {
        candidates += index
            .candidates(&record_tokens(r, left.format), 2, None)
            .len()
            .min(10);
    }
    println!("token blocker: ~{candidates} candidate pairs (top-10 per left record)");
    Ok(())
}

/// Everything `match` and `serve` share ahead of training: load the two
/// tables and the labels, carve the splits, augment the unlabeled pool
/// from the token blocker, and resolve the pipeline config flags.
fn prepare_run(args: &Args) -> Result<(GemDataset, PromptEmConfig), String> {
    let left = load_table(args.require("left")?, "left")?;
    let right = load_table(args.require("right")?, "right")?;
    let labels_path = args.require("labels")?;
    let labels_body =
        std::fs::read_to_string(labels_path).map_err(|e| format!("{labels_path}: {e}"))?;
    let labeled = parse_labels(&labels_body, left.len(), right.len())?;
    if labeled.len() < 8 {
        return Err(format!(
            "need at least 8 labeled pairs, found {}",
            labeled.len()
        ));
    }

    let seed: u64 = args.get_parse("seed", 42)?;
    let rate: f64 = args.get_parse("rate", 0.6)?;
    let mut rng = StdRng::seed_from_u64(seed);

    // Splits: valid/test from the labels, train = `rate` of the remainder,
    // leftover labeled pairs (labels hidden) + blocker candidates = D_U.
    let (mut pool, valid, test) = three_way_split(labeled, 0.2, 0.2, &mut rng);
    let want = (((pool.len() as f64) * rate).round() as usize).min(pool.len());
    let (train, mut unlabeled) = em_data::pair::stratified_split(&mut pool, want, &mut rng);
    // Augment the unlabeled pool with blocker candidates not already labeled.
    let index = TokenIndex::build(&right.records, right.format);
    let known: std::collections::HashSet<(usize, usize)> = train
        .iter()
        .chain(&valid)
        .chain(&test)
        .chain(&unlabeled)
        .map(|lp| (lp.pair.left, lp.pair.right))
        .collect();
    for (i, r) in left.records.iter().enumerate() {
        for (j, _) in index
            .candidates(&record_tokens(r, left.format), 3, None)
            .into_iter()
            .take(2)
        {
            if !known.contains(&(i, j)) {
                // Unknown gold label: recorded as negative, but the gold is
                // only used for audit metrics the CLI does not print.
                unlabeled.push(LabeledPair {
                    pair: Pair { left: i, right: j },
                    label: false,
                });
            }
        }
    }

    let name = "cli".to_string();
    let rate = train.len() as f64
        / (train.len() + valid.len() + test.len() + unlabeled.len()).max(1) as f64;
    let ds = GemDataset {
        name: name.clone(),
        domain: "user".into(),
        left,
        right,
        train,
        valid,
        test,
        unlabeled,
        rate,
    };

    let mut cfg = PromptEmConfig {
        seed,
        ..Default::default()
    };
    cfg.prompt.template = match args.get("template") {
        Some("t1") => TemplateId::T1,
        Some("t2") | None => TemplateId::T2,
        Some(other) => return Err(format!("unknown template '{other}'")),
    };
    cfg.prompt.mode = match args.get("mode") {
        Some("hard") => PromptMode::Hard,
        Some("continuous") | None => PromptMode::Continuous,
        Some(other) => return Err(format!("unknown mode '{other}'")),
    };
    cfg.use_lst = !args.switch("no-lst");
    // Budget overrides (useful for quick runs and tests).
    cfg.pretrain.max_steps = args.get_parse("pretrain-steps", cfg.pretrain.max_steps)?;
    cfg.lst.teacher.epochs = args.get_parse("epochs", cfg.lst.teacher.epochs)?;
    cfg.lst.student.epochs = args.get_parse("epochs", cfg.lst.student.epochs)?;
    if let Some(dir) = args.get("checkpoint-dir") {
        cfg.resilience = Some(em_resilience::ResilienceCfg {
            dir: dir.into(),
            every: args.get_parse("checkpoint-every", 25u64)?,
            resume: args.switch("resume"),
        });
    } else if args.switch("resume") || args.get("checkpoint-every").is_some() {
        return Err("--resume/--checkpoint-every need --checkpoint-dir".to_string());
    }
    Ok((ds, cfg))
}

/// Trace identity plus the training banner, shared by `match` and
/// `serve`. `run_meta` must be the first line of the trace so
/// `promptem history` can key the run before any other event lands.
fn announce_run(ds: &GemDataset, cfg: &PromptEmConfig) {
    em_obs::set_run_seed(cfg.seed);
    em_obs::run_meta(cfg.seed, config_fingerprint(cfg), em_obs::detect_git_sha());
    em_obs::info(format!(
        "training on {} labels ({} valid / {} test held out, {} unlabeled)...",
        ds.train.len(),
        ds.valid.len(),
        ds.test.len(),
        ds.unlabeled.len()
    ));
}

fn cmd_match(args: &Args) -> Result<(), String> {
    let (ds, cfg) = prepare_run(args)?;
    announce_run(&ds, &cfg);
    let result = {
        let _span = em_obs::span_with(em_obs::names::SPAN_MATCH, ds.name.clone());
        let result = run(&ds, &cfg);
        // Catch any tape ops not flushed at an inner stage boundary.
        em_nn::tape::flush_op_stats();
        result
    };
    println!("test scores: {}", result.scores);
    println!(
        "pretrain {:.1}s, tune {:.1}s, pseudo-labels {:?}, pruned {}",
        result.pretrain_secs, result.train_secs, result.lst.pseudo_selected, result.lst.pruned
    );

    if let Some(out_path) = args.get("output") {
        let mut out = String::from("left,right,gold,predicted\n");
        for (lp, &pred) in ds.test.iter().zip(&result.test_predictions) {
            out.push_str(&format!(
                "{},{},{},{}\n",
                lp.pair.left,
                lp.pair.right,
                u8::from(lp.label),
                u8::from(pred)
            ));
        }
        em_resilience::atomic_write(std::path::Path::new(out_path), out.as_bytes())
            .map_err(|e| format!("{out_path}: {e}"))?;
        em_obs::info(format!("wrote {out_path}"));
    }
    Ok(())
}

/// Fingerprint the resolved pipeline config: FNV-1a 64 over its `Debug`
/// form. Two runs share a fingerprint exactly when every knob matches, so
/// history readers can tell config drift from performance drift.
fn config_fingerprint(cfg: &PromptEmConfig) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in format!("{cfg:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// Export a synthetic benchmark to files a user (or another tool) can read:
/// the two tables in their natural formats plus labeled splits.
fn cmd_export(args: &Args) -> Result<(), String> {
    use em_data::ingest::{extension_for, labels_to_csv, table_to_string};
    use em_data::synth::{build, BenchmarkId, Scale};
    let name = args.require("benchmark")?;
    let id = BenchmarkId::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark '{name}'"))?;
    let dir = std::path::PathBuf::from(args.require("dir")?);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let scale = if args.switch("full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let seed: u64 = args.get_parse("seed", 42)?;
    let ds = build(id, scale, seed);

    let write = |file: String, body: String| -> Result<(), String> {
        let path = dir.join(file);
        em_resilience::atomic_write(&path, body.as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        em_obs::info(format!("wrote {}", path.display()));
        Ok(())
    };
    write(
        format!("left.{}", extension_for(ds.left.format)),
        table_to_string(&ds.left),
    )?;
    write(
        format!("right.{}", extension_for(ds.right.format)),
        table_to_string(&ds.right),
    )?;
    write("train.csv".into(), labels_to_csv(&ds.train))?;
    write("valid.csv".into(), labels_to_csv(&ds.valid))?;
    write("test.csv".into(), labels_to_csv(&ds.test))?;
    println!(
        "{}: {} + {} records, {} train / {} valid / {} test labels",
        ds.name,
        ds.left.len(),
        ds.right.len(),
        ds.train.len(),
        ds.valid.len(),
        ds.test.len()
    );
    Ok(())
}

/// Inspect a checkpoint: magic, sections, sizes, and per-section CRCs.
/// Given a directory, the newest checkpoint in it is inspected.
fn cmd_ckpt(args: &Args) -> Result<(), Failure> {
    match args.positional.get(1).map(|s| s.as_str()) {
        Some("inspect") => {}
        Some(other) => return Err(Failure::from(format!("unknown ckpt action '{other}'"))),
        None => return Err(Failure::from("ckpt needs an action (inspect)".to_string())),
    }
    let target = args
        .positional
        .get(2)
        .ok_or_else(|| Failure::from("ckpt inspect needs a checkpoint file or dir".to_string()))?;
    let mut path = std::path::PathBuf::from(target);
    if path.is_dir() {
        let dir = em_resilience::CheckpointDir::new(&path, em_resilience::DEFAULT_KEEP)
            .map_err(|e| Failure::plain(format!("{target}: {e}")))?;
        let (tag, newest) = dir
            .list()
            .into_iter()
            .next_back()
            .ok_or_else(|| Failure::plain(format!("{target}: no checkpoints found")))?;
        println!("newest checkpoint: tag {tag}");
        path = newest;
    }
    let summary =
        em_resilience::CheckpointDir::inspect(&path).map_err(|e| Failure::plain(e.to_string()))?;
    print!("{summary}");
    Ok(())
}

/// Analyze a `--metrics-out` trace: print the run report (optionally
/// writing `BENCH_report.json`), or with `--diff` compare two traces
/// under regression thresholds and fail when any metric breaches.
/// `--diff --canonical` instead demands byte-exact equivalence of the
/// timing-stripped traces (the thread-count determinism gate).
fn cmd_report(args: &Args) -> Result<(), Failure> {
    let thresholds = em_prof::Thresholds {
        wall_frac: args.get_parse("max-wall-frac", 0.75)?,
        heap_frac: args.get_parse("max-heap-frac", 0.50)?,
        steps_frac: args.get_parse("max-steps-frac", 0.0)?,
        f1_points: args.get_parse("max-f1-drop", 1.0)?,
        op_wall_frac: args.get_parse("max-op-wall-frac", 1.0)?,
        op_bytes_frac: args.get_parse("max-op-bytes-frac", 1.0)?,
    };
    let load = |path: &str| -> Result<em_prof::RunManifest, Failure> {
        let events = em_prof::load_trace(std::path::Path::new(path)).map_err(Failure::plain)?;
        Ok(em_prof::manifest::manifest(&events))
    };

    if let Some(base_path) = args.get("diff") {
        let new_path = args.positional.get(1).ok_or_else(|| {
            Failure::from("report --diff needs two traces: --diff <base> <new>".to_string())
        })?;
        if args.switch("canonical") {
            // Determinism gate: the two runs must have made byte-identical
            // decisions once timing/heap fields are stripped — this is how
            // CI proves `--threads N` equals `--threads 1`.
            let raw = |path: &str| {
                em_prof::load_trace(std::path::Path::new(path)).map_err(Failure::plain)
            };
            let base = raw(base_path)?;
            let new = raw(new_path)?;
            return match em_prof::first_divergence(&base, &new) {
                None => {
                    println!(
                        "canonical traces identical: {} events, {base_path} == {new_path}",
                        base.len()
                    );
                    Ok(())
                }
                Some(d) => Err(Failure::plain(format!(
                    "canonical trace divergence between {base_path} and {new_path}\n{d}"
                ))),
            };
        }
        let report = em_prof::diff(&load(base_path)?, &load(new_path)?, &thresholds);
        print!("{}", report.render());
        let breaches = report.regressions();
        if breaches > 0 {
            return Err(Failure::plain(format!(
                "{breaches} performance regression(s) in {new_path} against {base_path}"
            )));
        }
        return Ok(());
    }

    let trace_path = args
        .positional
        .get(1)
        .ok_or_else(|| Failure::from("report needs a trace file".to_string()))?;
    let manifest = load(trace_path)?;
    let top: usize = args.get_parse("top", 12)?;
    print!("{}", em_prof::report::render_report(&manifest, top));
    if let Some(out_path) = args.get("bench-out") {
        em_resilience::atomic_write(
            std::path::Path::new(out_path),
            em_prof::report::bench_report_json(&manifest).as_bytes(),
        )
        .map_err(|e| Failure::plain(format!("{out_path}: {e}")))?;
        println!("wrote {out_path}");
    }
    Ok(())
}

/// Tail a live `--metrics-out` trace and render the `promptem top`
/// dashboard. On a TTY each frame repaints the screen; otherwise frames
/// print as plain text blocks (so piping to a file stays readable).
/// `--once` renders one frame from the current file contents and exits —
/// also the mode the snapshot tests drive.
fn cmd_top(args: &Args) -> Result<(), Failure> {
    use std::io::{IsTerminal as _, Write as _};
    let trace_path = args
        .positional
        .get(1)
        .ok_or_else(|| Failure::from("top needs a trace file".to_string()))?;
    let interval_ms: u64 = args.get_parse("interval-ms", 500)?;
    let top: usize = args.get_parse("top", 8)?;
    let once = args.switch("once");
    let max_seconds: u64 = args.get_parse("max-seconds", 0)?;

    let mut stream = em_prof::TraceStream::open(trace_path);
    let mut state = em_prof::LiveState::new();
    let tty = std::io::stdout().is_terminal();
    let watch = em_obs::Stopwatch::new();
    loop {
        let fresh = stream.poll().map_err(Failure::plain)?;
        let grew = !fresh.is_empty();
        state.apply_all(fresh);
        if grew || once {
            let frame = state.render(top);
            let mut out = std::io::stdout().lock();
            let drawn = if tty {
                // Clear + home, then the frame: a repainting dashboard.
                write!(out, "\x1b[2J\x1b[H{frame}")
            } else {
                writeln!(out, "{frame}")
            };
            drawn
                .and_then(|()| out.flush())
                .map_err(|e| Failure::plain(format!("stdout: {e}")))?;
        }
        if once || (max_seconds > 0 && watch.secs() >= max_seconds as f64) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

/// The cross-run ledger: `--append` distills a trace into one
/// `BENCH_history.jsonl` line; the trajectory table always prints; and
/// `--gate` compares the newest entry against the rolling median of the
/// previous `--window` entries, failing the process on a trend breach.
fn cmd_history(args: &Args) -> Result<(), Failure> {
    let ledger = args
        .positional
        .get(1)
        .ok_or_else(|| Failure::from("history needs a ledger file".to_string()))?;
    let ledger = std::path::Path::new(ledger);
    if let Some(trace_path) = args.get("append") {
        let events =
            em_prof::load_trace(std::path::Path::new(trace_path)).map_err(Failure::plain)?;
        let entry = em_prof::history::distill(&em_prof::manifest::manifest(&events));
        em_prof::history::append(ledger, &entry).map_err(Failure::plain)?;
        println!(
            "appended run (seed {}, {:.1}s wall) to {}",
            entry.seed,
            entry.total_wall_us as f64 / 1e6,
            ledger.display()
        );
    }
    let entries = em_prof::history::load(ledger).map_err(Failure::plain)?;
    if entries.is_empty() {
        println!("{}: empty ledger (append a run first)", ledger.display());
        return Ok(());
    }
    print!("{}", em_prof::history::render_trend(&entries));
    if args.switch("gate") {
        let thresholds = em_prof::Thresholds {
            wall_frac: args.get_parse("max-wall-frac", 0.75)?,
            heap_frac: args.get_parse("max-heap-frac", 0.50)?,
            f1_points: args.get_parse("max-f1-drop", 1.0)?,
            ..em_prof::Thresholds::default()
        };
        let window: usize = args.get_parse("window", 5)?;
        let report =
            em_prof::history::gate(&entries, window, &thresholds).map_err(Failure::plain)?;
        println!();
        print!("{}", report.render());
        let breaches = report.regressions();
        if breaches > 0 {
            return Err(Failure::plain(format!(
                "{breaches} trend regression(s) in the newest {} entry",
                ledger.display()
            )));
        }
    }
    Ok(())
}

/// Parse `left,right,label` rows (header optional).
fn parse_labels(body: &str, n_left: usize, n_right: usize) -> Result<Vec<LabeledPair>, String> {
    let rows = ingest::parse_csv(body).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (k, row) in rows.iter().enumerate() {
        if k == 0 && row.iter().any(|f| f.parse::<usize>().is_err()) {
            continue; // header
        }
        if row.len() != 3 {
            return Err(format!("labels row {} must have 3 fields", k + 1));
        }
        let left: usize = row[0]
            .trim()
            .parse()
            .map_err(|_| format!("bad left index on row {}", k + 1))?;
        let right: usize = row[1]
            .trim()
            .parse()
            .map_err(|_| format!("bad right index on row {}", k + 1))?;
        let label = matches!(row[2].trim(), "1" | "true" | "yes");
        if left >= n_left || right >= n_right {
            return Err(format!("label row {} out of range", k + 1));
        }
        out.push(LabeledPair {
            pair: Pair { left, right },
            label,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labels_with_header() {
        let l = parse_labels("left,right,label\n0,1,1\n2,0,0\n", 5, 5).unwrap();
        assert_eq!(l.len(), 2);
        assert!(l[0].label);
        assert!(!l[1].label);
    }

    #[test]
    fn parse_labels_range_check() {
        assert!(parse_labels("0,9,1\n", 5, 5).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        let _g = crate::cli_e2e::lock();
        assert!(run_cli(vec!["bogus".into()]).is_err());
    }
}
