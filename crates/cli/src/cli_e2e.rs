//! End-to-end CLI tests over temp files with tiny training budgets.

use crate::run_cli;
use std::path::PathBuf;

fn write_fixture(dir: &PathBuf) -> (String, String, String) {
    std::fs::create_dir_all(dir).unwrap();
    let mut csv = String::from("name,city,year\n");
    let mut jsonl = String::new();
    let names = ["blue cafe", "red diner", "green grill", "gold bistro"];
    let cities = ["boston", "austin", "denver", "madison"];
    for i in 0..24 {
        let name = names[i % 4];
        let city = cities[(i / 4) % 4];
        let year = 1990 + i;
        csv.push_str(&format!("{name} number {i},{city},{year}\n"));
        jsonl.push_str(&format!(
            "{{\"title\": \"{name} number {i}\", \"place\": \"{city}\", \"opened\": {year}}}\n"
        ));
    }
    let mut labels = String::from("left,right,label\n");
    for i in 0..24 {
        labels.push_str(&format!("{i},{i},1\n"));
        labels.push_str(&format!("{i},{},0\n", (i + 4) % 24));
    }
    let left = dir.join("left.csv");
    let right = dir.join("right.jsonl");
    let lab = dir.join("labels.csv");
    std::fs::write(&left, csv).unwrap();
    std::fs::write(&right, jsonl).unwrap();
    std::fs::write(&lab, labels).unwrap();
    (
        left.to_string_lossy().into_owned(),
        right.to_string_lossy().into_owned(),
        lab.to_string_lossy().into_owned(),
    )
}

#[test]
fn stats_command_works_on_real_files() {
    let dir = std::env::temp_dir().join("promptem_cli_test_stats");
    let (left, right, _) = write_fixture(&dir);
    run_cli(vec!["stats".into(), "--left".into(), left, "--right".into(), right]).unwrap();
}

#[test]
fn match_command_end_to_end_with_tiny_budget() {
    let dir = std::env::temp_dir().join("promptem_cli_test_match");
    let (left, right, labels) = write_fixture(&dir);
    let out = dir.join("pred.csv");
    run_cli(vec![
        "match".into(),
        "--left".into(),
        left,
        "--right".into(),
        right,
        "--labels".into(),
        labels,
        "--output".into(),
        out.to_string_lossy().into_owned(),
        "--pretrain-steps".into(),
        "60".into(),
        "--epochs".into(),
        "2".into(),
        "--no-lst".into(),
    ])
    .unwrap();
    let body = std::fs::read_to_string(&out).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines[0], "left,right,gold,predicted");
    assert!(lines.len() > 1, "no predictions written");
    for line in &lines[1..] {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4);
        assert!(fields[3] == "0" || fields[3] == "1");
    }
}

#[test]
fn export_writes_all_files() {
    let dir = std::env::temp_dir().join("promptem_cli_test_export");
    std::fs::remove_dir_all(&dir).ok();
    run_cli(vec![
        "export".into(),
        "--benchmark".into(),
        "rel-heter".into(),
        "--dir".into(),
        dir.to_string_lossy().into_owned(),
    ])
    .unwrap();
    for f in ["left.csv", "right.csv", "train.csv", "valid.csv", "test.csv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }
    // The exported tables re-ingest cleanly.
    let body = std::fs::read_to_string(dir.join("left.csv")).unwrap();
    let t = em_data::ingest::table_from_csv("left", &body).unwrap();
    assert!(t.len() > 50);
}

#[test]
fn match_rejects_too_few_labels() {
    let dir = std::env::temp_dir().join("promptem_cli_test_few");
    let (left, right, _) = write_fixture(&dir);
    let labels = dir.join("few.csv");
    std::fs::write(&labels, "0,0,1\n1,1,1\n").unwrap();
    let err = run_cli(vec![
        "match".into(),
        "--left".into(),
        left,
        "--right".into(),
        right,
        "--labels".into(),
        labels.to_string_lossy().into_owned(),
    ])
    .unwrap_err();
    assert!(err.contains("at least 8"), "{err}");
}
