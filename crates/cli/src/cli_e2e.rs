//! End-to-end CLI tests over temp files with tiny training budgets.

use crate::run_cli;
use std::path::PathBuf;
use std::sync::Mutex;

/// The em-obs sinks `run_cli` wires up are process-global, so CLI tests
/// must not run concurrently — one test's trace file would swallow another
/// test's events. Every test in this module holds this lock.
static CLI_LOCK: Mutex<()> = Mutex::new(());

pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
    CLI_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_fixture(dir: &PathBuf) -> (String, String, String) {
    std::fs::create_dir_all(dir).unwrap();
    let mut csv = String::from("name,city,year\n");
    let mut jsonl = String::new();
    let names = ["blue cafe", "red diner", "green grill", "gold bistro"];
    let cities = ["boston", "austin", "denver", "madison"];
    for i in 0..24 {
        let name = names[i % 4];
        let city = cities[(i / 4) % 4];
        let year = 1990 + i;
        csv.push_str(&format!("{name} number {i},{city},{year}\n"));
        jsonl.push_str(&format!(
            "{{\"title\": \"{name} number {i}\", \"place\": \"{city}\", \"opened\": {year}}}\n"
        ));
    }
    let mut labels = String::from("left,right,label\n");
    for i in 0..24 {
        labels.push_str(&format!("{i},{i},1\n"));
        labels.push_str(&format!("{i},{},0\n", (i + 4) % 24));
    }
    let left = dir.join("left.csv");
    let right = dir.join("right.jsonl");
    let lab = dir.join("labels.csv");
    std::fs::write(&left, csv).unwrap();
    std::fs::write(&right, jsonl).unwrap();
    std::fs::write(&lab, labels).unwrap();
    (
        left.to_string_lossy().into_owned(),
        right.to_string_lossy().into_owned(),
        lab.to_string_lossy().into_owned(),
    )
}

#[test]
fn stats_command_works_on_real_files() {
    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_stats");
    let (left, right, _) = write_fixture(&dir);
    run_cli(vec![
        "stats".into(),
        "--left".into(),
        left,
        "--right".into(),
        right,
    ])
    .unwrap();
}

#[test]
fn match_command_end_to_end_with_tiny_budget() {
    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_match");
    let (left, right, labels) = write_fixture(&dir);
    let out = dir.join("pred.csv");
    run_cli(vec![
        "match".into(),
        "--left".into(),
        left,
        "--right".into(),
        right,
        "--labels".into(),
        labels,
        "--output".into(),
        out.to_string_lossy().into_owned(),
        "--pretrain-steps".into(),
        "60".into(),
        "--epochs".into(),
        "2".into(),
        "--no-lst".into(),
    ])
    .unwrap();
    let body = std::fs::read_to_string(&out).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines[0], "left,right,gold,predicted");
    assert!(lines.len() > 1, "no predictions written");
    for line in &lines[1..] {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4);
        assert!(fields[3] == "0" || fields[3] == "1");
    }
}

#[test]
fn match_with_metrics_out_writes_a_structured_trace() {
    use em_obs::{Event, EventKind};

    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_trace");
    let (left, right, labels) = write_fixture(&dir);
    let trace = dir.join("trace.jsonl");
    run_cli(vec![
        "match".into(),
        "--left".into(),
        left,
        "--right".into(),
        right,
        "--labels".into(),
        labels,
        "--metrics-out".into(),
        trace.to_string_lossy().into_owned(),
        "--trace".into(),
        "off".into(),
        "--seed".into(),
        "777".into(),
        "--pretrain-steps".into(),
        "40".into(),
        "--epochs".into(),
        "2".into(),
    ])
    .unwrap();

    let body = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<Event> = body
        .lines()
        .map(|l| Event::parse(l).unwrap_or_else(|e| panic!("{e}")))
        .collect();
    assert!(!events.is_empty(), "trace file is empty");
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq not monotonic");
    }
    assert!(
        events.iter().all(|e| e.seed == 777),
        "events missing the run seed"
    );

    // The nested pipeline spans, in order: the CLI's own `match` span wraps
    // pretrain → encode → tune → lst (teacher/student inside).
    let open = |name: &str| -> (u64, u64, Option<u64>) {
        events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::SpanOpen {
                    id,
                    name: n,
                    parent,
                    ..
                } if n == name => Some((*id, e.seq, *parent)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no span_open for '{name}'"))
    };
    let (match_id, match_seq, match_parent) = open("match");
    assert_eq!(match_parent, None);
    let (_, pretrain_seq, pretrain_parent) = open("pretrain");
    assert_eq!(pretrain_parent, Some(match_id));
    let (tune_id, tune_seq, tune_parent) = open("tune");
    assert_eq!(tune_parent, Some(match_id));
    let (_, lst_seq, lst_parent) = open("lst");
    assert_eq!(lst_parent, Some(tune_id));
    let (teacher_id, _, _) = open("teacher");
    let (student_id, _, _) = open("student");
    assert!(match_seq < pretrain_seq && pretrain_seq < tune_seq && tune_seq < lst_seq);

    // LST ran: pseudo-labels were selected.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PseudoSelect { .. })),
        "LST run produced no pseudo_select event"
    );

    // Per-epoch events under both teacher and student, carrying loss and
    // validation F1.
    for (span, label) in [(teacher_id, "teacher"), (student_id, "student")] {
        let epochs: Vec<&Event> = events
            .iter()
            .filter(|e| e.span == Some(span) && matches!(e.kind, EventKind::EpochSummary { .. }))
            .collect();
        assert_eq!(epochs.len(), 2, "{label} must emit one event per epoch");
        for e in epochs {
            match &e.kind {
                EventKind::EpochSummary {
                    train_loss,
                    valid_f1,
                    ..
                } => {
                    assert!(train_loss.is_finite(), "{label} epoch loss not finite");
                    let f1 = valid_f1.expect("epoch event missing valid F1");
                    assert!((0.0..=100.0).contains(&f1), "bad F1 {f1}");
                }
                _ => unreachable!(),
            }
        }
    }

    // Spans closed with plausible timing.
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            EventKind::SpanClose { id, wall_us, .. } if *id == match_id && *wall_us > 0
        )),
        "match span never closed"
    );
}

#[test]
fn export_writes_all_files() {
    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_export");
    std::fs::remove_dir_all(&dir).ok();
    run_cli(vec![
        "export".into(),
        "--benchmark".into(),
        "rel-heter".into(),
        "--dir".into(),
        dir.to_string_lossy().into_owned(),
    ])
    .unwrap();
    for f in [
        "left.csv",
        "right.csv",
        "train.csv",
        "valid.csv",
        "test.csv",
    ] {
        assert!(dir.join(f).exists(), "{f} missing");
    }
    // The exported tables re-ingest cleanly.
    let body = std::fs::read_to_string(dir.join("left.csv")).unwrap();
    let t = em_data::ingest::table_from_csv("left", &body).unwrap();
    assert!(t.len() > 50);
}

#[test]
fn report_and_same_seed_diff_pass_end_to_end() {
    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_report");
    let (left, right, labels) = write_fixture(&dir);
    let traces = [dir.join("a.jsonl"), dir.join("b.jsonl")];
    for trace in &traces {
        run_cli(vec![
            "match".into(),
            "--left".into(),
            left.clone(),
            "--right".into(),
            right.clone(),
            "--labels".into(),
            labels.clone(),
            "--metrics-out".into(),
            trace.to_string_lossy().into_owned(),
            "--trace".into(),
            "off".into(),
            "--seed".into(),
            "99".into(),
            "--pretrain-steps".into(),
            "30".into(),
            "--epochs".into(),
            "2".into(),
            "--no-lst".into(),
        ])
        .unwrap();
    }

    // The single-trace report writes a populated BENCH_report.json.
    let bench = dir.join("BENCH_report.json");
    run_cli(vec![
        "report".into(),
        traces[0].to_string_lossy().into_owned(),
        "--bench-out".into(),
        bench.to_string_lossy().into_owned(),
    ])
    .unwrap();
    let body = std::fs::read_to_string(&bench).unwrap();
    assert!(
        body.contains("\"schema\": \"promptem-bench-report/v2\""),
        "{body}"
    );
    assert!(body.contains("\"seed\": 99"), "{body}");
    assert!(!body.contains("\"optimizer_steps\": 0,"), "{body}");
    assert!(body.contains("\"name\": \"pretrain\""), "{body}");

    // Two same-seed runs must diff clean under default thresholds.
    run_cli(vec![
        "report".into(),
        "--diff".into(),
        traces[0].to_string_lossy().into_owned(),
        traces[1].to_string_lossy().into_owned(),
    ])
    .unwrap_or_else(|e| panic!("same-seed diff must pass: {e:?}"));
}

#[test]
fn report_diff_fails_on_an_optimizer_step_regression() {
    use em_obs::{Event, EventKind};

    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_report_breach");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_with_steps = |steps: u64| -> String {
        (0..steps)
            .map(|i| {
                Event {
                    seq: i + 1,
                    seed: 5,
                    t_us: i * 10,
                    span: None,
                    kind: EventKind::PretrainStep {
                        step: i,
                        mlm_loss: 2.0,
                    },
                }
                .to_json()
                    + "\n"
            })
            .collect()
    };
    let base = dir.join("base.jsonl");
    let slow = dir.join("slow.jsonl");
    std::fs::write(&base, trace_with_steps(10)).unwrap();
    std::fs::write(&slow, trace_with_steps(12)).unwrap();
    let err = run_cli(vec![
        "report".into(),
        "--diff".into(),
        base.to_string_lossy().into_owned(),
        slow.to_string_lossy().into_owned(),
    ])
    .unwrap_err();
    assert!(err.contains("regression"), "{err:?}");
}

#[test]
fn progress_every_emits_run_meta_first_then_heartbeats() {
    use em_obs::{Event, EventKind};

    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_heartbeat");
    let (left, right, labels) = write_fixture(&dir);
    let trace = dir.join("live.jsonl");
    run_cli(vec![
        "match".into(),
        "--left".into(),
        left,
        "--right".into(),
        right,
        "--labels".into(),
        labels,
        "--metrics-out".into(),
        trace.to_string_lossy().into_owned(),
        "--trace".into(),
        "off".into(),
        "--seed".into(),
        "7".into(),
        "--pretrain-steps".into(),
        "30".into(),
        "--epochs".into(),
        "2".into(),
        "--no-lst".into(),
        "--progress-every".into(),
        "2".into(),
    ])
    .unwrap();

    let body = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<Event> = body
        .lines()
        .map(|l| Event::parse(l).unwrap_or_else(|e| panic!("{e}")))
        .collect();
    // Identity leads the trace so readers can key the run immediately.
    match &events[0].kind {
        EventKind::RunMeta {
            seed,
            config,
            build,
            schema,
            ..
        } => {
            assert_eq!(*seed, 7);
            assert_eq!(config.len(), 16, "fingerprint is 16 hex chars: {config}");
            assert_eq!(*schema, em_obs::RUN_META_SCHEMA);
            assert!(build == "debug" || build == "release");
        }
        other => panic!("first event must be run_meta, got {other:?}"),
    }
    let beats: Vec<(&String, u64)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Progress { phase, done, .. } => Some((phase, *done)),
            _ => None,
        })
        .collect();
    for phase in ["pretrain", "tune"] {
        assert!(
            beats.iter().any(|(p, _)| *p == phase),
            "no heartbeat for {phase}: {beats:?}"
        );
    }
    assert!(
        beats.iter().all(|&(_, done)| done > 0 && done % 2 == 0),
        "beats land every 2 ticks: {beats:?}"
    );

    // `top --once` renders the trace even with a torn final line
    // (a writer mid-flush). The dashboard must not error.
    let torn = dir.join("torn.jsonl");
    let cut = body.len() - 20;
    std::fs::write(&torn, &body[..cut]).unwrap();
    run_cli(vec![
        "top".into(),
        torn.to_string_lossy().into_owned(),
        "--once".into(),
    ])
    .unwrap_or_else(|e| panic!("top --once on a torn trace: {e:?}"));
}

#[test]
fn history_appends_and_gates_the_trend() {
    use em_obs::{Event, EventKind};

    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_history");
    std::fs::create_dir_all(&dir).unwrap();
    // A tiny but complete synthetic trace: identity, one timed span, one
    // epoch with a validation F1.
    let events = [
        Event {
            seq: 1,
            seed: 5,
            t_us: 0,
            span: None,
            kind: EventKind::RunMeta {
                seed: 5,
                config: "00ddba11feed0042".into(),
                git_sha: Some("272a3fc99".into()),
                build: "debug".into(),
                schema: em_obs::RUN_META_SCHEMA,
            },
        },
        Event {
            seq: 2,
            seed: 5,
            t_us: 10,
            span: None,
            kind: EventKind::SpanOpen {
                id: 1,
                parent: None,
                name: "match".into(),
                detail: None,
            },
        },
        Event {
            seq: 3,
            seed: 5,
            t_us: 500,
            span: Some(1),
            kind: EventKind::EpochSummary {
                epoch: 0,
                train_loss: 0.5,
                valid_f1: Some(90.0),
                threshold: None,
                examples: 64,
                batches: 8,
                wall_us: 400,
            },
        },
        Event {
            seq: 4,
            seed: 5,
            t_us: 1000,
            span: None,
            kind: EventKind::SpanClose {
                id: 1,
                name: "match".into(),
                wall_us: 990,
                heap_delta: 0,
                heap_peak: 4096,
            },
        },
    ];
    let trace = dir.join("run.jsonl");
    let body: String = events.iter().map(|e| e.to_json() + "\n").collect();
    std::fs::write(&trace, body).unwrap();

    let ledger = dir.join("BENCH_history.jsonl");
    std::fs::remove_file(&ledger).ok();
    for _ in 0..2 {
        run_cli(vec![
            "history".into(),
            ledger.to_string_lossy().into_owned(),
            "--append".into(),
            trace.to_string_lossy().into_owned(),
        ])
        .unwrap();
    }
    // Identical runs: the trend gate passes.
    run_cli(vec![
        "history".into(),
        ledger.to_string_lossy().into_owned(),
        "--gate".into(),
    ])
    .unwrap_or_else(|e| panic!("self-append must gate clean: {e:?}"));

    // A +200% wall entry against that flat baseline must fail the gate.
    let entries = em_prof::history::load(&ledger).unwrap();
    let mut spike = entries.last().unwrap().clone();
    spike.total_wall_us *= 3;
    em_prof::history::append(&ledger, &spike).unwrap();
    let err = run_cli(vec![
        "history".into(),
        ledger.to_string_lossy().into_owned(),
        "--gate".into(),
    ])
    .unwrap_err();
    assert!(err.contains("trend regression"), "{err:?}");
}

#[test]
fn match_rejects_too_few_labels() {
    let _g = lock();
    let dir = std::env::temp_dir().join("promptem_cli_test_few");
    let (left, right, _) = write_fixture(&dir);
    let labels = dir.join("few.csv");
    std::fs::write(&labels, "0,0,1\n1,1,1\n").unwrap();
    let err = run_cli(vec![
        "match".into(),
        "--left".into(),
        left,
        "--right".into(),
        right,
        "--labels".into(),
        labels.to_string_lossy().into_owned(),
    ])
    .unwrap_err();
    assert!(err.contains("at least 8"), "{err}");
}
