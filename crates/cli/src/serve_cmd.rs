//! `promptem serve` — train once, then answer match requests over the
//! em-serve line protocol — and `promptem drive`, the concurrent load
//! driver CI uses to prove served decisions are byte-identical to the
//! offline `promptem match` run over the same pairs.

use crate::args::Args;
use crate::{announce_run, prepare_run};
use em_data::ingest;
use em_serve::{MatchScorer, Request, Response, ScorerFactory, ServeCfg, Server};
use promptem::{run_trained, PairCodec, TrainedMatcher};
use std::sync::Arc;

/// One worker's scorer: a snapshot of the trained matcher plus the pair
/// codec. `score` encodes request pairs exactly as the offline dataset
/// encoding does and runs one coalesced tape-free forward, so served
/// decisions are bit-identical to `promptem match` on the same pairs.
struct PipelineScorer {
    matcher: TrainedMatcher,
    codec: PairCodec,
}

impl MatchScorer for PipelineScorer {
    fn score(&mut self, pairs: &[(u32, u32)]) -> Result<Vec<(f32, bool)>, String> {
        let mut encoded = Vec::with_capacity(pairs.len());
        for &(l, r) in pairs {
            let enc = self.codec.encode(l as usize, r as usize).ok_or_else(|| {
                let (nl, nr) = self.codec.sizes();
                format!("pair ({l},{r}) out of range for {nl} x {nr} tables")
            })?;
            encoded.push(enc);
        }
        Ok(self
            .matcher
            .match_batch(&encoded)
            .into_iter()
            .map(|d| (d.proba, d.is_match))
            .collect())
    }
}

/// Train the pipeline on the given tables/labels (same flags as
/// `match`), then serve match requests until a client drains us.
pub(crate) fn cmd_serve(args: &Args) -> Result<(), String> {
    let (ds, cfg) = prepare_run(args)?;
    announce_run(&ds, &cfg);
    let (trained, codec) = {
        let _span = em_obs::span_with(em_obs::names::SPAN_MATCH, ds.name.clone());
        let out = run_trained(&ds, &cfg);
        em_nn::tape::flush_op_stats();
        out
    };
    println!("test scores: {}", trained.result.scores);

    let port: u16 = args.get_parse("port", 0u16)?;
    let serve_cfg = ServeCfg {
        addr: format!("127.0.0.1:{port}"),
        workers: args.get_parse("workers", 2usize)?,
        batch_max: args.get_parse("batch-max", 16usize)?,
        queue_cap: args.get_parse("queue-cap", 64usize)?,
        inflight_cap: args.get_parse("inflight-cap", 256usize)?,
        default_deadline_ms: match args.get_parse("deadline-ms", 0u64)? {
            0 => None,
            ms => Some(ms),
        },
        wedge_ms: args.get_parse("wedge-ms", 2_000u64)?,
        ..Default::default()
    };
    let matcher = trained.matcher;
    let factory: ScorerFactory = Arc::new(move || {
        Box::new(PipelineScorer {
            matcher: matcher.clone(),
            codec: codec.clone(),
        })
    });
    let server = Server::bind(serve_cfg, factory).map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    if let Some(path) = args.get("port-file") {
        em_resilience::atomic_write(std::path::Path::new(path), format!("{addr}\n").as_bytes())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    println!("serving on {addr}");
    let summary = server.run().map_err(|e| format!("serve: {e}"))?;
    println!(
        "drained: {} completed, {} rejected, {} failed, {} worker restarts",
        summary.completed, summary.rejected, summary.failed, summary.restarts
    );
    Ok(())
}

/// Drive every pair of a predictions CSV (`left,right,gold[,predicted]`)
/// through a running server and write the served decisions in the exact
/// `match --output` format, so `cmp` against the offline file proves
/// byte-identical serving.
pub(crate) fn cmd_drive(args: &Args) -> Result<(), String> {
    let addr = resolve_addr(args)?;
    let pairs_path = args.require("pairs")?;
    let body = std::fs::read_to_string(pairs_path).map_err(|e| format!("{pairs_path}: {e}"))?;
    let rows = parse_pair_rows(&body)?;
    if rows.is_empty() {
        return Err(format!("{pairs_path}: no pairs to drive"));
    }
    let connections: usize = args.get_parse("connections", 4usize)?;
    let pairs: Vec<(u32, u32)> = rows.iter().map(|&(l, r, _)| (l, r)).collect();
    let decisions =
        em_serve::drive_pairs(&addr, &pairs, connections).map_err(|e| format!("{addr}: {e}"))?;

    let mut out = String::from("left,right,gold,predicted\n");
    for (&(l, r, gold), &(_proba, decision)) in rows.iter().zip(&decisions) {
        out.push_str(&format!("{l},{r},{gold},{}\n", u8::from(decision)));
    }
    if let Some(out_path) = args.get("out") {
        em_resilience::atomic_write(std::path::Path::new(out_path), out.as_bytes())
            .map_err(|e| format!("{out_path}: {e}"))?;
        println!("drove {} pairs, wrote {out_path}", rows.len());
    } else {
        print!("{out}");
    }
    if args.switch("shutdown") {
        let mut client = em_serve::Client::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
        match client
            .call(&Request::Shutdown {
                id: "drive-shutdown".into(),
            })
            .map_err(|e| format!("{addr}: shutdown: {e}"))?
        {
            Response::Drained { completed, .. } => {
                println!("server drained after {completed} completed requests");
            }
            other => return Err(format!("unexpected shutdown answer: {other:?}")),
        }
    }
    Ok(())
}

/// `--addr` wins; otherwise read the address the server wrote with
/// `--port-file`.
fn resolve_addr(args: &Args) -> Result<String, String> {
    if let Some(addr) = args.get("addr") {
        return Ok(addr.to_string());
    }
    let path = args
        .get("port-file")
        .ok_or_else(|| "drive needs --addr or --port-file".to_string())?;
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let addr = body.trim();
    if addr.is_empty() {
        return Err(format!("{path}: empty port file"));
    }
    Ok(addr.to_string())
}

/// Parse `left,right,gold[,...]` rows (header optional); extra columns
/// — like the offline `predicted` — are ignored.
fn parse_pair_rows(body: &str) -> Result<Vec<(u32, u32, u8)>, String> {
    let rows = ingest::parse_csv(body).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (k, row) in rows.iter().enumerate() {
        if k == 0 && row.iter().any(|f| f.trim().parse::<u64>().is_err()) {
            continue; // header
        }
        if row.len() < 3 {
            return Err(format!("pairs row {} must have at least 3 fields", k + 1));
        }
        let parse = |i: usize, what: &str| -> Result<u32, String> {
            row[i]
                .trim()
                .parse()
                .map_err(|_| format!("bad {what} on pairs row {}", k + 1))
        };
        let gold = match row[2].trim() {
            "1" | "true" | "yes" => 1,
            _ => 0,
        };
        out.push((parse(0, "left index")?, parse(1, "right index")?, gold));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_rows_skip_header_and_extra_columns() {
        let rows = parse_pair_rows("left,right,gold,predicted\n3,4,1,0\n5,6,0,1\n").unwrap();
        assert_eq!(rows, vec![(3, 4, 1), (5, 6, 0)]);
    }

    #[test]
    fn short_pair_rows_are_rejected() {
        assert!(parse_pair_rows("1,2\n").is_err());
    }
}
