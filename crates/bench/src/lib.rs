//! Shared experiment-harness utilities: scale handling, disk-cached
//! backbone pretraining, table formatting, and a counting allocator for the
//! memory column of Table 4.

#![warn(missing_docs)]

pub mod alloc;
pub mod harness;
pub mod methods;
pub mod table;

pub use harness::{backbone_for, default_config, experiment_seed, init_obs};
