//! Heap accounting for the memory column of Table 4.
//!
//! The counting allocator now lives in `em-obs` (where span-close events
//! consume it too); this module re-exports it so existing bench binaries
//! keep working unchanged:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: em_bench::alloc::CountingAllocator = em_bench::alloc::CountingAllocator;
//! ```

pub use em_obs::alloc::{current_bytes, format_bytes, peak_bytes, reset_peak, CountingAllocator};
