//! Backbone caching and shared experiment configuration.

use em_data::pair::GemDataset;
use em_data::synth::Scale;
use em_lm::PretrainedLm;
use promptem::pipeline::{pretrain_backbone, LmSize, PromptEmConfig};
use promptem::selftrain::LstCfg;
use std::path::PathBuf;
use std::sync::Arc;

/// The seed every experiment derives from (override with `PROMPTEM_SEED`).
pub fn experiment_seed() -> u64 {
    std::env::var("PROMPTEM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// The default PromptEM configuration at a given scale.
pub fn default_config(scale: Scale) -> PromptEmConfig {
    let mut cfg = PromptEmConfig::default();
    match scale {
        Scale::Quick => {
            cfg.lm_size = LmSize::Tiny;
            cfg.lst = LstCfg::quick();
        }
        Scale::Full => {
            cfg.lm_size = LmSize::Base;
            cfg.lst = LstCfg::paper();
            cfg.pretrain.max_steps = 6000;
        }
    }
    cfg
}

fn cache_dir() -> PathBuf {
    let dir = std::env::var("PROMPTEM_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("promptem-backbones"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Pretrain (or load from cache) the backbone LM for one dataset. The cache
/// key covers the dataset name, scale, seed and pretraining budget, so
/// changing any of them invalidates the entry.
pub fn backbone_for(ds: &GemDataset, scale: Scale, cfg: &PromptEmConfig) -> Arc<PretrainedLm> {
    let key = format!(
        "{}-{:?}-{}-{}-{}.lm",
        ds.name.replace('/', "_"),
        scale,
        experiment_seed(),
        cfg.pretrain.max_steps,
        ds.all_labeled(),
    );
    let path = cache_dir().join(key);
    if let Ok(lm) = em_lm::io::load_model(&path) {
        return Arc::new(lm);
    }
    let backbone = pretrain_backbone(ds, cfg);
    if let Err(e) = em_lm::io::save_model(&backbone, &path) {
        eprintln!("warning: failed to cache backbone at {}: {e}", path.display());
    }
    backbone
}
