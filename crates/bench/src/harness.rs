//! Backbone caching, shared experiment configuration, and telemetry wiring
//! for the bench binaries.

use em_data::pair::GemDataset;
use em_data::synth::Scale;
use em_lm::PretrainedLm;
use promptem::pipeline::{pretrain_backbone, LmSize, PromptEmConfig};
use promptem::selftrain::LstCfg;
use std::path::PathBuf;
use std::sync::Arc;

/// The seed every experiment derives from (override with `PROMPTEM_SEED`).
/// An unparsable override falls back to 42 *loudly*, via a warn event.
pub fn experiment_seed() -> u64 {
    match std::env::var("PROMPTEM_SEED") {
        Err(_) => 42,
        Ok(raw) => match raw.trim().parse() {
            Ok(seed) => seed,
            Err(_) => {
                em_obs::warn(format!(
                    "PROMPTEM_SEED={raw:?} is not a u64; using default seed 42"
                ));
                42
            }
        },
    }
}

/// Wire telemetry for a bench binary: stderr sink from `PROMPTEM_LOG`
/// (default `warn` so misconfiguration warnings surface), optional JSONL
/// trace from `PROMPTEM_METRICS_OUT` (a `.jsonl` path; `{name}` in the
/// value expands to the table name), and the run seed on every event.
pub fn init_obs(name: &str) {
    em_obs::init_stderr(Some(em_obs::Level::Warn));
    em_obs::init_from_env();
    em_obs::set_run_seed(experiment_seed());
    if let Ok(raw) = std::env::var("PROMPTEM_METRICS_OUT") {
        let path = PathBuf::from(raw.replace("{name}", name));
        if let Err(e) = em_obs::init_jsonl(&path) {
            em_obs::warn(format!("cannot open metrics file {}: {e}", path.display()));
        }
    }
}

/// The default PromptEM configuration at a given scale.
pub fn default_config(scale: Scale) -> PromptEmConfig {
    let mut cfg = PromptEmConfig::default();
    match scale {
        Scale::Quick => {
            cfg.lm_size = LmSize::Tiny;
            cfg.lst = LstCfg::quick();
        }
        Scale::Full => {
            cfg.lm_size = LmSize::Base;
            cfg.lst = LstCfg::paper();
            cfg.pretrain.max_steps = 6000;
        }
    }
    cfg
}

fn cache_dir() -> PathBuf {
    let dir = std::env::var("PROMPTEM_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("promptem-backbones"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        em_obs::warn(format!(
            "cannot create backbone cache dir {}: {e}; caching will fail",
            dir.display()
        ));
    }
    dir
}

/// Pretrain (or load from cache) the backbone LM for one dataset. The cache
/// key covers the dataset name, scale, seed and pretraining budget, so
/// changing any of them invalidates the entry.
pub fn backbone_for(ds: &GemDataset, scale: Scale, cfg: &PromptEmConfig) -> Arc<PretrainedLm> {
    let key = format!(
        "{}-{:?}-{}-{}-{}.lm",
        ds.name.replace('/', "_"),
        scale,
        experiment_seed(),
        cfg.pretrain.max_steps,
        ds.all_labeled(),
    );
    let path = cache_dir().join(key);
    if let Ok(lm) = em_lm::io::load_model(&path) {
        return Arc::new(lm);
    }
    let backbone = pretrain_backbone(ds, cfg);
    if let Err(e) = em_lm::io::save_model(&backbone, &path) {
        em_obs::warn(format!(
            "failed to cache backbone at {}: {e}",
            path.display()
        ));
    }
    backbone
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_obs::EventKind;

    // Env vars are process-global, so the two seed tests share one #[test]
    // to avoid racing each other under the parallel test runner.
    #[test]
    fn experiment_seed_parses_and_warns_on_garbage() {
        std::env::set_var("PROMPTEM_SEED", "1234");
        let (seed, events) = em_obs::capture(experiment_seed);
        assert_eq!(seed, 1234);
        assert!(events.is_empty(), "clean parse must not warn: {events:?}");

        std::env::set_var("PROMPTEM_SEED", "not-a-number");
        let (seed, events) = em_obs::capture(experiment_seed);
        assert_eq!(seed, 42, "unparsable seed must fall back to 42");
        assert!(
            events.iter().any(|e| matches!(
                &e.kind,
                EventKind::Message { level: em_obs::Level::Warn, text } if text.contains("PROMPTEM_SEED")
            )),
            "fallback must emit a warning: {events:?}"
        );
        std::env::remove_var("PROMPTEM_SEED");
    }
}
