//! Uniform method runner used by every experiment table: one enum covering
//! PromptEM, its ablations and all eight baselines, dispatched over a
//! prepared benchmark context.

use crate::harness::{backbone_for, default_config, experiment_seed};
use em_baselines::{
    evaluate_matcher, BertBaseline, DaderBaseline, DeepMatcherBaseline, DittoBaseline, MatchTask,
    RotomBaseline, SBertBaseline, TDmatchBaseline, TDmatchStarBaseline,
};
use em_data::pair::GemDataset;
use em_data::synth::{build, BenchmarkId, Scale};
use em_data::PrfScores;
use em_lm::prompt::{LabelWords, PromptMode, TemplateId};
use em_lm::PretrainedLm;
use promptem::encode::EncodedDataset;
use promptem::pipeline::{encode_with, run_encoded, PromptEmConfig, RunResult};
use promptem::trainer::TrainCfg;
use std::sync::Arc;
use std::time::Instant;

/// Every method appearing in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodId {
    /// RNN aggregate-and-compare (no pretrained LM).
    DeepMatcher,
    /// Vanilla fine-tuning of the shared backbone.
    Bert,
    /// Siamese encoder + comparator MLP.
    SBert,
    /// Fine-tuning with data augmentation.
    Ditto,
    /// Domain adaptation from a sibling benchmark.
    Dader,
    /// Meta-filtered augmentation (two-stage).
    Rotom,
    /// Unsupervised graph random walks.
    TDmatch,
    /// MLP over walk-derived embeddings.
    TDmatchStar,
    /// The full PromptEM pipeline.
    PromptEm,
    /// Ablation: fine-tuning instead of prompt-tuning.
    PromptEmNoPt,
    /// Ablation: no lightweight self-training.
    PromptEmNoLst,
    /// Ablation: no dynamic data pruning ("PromptEM-" in Table 4).
    PromptEmNoDdp,
}

impl MethodId {
    /// The row order of Table 2 / Table 3 / Table 6.
    pub const MAIN: [MethodId; 9] = [
        MethodId::DeepMatcher,
        MethodId::Bert,
        MethodId::SBert,
        MethodId::Ditto,
        MethodId::Dader,
        MethodId::Rotom,
        MethodId::TDmatch,
        MethodId::TDmatchStar,
        MethodId::PromptEm,
    ];

    /// The ablation rows of Table 2.
    pub const ABLATIONS: [MethodId; 3] = [
        MethodId::PromptEmNoPt,
        MethodId::PromptEmNoLst,
        MethodId::PromptEmNoDdp,
    ];

    /// Display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            MethodId::DeepMatcher => "DeepMatcher",
            MethodId::Bert => "BERT",
            MethodId::SBert => "SentenceBERT",
            MethodId::Ditto => "Ditto",
            MethodId::Dader => "DADER",
            MethodId::Rotom => "Rotom",
            MethodId::TDmatch => "TDmatch",
            MethodId::TDmatchStar => "TDmatch*",
            MethodId::PromptEm => "PromptEM",
            MethodId::PromptEmNoPt => "PromptEM w/o PT",
            MethodId::PromptEmNoLst => "PromptEM w/o LST",
            MethodId::PromptEmNoDdp => "PromptEM w/o DDP",
        }
    }
}

/// DADER's source dataset for each target (Appendix D: "we select the
/// source and target datasets from a similar domain").
pub fn dader_source(target: BenchmarkId) -> BenchmarkId {
    match target {
        BenchmarkId::RelHeter => BenchmarkId::GeoHeter,
        BenchmarkId::SemiHomo => BenchmarkId::RelText,
        BenchmarkId::SemiHeter => BenchmarkId::SemiHomo,
        BenchmarkId::SemiRel => BenchmarkId::SemiHeter,
        BenchmarkId::SemiTextC => BenchmarkId::SemiTextW,
        BenchmarkId::SemiTextW => BenchmarkId::SemiTextC,
        BenchmarkId::RelText => BenchmarkId::SemiHomo,
        BenchmarkId::GeoHeter => BenchmarkId::RelHeter,
    }
}

/// A fully-prepared benchmark: dataset, encoding and cached backbone.
pub struct Bench {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// Experiment scale.
    pub scale: Scale,
    /// The raw dataset.
    pub raw: GemDataset,
    /// The tokenized dataset.
    pub encoded: EncodedDataset,
    /// The cached pretrained backbone.
    pub backbone: Arc<PretrainedLm>,
    /// Default pipeline configuration for this scale.
    pub cfg: PromptEmConfig,
}

impl Bench {
    /// Build + encode + (load-or-pretrain) the backbone for one benchmark.
    pub fn prepare(id: BenchmarkId, scale: Scale) -> Bench {
        let raw = build(id, scale, experiment_seed());
        Self::prepare_raw(id, scale, raw)
    }

    /// Same, but from an externally-derived dataset variant (different
    /// rate/budget — Figure 3, Table 3, Table 6). The backbone is the one
    /// pretrained for the default dataset: backbones never see labels, so
    /// varying the labeled split does not require re-pretraining.
    pub fn prepare_raw(id: BenchmarkId, scale: Scale, raw: GemDataset) -> Bench {
        let cfg = default_config(scale);
        let base = build(id, scale, experiment_seed());
        let backbone = backbone_for(&base, scale, &cfg);
        let encoded = encode_with(&raw, &backbone, &cfg);
        Bench {
            id,
            scale,
            raw,
            encoded,
            backbone,
            cfg,
        }
    }

    fn task(&self) -> MatchTask<'_> {
        MatchTask {
            raw: &self.raw,
            encoded: &self.encoded,
            backbone: self.backbone.clone(),
        }
    }

    fn train_cfg(&self) -> TrainCfg {
        self.cfg.lst.teacher.clone()
    }
}

/// Scores plus the method's training wall-clock.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Test precision/recall/F1.
    pub scores: PrfScores,
    /// Wall-clock seconds spent fitting.
    pub fit_secs: f64,
}

/// Run one method on one prepared benchmark.
pub fn run_method(method: MethodId, bench: &Bench) -> MethodResult {
    let _span = em_obs::span_with(
        em_obs::names::SPAN_METHOD,
        format!("{}/{}", method.name(), bench.raw.name),
    );
    let seed = experiment_seed();
    match method {
        MethodId::DeepMatcher => {
            let mut m = DeepMatcherBaseline::new(bench.train_cfg(), seed);
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::Bert => {
            let mut m = BertBaseline::new(bench.train_cfg(), seed);
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::SBert => {
            let mut m = SBertBaseline::new(bench.train_cfg(), seed);
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::Ditto => {
            let mut m = DittoBaseline::new(bench.train_cfg(), seed);
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::Rotom => {
            let mut m = RotomBaseline::new(bench.train_cfg(), seed);
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::Dader => {
            let source = build(
                dader_source(bench.id),
                bench.scale,
                experiment_seed() ^ 0x50,
            );
            let mut m = DaderBaseline::new(bench.train_cfg(), source, seed);
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::TDmatch => {
            let mut m = TDmatchBaseline::new();
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::TDmatchStar => {
            let mut m = TDmatchStarBaseline::new(seed);
            wrap(evaluate_matcher(&mut m, &bench.task()))
        }
        MethodId::PromptEm => prompt_variant(bench, |_| {}),
        MethodId::PromptEmNoPt => prompt_variant(bench, |cfg| cfg.use_prompt = false),
        MethodId::PromptEmNoLst => prompt_variant(bench, |cfg| cfg.use_lst = false),
        MethodId::PromptEmNoDdp => prompt_variant(bench, |cfg| cfg.lst.prune = None),
    }
}

fn wrap((scores, fit_secs): (PrfScores, f64)) -> MethodResult {
    MethodResult { scores, fit_secs }
}

fn prompt_variant(bench: &Bench, tweak: impl FnOnce(&mut PromptEmConfig)) -> MethodResult {
    let mut cfg = bench.cfg.clone();
    tweak(&mut cfg);
    let start = Instant::now();
    let result: RunResult = run_encoded(bench.backbone.clone(), &bench.encoded, &cfg);
    MethodResult {
        scores: result.scores,
        fit_secs: start.elapsed().as_secs_f64(),
    }
}

/// A PromptEM variant with explicit template/label-word choices (§5.5,
/// Figures 4 & 5).
pub fn run_prompt_choice(
    bench: &Bench,
    template: TemplateId,
    mode: PromptMode,
    label_words: LabelWords,
) -> MethodResult {
    prompt_variant(bench, |cfg| {
        cfg.prompt.template = template;
        cfg.prompt.mode = mode;
        cfg.prompt.label_words = label_words;
        // Prompt-choice comparisons isolate the tuning paradigm (the paper
        // reports them without self-training interactions) and must not
        // grid-search away the explicit choice.
        cfg.use_lst = false;
        cfg.grid_template = false;
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_methods_match_table2_row_order() {
        let names: Vec<&str> = MethodId::MAIN.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            [
                "DeepMatcher",
                "BERT",
                "SentenceBERT",
                "Ditto",
                "DADER",
                "Rotom",
                "TDmatch",
                "TDmatch*",
                "PromptEM"
            ]
        );
        assert_eq!(MethodId::ABLATIONS.len(), 3);
    }

    #[test]
    fn dader_sources_share_a_domain() {
        for id in BenchmarkId::ALL {
            let src = dader_source(id);
            assert_ne!(src, id, "{id:?} cannot be its own source");
            // Paper pairs source/target "from a similar domain": the mapping
            // must be stable and total.
            assert_eq!(dader_source(id), src);
        }
        // The text-product pair maps to each other.
        assert_eq!(dader_source(BenchmarkId::SemiTextC), BenchmarkId::SemiTextW);
        assert_eq!(dader_source(BenchmarkId::SemiTextW), BenchmarkId::SemiTextC);
    }
}
