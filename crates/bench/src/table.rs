//! Plain-text table rendering matching the layout of the paper's tables.

/// Render a table with a header row; columns are padded to their widest
/// cell. Returns the formatted string (callers print it).
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format an F1-like percentage the way the paper prints it (one decimal).
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Format seconds as the paper's Table 4 does (s/m/h).
pub fn duration(secs: f64) -> String {
    if secs < 90.0 {
        format!("{secs:.1}s")
    } else if secs < 5400.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{:.1}h", secs / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let s = render(
            &["method", "F1"],
            &[
                vec!["PromptEM".into(), "94.2".into()],
                vec!["BERT".into(), "91.6".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[2].contains("PromptEM"));
    }

    #[test]
    fn duration_units() {
        assert_eq!(duration(26.6), "26.6s");
        assert_eq!(duration(444.0), "7.4m");
        assert_eq!(duration(120.3 * 3600.0), "120.3h");
    }
}
