//! Ablation of the token-identity attention-head initialization (DESIGN.md
//! §1.1.3): pretrain two otherwise-identical backbones on the same corpus —
//! one with the identity overlay, one with it subtracted back out — and
//! compare (a) final MLM loss and (b) zero-shot cloze discrimination
//! between matched and mismatched test pairs.
//!
//! Run: `cargo bench -p em-bench --bench ablation_identity_head`

use em_bench::experiment_seed;
use em_data::corpus::{build_pretrain_corpus, CorpusCfg, RelationWords};
use em_data::synth::{build, BenchmarkId, Scale};
use em_lm::pretrain::{pretrain_mlm, PretrainCfg};
use em_lm::{Encoder, LmConfig, MlmHead, PretrainedLm, Tokenizer};
use em_nn::{ParamStore, Tape};
use promptem::encode::{encode_dataset, EncodeCfg};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let ds = build(BenchmarkId::RelHeter, scale, experiment_seed());
    let mut rng = StdRng::seed_from_u64(experiment_seed() ^ 0xC0FFEE);
    let corpus_cfg = CorpusCfg::default();
    let corpus = build_pretrain_corpus(&ds, &RelationWords::default(), &corpus_cfg, &mut rng);
    let pcfg = PretrainCfg {
        max_steps: 2500,
        ..Default::default()
    };

    println!("\nAblation — token-identity head initialization (REL-HETER, {scale:?})\n");
    println!("{:>22}  {:>8}  {:>8}", "variant", "MLM loss", "zs AUC");
    for with_identity in [true, false] {
        let tokenizer = Tokenizer::fit(corpus.iter().map(|s| s.as_str()), 2);
        let cfg = LmConfig::tiny(tokenizer.vocab_size());
        let mut store = ParamStore::new();
        let mut build_rng = StdRng::seed_from_u64(experiment_seed() ^ 0xBACB);
        let encoder = Encoder::new(&mut store, cfg, &mut build_rng);
        if !with_identity {
            // Subtract the overlay Encoder::new seeds, restoring plain
            // Xavier initialization.
            for layer in &encoder.layers {
                for w in [layer.attn.wq.w, layer.attn.wk.w] {
                    let m = store.value_mut(w);
                    for i in 0..layer.attn.d_head {
                        let cur = m.get(i, i);
                        m.set(i, i, cur - 1.0);
                    }
                }
            }
        }
        let mlm = MlmHead::new(&mut store, &encoder, &mut build_rng);
        let loss = pretrain_mlm(&mut store, &encoder, &mlm, &tokenizer, &corpus, &pcfg);
        let lm = PretrainedLm {
            store,
            encoder,
            mlm,
            tokenizer,
            final_mlm_loss: loss,
        };

        // Zero-shot AUC over the test pairs via the T1 hard surface form.
        let encoded = encode_dataset(&ds, &lm.tokenizer, &EncodeCfg::default());
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut rng2 = StdRng::seed_from_u64(5);
        for ex in &encoded.test {
            let mut ids = vec![em_lm::tokenizer::CLS];
            ids.extend(&ex.pair.ids_a);
            ids.extend(&ex.pair.ids_b);
            ids.extend(lm.tokenizer.encode("they are"));
            ids.push(em_lm::tokenizer::MASK);
            ids.push(em_lm::tokenizer::SEP);
            ids.truncate(lm.encoder.cfg.max_len);
            let mask_pos = ids
                .iter()
                .position(|&t| t == em_lm::tokenizer::MASK)
                .unwrap_or(ids.len() - 1);
            let mut tape = Tape::inference();
            let h = lm.encoder.forward(&mut tape, &lm.store, &ids, &mut rng2);
            let hm = tape.slice_rows(h, mask_pos, 1);
            let logits = lm.mlm.logits(&mut tape, &lm.store, &lm.encoder, hm);
            let probs = tape.softmax_rows(logits);
            let pm = tape.value(probs);
            let s = |ws: &[&str]| {
                ws.iter()
                    .filter_map(|w| lm.tokenizer.id_of(w))
                    .map(|i| pm.get(0, i))
                    .sum::<f32>()
            };
            let y = s(&["matched", "similar", "relevant"]);
            let n = s(&["mismatched", "different", "irrelevant"]);
            let p = y / (y + n).max(1e-9);
            if ex.label {
                pos.push(p);
            } else {
                neg.push(p);
            }
        }
        let mut wins = 0.0;
        for &p in &pos {
            for &n in &neg {
                if p > n {
                    wins += 1.0;
                } else if p == n {
                    wins += 0.5;
                }
            }
        }
        let auc = wins / (pos.len() * neg.len()).max(1) as f64;
        let label = if with_identity {
            "identity head (ours)"
        } else {
            "plain Xavier"
        };
        println!("{label:>22}  {loss:>8.3}  {auc:>8.3}");
    }
    println!();
    println!("expected shape: the identity-head variant reaches lower MLM loss and");
    println!("higher zero-shot discrimination within the same step budget.");
}
