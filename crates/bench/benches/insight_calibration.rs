//! Appendix G insight check — "incorrect predictions can have high
//! confidence scores in poorly calibrated networks" (§4.2): measure the
//! teacher model's Expected Calibration Error and the mean confidence of
//! its *wrong* predictions on each dataset's unlabeled pool. High values
//! justify uncertainty-aware (not confidence-based) pseudo-label selection.
//!
//! Run: `cargo bench -p em-bench --bench insight_calibration`

use em_bench::methods::Bench;
use em_bench::{experiment_seed, table};
use em_data::synth::{BenchmarkId, Scale};
use promptem::calibration::{brier_score, expected_calibration_error};
use promptem::model::{PromptEmModel, PromptOpts};
use promptem::trainer::TunableMatcher;

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nInsight — teacher calibration on the unlabeled pool ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let header = ["Dataset", "ECE", "Brier", "conf(wrong)", "conf(right)"];
    let mut rows = Vec::new();
    for id in BenchmarkId::ALL {
        let bench = Bench::prepare(id, scale);
        let mut teacher = PromptEmModel::new(
            bench.backbone.clone(),
            PromptOpts::default(),
            experiment_seed(),
        );
        teacher.train(
            &bench.encoded.train,
            &bench.encoded.valid,
            &bench.cfg.lst.teacher,
            None,
        );
        let probs = teacher.predict_proba(&bench.encoded.unlabeled);
        let gold = &bench.encoded.unlabeled_gold;
        let ece = expected_calibration_error(&probs, gold, 10);
        let brier = brier_score(&probs, gold);
        let (mut cw, mut nw, mut cr, mut nr) = (0.0f64, 0usize, 0.0f64, 0usize);
        for (&p, &g) in probs.iter().zip(gold) {
            let conf = f64::from(p.max(1.0 - p));
            if (p > 0.5) == g {
                cr += conf;
                nr += 1;
            } else {
                cw += conf;
                nw += 1;
            }
        }
        let conf_wrong = if nw > 0 { cw / nw as f64 } else { f64::NAN };
        let conf_right = if nr > 0 { cr / nr as f64 } else { f64::NAN };
        eprintln!(
            "[calib] {}: ECE {ece:.3} conf(wrong) {conf_wrong:.3}",
            id.name()
        );
        rows.push(vec![
            id.name().to_string(),
            format!("{ece:.3}"),
            format!("{brier:.3}"),
            format!("{conf_wrong:.3}"),
            format!("{conf_right:.3}"),
        ]);
    }
    println!("{}", table::render(&header, &rows));
    println!("expected shape (§4.2): wrong predictions carry confidence comparable to");
    println!("right ones (poor calibration) — which is why Table 5's confidence-based");
    println!("selection admits more label noise than uncertainty-based selection.");
}
