//! Figure 6 / Appendix C — error analysis on SEMI-HETER: print one false
//! positive and one false negative with their full attribute views, plus
//! aggregate statistics on whether digit-bearing attributes disagree in
//! errors (the appendix's diagnosis: LMs under-use digital attributes like
//! ISBN and publication date).
//!
//! Run: `cargo bench -p em-bench --bench fig6_error_analysis`

use em_bench::methods::{Bench, MethodId};
use em_bench::{experiment_seed, methods::run_method};
use em_data::record::Record;
use em_data::synth::{BenchmarkId, Scale};
use promptem::model::{PromptEmModel, PromptOpts};
use promptem::trainer::TunableMatcher;

fn main() {
    let scale = Scale::from_env();
    println!("\nFigure 6 — error analysis on SEMI-HETER ({scale:?} scale)\n",);
    let bench = Bench::prepare(BenchmarkId::SemiHeter, scale);

    // Quick sanity line so the analysis is in context.
    let overall = run_method(MethodId::PromptEmNoLst, &bench);
    println!("PromptEM w/o LST on SEMI-HETER: {}\n", overall.scores);

    // Train a model and collect its test errors.
    let mut model = PromptEmModel::new(
        bench.backbone.clone(),
        PromptOpts::default(),
        experiment_seed(),
    );
    model.train(
        &bench.encoded.train,
        &bench.encoded.valid,
        &bench.cfg.lst.teacher,
        None,
    );
    let pairs: Vec<_> = bench.encoded.test.iter().map(|e| e.pair.clone()).collect();
    let pred = model.predict(&pairs);

    let mut shown_fp = false;
    let mut shown_fn = false;
    let mut digit_disagreements_in_errors = 0usize;
    let mut errors = 0usize;
    for (k, (p, ex)) in pred.iter().zip(bench.encoded.test.iter()).enumerate() {
        if *p == ex.label {
            continue;
        }
        errors += 1;
        let lp = bench.raw.test[k];
        let (l, r) = bench.raw.records(lp.pair);
        if digit_attrs_disagree(l, r) {
            digit_disagreements_in_errors += 1;
        }
        if *p && !ex.label && !shown_fp {
            shown_fp = true;
            println!("--- False Positive (predicted match, gold non-match) ---");
            print_pair(l, r);
        } else if !*p && ex.label && !shown_fn {
            shown_fn = true;
            println!("--- False Negative (predicted non-match, gold match) ---");
            print_pair(l, r);
        }
    }
    if !shown_fp {
        println!("(no false positives on this run)");
    }
    if !shown_fn {
        println!("(no false negatives on this run)");
    }
    println!();
    println!(
        "errors where a digit attribute (ISBN/date/price) disagrees: {digit_disagreements_in_errors}/{errors}"
    );
    println!("paper's diagnosis (Appendix C): digital attributes are decisive for these");
    println!("book pairs, and LM-based matchers under-weight them.");
}

fn print_pair(l: &Record, r: &Record) {
    println!("left:");
    for (k, v) in &l.attrs {
        println!("  {k}: {v}");
    }
    println!("right:");
    for (k, v) in &r.attrs {
        println!("  {k}: {v}");
    }
    println!();
}

/// True when any digit-bearing attribute pair with comparable content
/// disagrees between the two records.
fn digit_attrs_disagree(l: &Record, r: &Record) -> bool {
    let digits = |rec: &Record| -> Vec<String> {
        rec.attrs
            .iter()
            .filter(|(_, v)| v.is_numeric())
            .map(|(_, v)| v.to_text())
            .collect()
    };
    let dl = digits(l);
    let dr = digits(r);
    !dl.is_empty() && !dr.is_empty() && dl.iter().all(|v| !dr.contains(v))
}
