//! Appendix F — summarizing long entries: TF-IDF summarization versus the
//! head-truncation strategy the appendix argues against, on the three
//! benchmarks with a textual side.
//!
//! Run: `cargo bench -p em-bench --bench appendix_f_summarization`

use em_bench::methods::Bench;
use em_bench::{experiment_seed, table};
use em_data::synth::{BenchmarkId, Scale};
use promptem::encode::encode_dataset;
use promptem::pipeline::{run_encoded, PromptEmConfig};

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nAppendix F — TF-IDF summarization vs head truncation ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let datasets = [
        BenchmarkId::SemiTextC,
        BenchmarkId::SemiTextW,
        BenchmarkId::RelText,
    ];
    let header = ["Dataset", "summarize F1", "truncate F1"];
    let mut rows = Vec::new();
    for id in datasets {
        let bench = Bench::prepare(id, scale);
        let mut row = vec![id.name().to_string()];
        for summarize in [true, false] {
            let mut cfg: PromptEmConfig = bench.cfg.clone();
            cfg.encode.summarize_text = summarize;
            cfg.use_lst = false;
            // Re-encode under the chosen strategy.
            let encoded = encode_dataset(&bench.raw, &bench.backbone.tokenizer, &cfg.encode);
            let r = run_encoded(bench.backbone.clone(), &encoded, &cfg);
            row.push(table::pct(r.scores.f1));
            eprintln!(
                "[appendixF] {} / {}: F1 {:.1}",
                id.name(),
                if summarize { "summarize" } else { "truncate" },
                r.scores.f1
            );
        }
        rows.push(row);
    }
    println!("{}", table::render(&header, &rows));
    println!("expected shape (Appendix F): summarization ≥ truncation — \"the important");
    println!("information for matching is usually not at the beginning\".");
}
