//! Criterion microbenchmarks of the substrates: serialization, TF-IDF
//! summarization, tokenization, matmul kernels, encoder forward, MC-Dropout
//! passes, MC-EL2N scoring and one RWR power-iteration step.

use criterion::{criterion_group, criterion_main, Criterion};
use em_data::serialize::serialize;
use em_data::summarize::TfIdf;
use em_data::synth::{build, BenchmarkId, Scale};
use em_lm::{LmConfig, PretrainCfg, PretrainedLm};
use em_nn::{Matrix, Tape};
use std::hint::black_box;

fn bench_serialize(c: &mut Criterion) {
    let ds = build(BenchmarkId::SemiHeter, Scale::Quick, 1);
    let record = ds.left.records[0].clone();
    let format = ds.left.format;
    c.bench_function("serialize_semi_structured_record", |b| {
        b.iter(|| black_box(serialize(black_box(&record), format)))
    });
}

fn bench_summarize(c: &mut Criterion) {
    let ds = build(BenchmarkId::SemiTextW, Scale::Quick, 2);
    let texts: Vec<String> = ds
        .right
        .records
        .iter()
        .map(|r| serialize(r, ds.right.format))
        .collect();
    let tfidf = TfIdf::fit(texts.iter().map(|s| s.as_str()));
    let long = texts.iter().max_by_key(|t| t.len()).unwrap().clone();
    c.bench_function("tfidf_summarize_long_text", |b| {
        b.iter(|| black_box(tfidf.summarize(black_box(&long), 16)))
    });
}

fn tiny_lm() -> PretrainedLm {
    let corpus: Vec<String> = (0..40)
        .map(|i| format!("record {} with value {} and city {}", i, i * 7 % 13, i % 5))
        .collect();
    PretrainedLm::pretrain(
        &corpus,
        LmConfig::tiny,
        &PretrainCfg {
            max_steps: 30,
            ..Default::default()
        },
        3,
    )
}

fn bench_tokenize(c: &mut Criterion) {
    let lm = tiny_lm();
    let text = "record 17 with value 978067233 and city 4 plus unseen-token 412-555-0123";
    c.bench_function("tokenizer_encode", |b| {
        b.iter(|| black_box(lm.tokenizer.encode(black_box(text))))
    });
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(48, 32, |r, cc| ((r * 31 + cc) as f32).sin());
    let bm = Matrix::from_fn(32, 32, |r, cc| ((r + cc * 7) as f32).cos());
    c.bench_function("matmul_48x32x32", |b| {
        b.iter(|| black_box(a.matmul(black_box(&bm))))
    });
}

fn bench_encoder_forward(c: &mut Criterion) {
    let lm = tiny_lm();
    let ids: Vec<usize> = (0..40).map(|i| 8 + i % 30).collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
    c.bench_function("encoder_forward_seq40", |b| {
        b.iter(|| {
            let mut tape = Tape::inference();
            black_box(
                lm.encoder
                    .forward(&mut tape, &lm.store, black_box(&ids), &mut rng),
            );
        })
    });
}

fn bench_train_step(c: &mut Criterion) {
    let lm = tiny_lm();
    let mut store = lm.store.clone();
    let ids: Vec<usize> = (0..40).map(|i| 8 + i % 30).collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let mut opt = em_nn::AdamW::new(1e-4);
    c.bench_function("encoder_train_step_seq40", |b| {
        b.iter(|| {
            store.zero_grads();
            let mut tape = Tape::new();
            let h = lm.encoder.forward(&mut tape, &store, &ids, &mut rng);
            let pooled = tape.slice_rows(h, 0, 1);
            let logits = lm.mlm.logits(&mut tape, &store, &lm.encoder, pooled);
            let loss = tape.cross_entropy(logits, &[9]);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        })
    });
}

fn bench_rwr_step(c: &mut Criterion) {
    use em_baselines::{MatchTask, Matcher, TDmatchBaseline};
    use promptem::pipeline::{encode_with, pretrain_backbone, PromptEmConfig};
    let ds = build(BenchmarkId::RelHeter, Scale::Quick, 5);
    let mut cfg = PromptEmConfig::default();
    cfg.pretrain.max_steps = 10;
    cfg.corpus.max_record_sentences = 50;
    cfg.corpus.relation_statements = 30;
    let backbone = pretrain_backbone(&ds, &cfg);
    let encoded = encode_with(&ds, &backbone, &cfg);
    c.bench_function("tdmatch_full_fit", |b| {
        b.iter(|| {
            let task = MatchTask {
                raw: &ds,
                encoded: &encoded,
                backbone: backbone.clone(),
            };
            let mut m = TDmatchBaseline::new();
            m.fit(&task);
            black_box(m.predict_test(&task))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serialize, bench_summarize, bench_tokenize, bench_matmul,
              bench_encoder_forward, bench_train_step, bench_rwr_step
}
criterion_main!(benches);
