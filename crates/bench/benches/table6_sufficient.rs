//! Table 6 (Appendix A) — results under the *sufficient*-resource setting:
//! every pooled label is available for training.
//!
//! Run: `cargo bench -p em-bench --bench table6_sufficient`

use em_bench::methods::{run_method, Bench, MethodId};
use em_bench::{experiment_seed, table};
use em_data::synth::{build, BenchmarkId, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nTable 6 — sufficient-resource setting ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    // The appendix reports the nine methods plus the w/o PT ablation.
    let methods: Vec<MethodId> = MethodId::MAIN
        .into_iter()
        .chain([MethodId::PromptEmNoPt])
        .collect();

    let datasets: Vec<BenchmarkId> = BenchmarkId::ALL.to_vec();
    let mut header = vec!["Method".to_string()];
    for id in &datasets {
        for m in ["P", "R", "F"] {
            header.push(format!("{} {}", id.abbrev(), m));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let benches: Vec<Bench> = datasets
        .iter()
        .map(|&id| {
            let sufficient = build(id, scale, experiment_seed()).sufficient();
            Bench::prepare_raw(id, scale, sufficient)
        })
        .collect();

    let mut rows = Vec::new();
    for method in methods {
        let mut row = vec![method.name().to_string()];
        for bench in &benches {
            let r = run_method(method, bench);
            row.push(table::pct(r.scores.precision));
            row.push(table::pct(r.scores.recall));
            row.push(table::pct(r.scores.f1));
            eprintln!(
                "[table6] {} / {}: {}",
                method.name(),
                bench.raw.name,
                r.scores
            );
        }
        rows.push(row);
    }
    println!("{}", table::render(&header_refs, &rows));
    println!("expected shape (paper Table 6): every supervised method improves over");
    println!("Table 2; PromptEM still best on all datasets, but with a smaller margin");
    println!("over fine-tuning (w/o PT gap shrinks from 15.7% to 5.2% average F1).");
}
