//! Table 5 — pseudo-label quality of the three selection strategies
//! (uncertainty / confidence / clustering): TPR and TNR of the labels each
//! strategy assigns to its selected unlabeled samples, with `u_r` fixed to
//! 0.1 on all datasets (paper §5.5).
//!
//! Run: `cargo bench -p em-bench --bench table5_pseudo`

use em_bench::methods::Bench;
use em_bench::{experiment_seed, table};
use em_data::synth::{BenchmarkId, Scale};
use promptem::model::{PromptEmModel, PromptOpts};
use promptem::pseudo::{pseudo_label_quality, select_pseudo_labels, PseudoCfg, SelectionStrategy};
use promptem::trainer::TunableMatcher;

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nTable 5 — pseudo-label selection strategies, u_r = 0.1 ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let strategies = [
        ("Uncertainty", SelectionStrategy::Uncertainty),
        ("Confidence", SelectionStrategy::Confidence),
        ("Clustering", SelectionStrategy::Clustering),
    ];
    let mut header = vec!["Dataset".to_string()];
    for (name, _) in &strategies {
        header.push(format!("{name} TPR"));
        header.push(format!("{name} TNR"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 6];
    for id in BenchmarkId::ALL {
        let bench = Bench::prepare(id, scale);
        // Train the teacher exactly as LST does (Algorithm 1, lines 2-4).
        let mut teacher = PromptEmModel::new(
            bench.backbone.clone(),
            PromptOpts::default(),
            experiment_seed(),
        );
        teacher.train(
            &bench.encoded.train,
            &bench.encoded.valid,
            &bench.cfg.lst.teacher,
            None,
        );
        let mut row = vec![id.name().to_string()];
        for (k, (name, strategy)) in strategies.iter().enumerate() {
            let cfg = PseudoCfg {
                strategy: *strategy,
                u_r: 0.1,
                passes: 10,
                seed: experiment_seed(),
            };
            let selected = select_pseudo_labels(&mut teacher, &bench.encoded.unlabeled, &cfg);
            let (tpr, tnr) = pseudo_label_quality(&selected, &bench.encoded.unlabeled_gold);
            row.push(format!("{tpr:.3}"));
            row.push(format!("{tnr:.3}"));
            sums[2 * k] += tpr;
            sums[2 * k + 1] += tnr;
            eprintln!("[table5] {} / {name}: TPR {tpr:.3} TNR {tnr:.3}", id.name());
        }
        rows.push(row);
    }
    let n = BenchmarkId::ALL.len() as f64;
    let mut avg = vec!["average".to_string()];
    for s in sums {
        avg.push(format!("{:.3}", s / n));
    }
    rows.push(avg);
    println!("{}", table::render(&header_refs, &rows));
    println!("expected shape (paper Table 5): uncertainty dominates on average");
    println!("(paper averages: TPR 0.88, TNR 0.99).");
}
