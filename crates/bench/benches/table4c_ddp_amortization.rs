//! Table 4 (DDP amortization view) — dynamic data pruning trades a fixed
//! MC-EL2N scoring cost (a few stochastic passes per pruning event) for a
//! smaller training set in *every subsequent epoch*. At the paper's budget
//! (30 student epochs) the trade is clearly profitable (−26.1% time); at a
//! mini budget it is near break-even. This bench sweeps the student epoch
//! budget and reports DDP's time delta at each, isolating the student phase
//! (identical teacher/selection costs cancel in Table 4's comparison).
//!
//! Run: `cargo bench -p em-bench --bench table4c_ddp_amortization`

use em_bench::methods::Bench;
use em_bench::table;
use em_data::synth::{BenchmarkId, Scale};
use promptem::model::{PromptEmModel, PromptOpts};
use promptem::trainer::{PruneCfg, TrainCfg, TunableMatcher};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!("\nTable 4c — DDP time delta vs student epoch budget (SEMI-HOMO, {scale:?} scale)\n",);
    let bench = Bench::prepare(BenchmarkId::SemiHomo, scale);
    // Student training set = labels + pseudo-labels; emulate the size by
    // training on train ∪ (a slice of unlabeled pseudo-labeled as negative —
    // the label content is irrelevant for timing).
    let mut train = bench.encoded.train.clone();
    for p in bench
        .encoded
        .unlabeled
        .iter()
        .take(bench.encoded.train.len())
    {
        train.push(promptem::encode::Example {
            pair: p.clone(),
            label: false,
        });
    }
    let prune = PruneCfg {
        every: 3,
        e_r: 0.2,
        passes: 5,
    };

    let header = ["epochs", "no DDP", "with DDP", "Δ time", "pruned"];
    let mut rows = Vec::new();
    for epochs in [8usize, 16, 32] {
        let cfg = TrainCfg {
            epochs,
            best_on_valid: false,
            ..Default::default()
        };

        let mut plain = PromptEmModel::new(bench.backbone.clone(), PromptOpts::default(), 1);
        let t0 = Instant::now();
        plain.train(&train, &bench.encoded.valid, &cfg, None);
        let t_plain = t0.elapsed().as_secs_f64();

        let mut pruned_model = PromptEmModel::new(bench.backbone.clone(), PromptOpts::default(), 1);
        let t0 = Instant::now();
        let report = pruned_model.train(&train, &bench.encoded.valid, &cfg, Some(&prune));
        let t_ddp = t0.elapsed().as_secs_f64();

        let delta = 100.0 * (t_ddp / t_plain - 1.0);
        eprintln!(
            "[table4c] {epochs} epochs: {t_plain:.2}s vs {t_ddp:.2}s ({delta:+.1}%), pruned {}",
            report.pruned
        );
        rows.push(vec![
            epochs.to_string(),
            table::duration(t_plain),
            table::duration(t_ddp),
            format!("{delta:+.1}%"),
            report.pruned.to_string(),
        ]);
    }
    println!("{}", table::render(&header, &rows));
    println!("expected shape: the time delta moves from ~break-even at small budgets");
    println!("toward the paper's −26.1% as the epoch budget grows (DDP's scoring cost");
    println!("amortizes over more pruned epochs).");
}
