//! Table 1 — statistics of the (synthetic replicas of the) eight
//! benchmarks: per-table rows and mean attribute counts, total labeled
//! examples, low-resource rate and resulting train size.
//!
//! Run: `cargo bench -p em-bench --bench table1_datasets`
//! Scale via `PROMPTEM_SCALE={quick,full}` (default quick).

use em_bench::{experiment_seed, table};
use em_data::synth::{build, BenchmarkId, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nTable 1 — dataset statistics ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let header = [
        "Dataset", "Domain", "L#row", "L#attr", "R#row", "R#attr", "All", "rate", "Train", "pos%",
    ];
    let mut rows = Vec::new();
    for id in BenchmarkId::ALL {
        let ds = build(id, scale, experiment_seed());
        rows.push(vec![
            ds.name.clone(),
            ds.domain.clone(),
            ds.left.len().to_string(),
            format!("{:.2}", ds.left.mean_arity()),
            ds.right.len().to_string(),
            format!("{:.2}", ds.right.mean_arity()),
            ds.all_labeled().to_string(),
            format!("{:.0}%", ds.rate * 100.0),
            ds.train.len().to_string(),
            format!("{:.0}%", ds.train_pos_rate() * 100.0),
        ]);
    }
    println!("{}", table::render(&header, &rows));
    println!("paper shape: SEMI-HOMO/SEMI-TEXT-c use a 5% rate, the rest 10%;");
    println!("formats per dataset match Table 1 (REL/SEMI/TEXT mixes).");
}
