//! Figure 4 / §5.5 "Effect of template choices" — F1 for the four template
//! variants: continuous T1/T2 and hard-encoding T1*/T2* on every dataset,
//! plus the cross-dataset averages the paper quotes (74.4 / 67.8 / 77.0 /
//! 74.5).
//!
//! Run: `cargo bench -p em-bench --bench fig4_templates`

use em_bench::methods::{run_prompt_choice, Bench};
use em_bench::{experiment_seed, table};
use em_data::synth::{BenchmarkId, Scale};
use em_lm::prompt::{LabelWords, PromptMode, TemplateId};

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nFigure 4 — template choices ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let variants = [
        ("T1 (continuous)", TemplateId::T1, PromptMode::Continuous),
        ("T1* (hard)", TemplateId::T1, PromptMode::Hard),
        ("T2 (continuous)", TemplateId::T2, PromptMode::Continuous),
        ("T2* (hard)", TemplateId::T2, PromptMode::Hard),
    ];
    let mut header = vec!["Dataset".to_string()];
    for (name, _, _) in &variants {
        header.push(name.to_string());
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for id in BenchmarkId::ALL {
        let bench = Bench::prepare(id, scale);
        let mut row = vec![id.abbrev().to_string()];
        for (k, (name, template, mode)) in variants.iter().enumerate() {
            let r = run_prompt_choice(&bench, *template, *mode, LabelWords::designed());
            row.push(table::pct(r.scores.f1));
            sums[k] += r.scores.f1;
            eprintln!("[fig4] {} / {}: F1 {:.1}", id.abbrev(), name, r.scores.f1);
        }
        rows.push(row);
    }
    let n = BenchmarkId::ALL.len() as f64;
    let mut avg = vec!["average".to_string()];
    for s in sums {
        avg.push(table::pct(s / n));
    }
    rows.push(avg);
    println!("{}", table::render(&header_refs, &rows));
    println!("expected shape (paper §5.5/Fig. 4): continuous templates beat their");
    println!("hard-encoding counterparts; T2 performs best overall.");
}
