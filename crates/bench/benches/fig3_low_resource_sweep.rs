//! Figure 3 — F1 as the labeled-data rate sweeps 5% → 25%, per dataset,
//! comparing PromptEM against representative baselines (one per category:
//! fine-tuning, augmentation, domain adaptation, unsupervised).
//!
//! Run: `cargo bench -p em-bench --bench fig3_low_resource_sweep`

use em_bench::methods::{run_method, Bench, MethodId};
use em_bench::{experiment_seed, table};
use em_data::synth::{build, BenchmarkId, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RATES: [f64; 5] = [0.05, 0.10, 0.15, 0.20, 0.25];

fn main() {
    let scale = Scale::from_env();
    let methods = [
        MethodId::PromptEm,
        MethodId::Bert,
        MethodId::Ditto,
        MethodId::Dader,
        MethodId::TDmatch,
    ];
    println!(
        "\nFigure 3 — F1 vs labeled-data rate ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    for id in BenchmarkId::ALL {
        let base = build(id, scale, experiment_seed());
        let mut header = vec!["Method".to_string()];
        for r in RATES {
            header.push(format!("{:.0}%", r * 100.0));
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let benches: Vec<Bench> = RATES
            .iter()
            .map(|&rate| {
                let mut rng = StdRng::seed_from_u64(experiment_seed() ^ (rate * 1000.0) as u64);
                Bench::prepare_raw(id, scale, base.with_rate(rate, &mut rng))
            })
            .collect();
        let mut rows = Vec::new();
        for method in methods {
            let mut row = vec![method.name().to_string()];
            for bench in &benches {
                let r = run_method(method, bench);
                row.push(table::pct(r.scores.f1));
                eprintln!(
                    "[fig3] {} / {} @ {:.0}%: F1 {:.1}",
                    method.name(),
                    id.name(),
                    bench.raw.rate * 100.0,
                    r.scores.f1
                );
            }
            rows.push(row);
        }
        println!("-- {} --", id.name());
        println!("{}", table::render(&header_refs, &rows));
    }
    println!("expected shape (paper Fig. 3): PromptEM best or near-best at every rate;");
    println!("supervised baselines improve with rate; TDmatch flat (label-free).");
}
