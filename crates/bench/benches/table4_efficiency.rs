//! Table 4 — efficiency: training time and peak memory for the best
//! baseline of each category (SBERT, Rotom, TDmatch) vs PromptEM without
//! dynamic data pruning ("PromptEM-") and full PromptEM.
//!
//! Peak memory is measured with a counting global allocator (the paper
//! reports GPU/CPU memory; ours is process heap).
//!
//! Run: `cargo bench -p em-bench --bench table4_efficiency`

use em_bench::alloc::{format_bytes, peak_bytes, reset_peak, CountingAllocator};
use em_bench::methods::{run_method, Bench, MethodId};
use em_bench::{experiment_seed, table};
use em_data::synth::{BenchmarkId, Scale};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nTable 4 — training time and peak heap ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let methods = [
        MethodId::SBert,
        MethodId::Rotom,
        MethodId::TDmatch,
        MethodId::PromptEmNoDdp, // "PromptEM-"
        MethodId::PromptEm,
    ];
    let mut header = vec!["Dataset".to_string()];
    for m in methods {
        let label = if m == MethodId::PromptEmNoDdp {
            "PromptEM-"
        } else {
            m.name()
        };
        header.push(format!("{label} T."));
        header.push(format!("{label} M."));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut ddp_speedups = Vec::new();
    for id in BenchmarkId::ALL {
        let bench = Bench::prepare(id, scale);
        let mut row = vec![id.abbrev().to_string()];
        let mut t_noddp = 0.0f64;
        for method in methods {
            reset_peak();
            let r = run_method(method, &bench);
            let peak = peak_bytes();
            row.push(table::duration(r.fit_secs));
            row.push(format_bytes(peak));
            eprintln!(
                "[table4] {} / {}: {} ({}, F1 {:.1})",
                method.name(),
                id.abbrev(),
                table::duration(r.fit_secs),
                format_bytes(peak),
                r.scores.f1
            );
            if method == MethodId::PromptEmNoDdp {
                t_noddp = r.fit_secs;
            } else if method == MethodId::PromptEm && t_noddp > 0.0 {
                ddp_speedups.push(100.0 * (1.0 - r.fit_secs / t_noddp));
            }
        }
        rows.push(row);
    }
    println!("{}", table::render(&header_refs, &rows));
    let mean_speedup = ddp_speedups.iter().sum::<f64>() / ddp_speedups.len().max(1) as f64;
    println!("DDP training-time reduction vs PromptEM-: {mean_speedup:.1}% on average");
    println!("(paper: 26.1% on average).");
    println!("expected shape (paper Table 4): TDmatch is by far the slowest on the");
    println!("larger datasets; Rotom costs more than SBERT (two-stage); PromptEM <");
    println!("PromptEM- in time with equal memory.");
}
