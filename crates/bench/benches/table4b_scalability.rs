//! Table 4 (scalability view) — the paper's headline efficiency claim is
//! about *growth*: TDmatch's per-source random walks scale with table size
//! (120 h / 131 GB on SEMI-REL), while PromptEM's training cost depends on
//! the (fixed, low-resource) label count. At miniature fixed size that
//! relationship is invisible — so this bench sweeps the table size at a
//! fixed label budget and reports both methods' fit time and peak heap.
//!
//! Run: `cargo bench -p em-bench --bench table4b_scalability`

use em_baselines::{evaluate_matcher, TDmatchBaseline};
use em_bench::alloc::{format_bytes, peak_bytes, reset_peak, CountingAllocator};
use em_bench::methods::Bench;
use em_bench::{experiment_seed, table};
use em_data::pair::GemDataset;
use em_data::record::Table;
use em_data::synth::{build, BenchmarkId, Scale};
use promptem::pipeline::run_encoded;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Grow a dataset's *tables* by stacking shifted copies of the right table
/// (labels untouched): candidate structure stays valid, the graph gets big.
fn grow(ds: &GemDataset, factor: usize, rng: &mut StdRng) -> GemDataset {
    let mut right = Table::new(ds.right.name.clone(), ds.right.format);
    right.records = ds.right.records.clone();
    for _ in 1..factor {
        let mut extra = ds.right.records.clone();
        extra.shuffle(rng);
        right.records.extend(extra);
    }
    let mut left = Table::new(ds.left.name.clone(), ds.left.format);
    left.records = ds.left.records.clone();
    for _ in 1..factor {
        let mut extra = ds.left.records.clone();
        extra.shuffle(rng);
        left.records.extend(extra);
    }
    GemDataset {
        left,
        right,
        ..ds.clone()
    }
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nTable 4b — cost vs table size at a fixed label budget ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let base = build(BenchmarkId::SemiRel, scale, experiment_seed());
    let bench = Bench::prepare(BenchmarkId::SemiRel, scale);
    let header = [
        "rows/side",
        "TDmatch T.",
        "TDmatch M.",
        "PromptEM T.",
        "PromptEM M.",
    ];
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(experiment_seed() ^ 0x5CA1E);
    for factor in [1usize, 2, 4, 8] {
        let grown = grow(&base, factor, &mut rng);
        let n = grown.left.len();

        // TDmatch on the grown tables (graph grows with the data).
        reset_peak();
        let t0 = Instant::now();
        let task = em_baselines::MatchTask {
            raw: &grown,
            encoded: &bench.encoded,
            backbone: bench.backbone.clone(),
        };
        let mut td = TDmatchBaseline::new();
        let (_, _) = evaluate_matcher(&mut td, &task);
        let td_secs = t0.elapsed().as_secs_f64();
        let td_mem = peak_bytes();

        // PromptEM cost is driven by the label count, which is unchanged —
        // run it once per factor to show the flat curve (encoding reused:
        // the labels reference the original prefix of the grown tables).
        reset_peak();
        let t0 = Instant::now();
        let r = run_encoded(bench.backbone.clone(), &bench.encoded, &bench.cfg);
        let pe_secs = t0.elapsed().as_secs_f64();
        let pe_mem = peak_bytes();
        let _ = r;

        eprintln!(
            "[table4b] {n} rows: TDmatch {td_secs:.2}s / {}, PromptEM {pe_secs:.2}s / {}",
            format_bytes(td_mem),
            format_bytes(pe_mem)
        );
        rows.push(vec![
            n.to_string(),
            table::duration(td_secs),
            format_bytes(td_mem),
            table::duration(pe_secs),
            format_bytes(pe_mem),
        ]);
    }
    println!("{}", table::render(&header, &rows));
    println!("expected shape (paper Table 4): TDmatch's cost grows superlinearly with");
    println!("table size (120.3 h / 131.5 GB at Machamp's SEMI-REL scale), while");
    println!("PromptEM's stays flat — its cost tracks the low-resource label budget.");
}
