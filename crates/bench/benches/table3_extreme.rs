//! Table 3 — the *extremely challenging* low-resource setting: every
//! dataset's training budget is capped at a fixed number of labels (80 in
//! the paper; scaled to the harness's dataset sizes here).
//!
//! Run: `cargo bench -p em-bench --bench table3_extreme`

use em_bench::methods::{run_method, Bench, MethodId};
use em_bench::{experiment_seed, table};
use em_data::synth::{build, BenchmarkId, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    em_bench::harness::init_obs("table3_extreme");
    let scale = Scale::from_env();
    // The paper fixes 80 labels at full benchmark sizes; keep 80 at full
    // scale and shrink proportionally for the quick harness.
    let budget = match scale {
        Scale::Full => 80,
        Scale::Quick => 24,
    };
    println!(
        "\nTable 3 — extreme low-resource setting ({budget} labels, {scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let datasets: Vec<BenchmarkId> = BenchmarkId::ALL.to_vec();
    let mut header = vec!["Method".to_string()];
    for id in &datasets {
        for m in ["P", "R", "F"] {
            header.push(format!("{} {}", id.abbrev(), m));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let benches: Vec<Bench> = datasets
        .iter()
        .map(|&id| {
            let base = build(id, scale, experiment_seed());
            let mut rng = StdRng::seed_from_u64(experiment_seed() ^ 0x83);
            let capped = base.with_budget(budget, &mut rng);
            Bench::prepare_raw(id, scale, capped)
        })
        .collect();

    let mut rows = Vec::new();
    for method in MethodId::MAIN {
        let mut row = vec![method.name().to_string()];
        for bench in &benches {
            let r = run_method(method, bench);
            row.push(table::pct(r.scores.precision));
            row.push(table::pct(r.scores.recall));
            row.push(table::pct(r.scores.f1));
            em_obs::info(format!(
                "[table3] {} / {}: {}",
                method.name(),
                bench.raw.name,
                r.scores
            ));
        }
        rows.push(row);
    }
    println!("{}", table::render(&header_refs, &rows));
    em_obs::shutdown();
    println!("expected shape (paper Table 3): PromptEM the most robust — best F1 on");
    println!("most datasets; supervised baselines degrade sharply; TDmatch unchanged");
    println!("(it never used labels).");
}
