//! Figure 5 / §5.5 "Effect of label words choices" — designed label words
//! ({matched, similar, relevant} / {mismatched, different, irrelevant})
//! versus the simple pair ({matched} / {mismatched}), under both
//! continuous templates.
//!
//! Run: `cargo bench -p em-bench --bench fig5_label_words`

use em_bench::methods::{run_prompt_choice, Bench};
use em_bench::{experiment_seed, table};
use em_data::synth::{BenchmarkId, Scale};
use em_lm::prompt::{LabelWords, PromptMode, TemplateId};

fn main() {
    let scale = Scale::from_env();
    println!(
        "\nFigure 5 — label-word choices ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let variants = [
        ("T1 designed", TemplateId::T1, LabelWords::designed()),
        ("T1 simple", TemplateId::T1, LabelWords::simple()),
        ("T2 designed", TemplateId::T2, LabelWords::designed()),
        ("T2 simple", TemplateId::T2, LabelWords::simple()),
    ];
    let mut header = vec!["Dataset".to_string()];
    for (name, _, _) in &variants {
        header.push(name.to_string());
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for id in BenchmarkId::ALL {
        let bench = Bench::prepare(id, scale);
        let mut row = vec![id.abbrev().to_string()];
        for (k, (name, template, words)) in variants.iter().enumerate() {
            let r = run_prompt_choice(&bench, *template, PromptMode::Continuous, words.clone());
            row.push(table::pct(r.scores.f1));
            sums[k] += r.scores.f1;
            eprintln!("[fig5] {} / {}: F1 {:.1}", id.abbrev(), name, r.scores.f1);
        }
        rows.push(row);
    }
    let n = BenchmarkId::ALL.len() as f64;
    let mut avg = vec!["average".to_string()];
    for s in sums {
        avg.push(table::pct(s / n));
    }
    rows.push(avg);
    println!("{}", table::render(&header_refs, &rows));
    println!("expected shape (paper §5.5/Fig. 5): designed label words beat the simple");
    println!("pair under both templates (+5.2% / +9.4% average F1 in the paper) —");
    println!("modeling the *general binary relationship* helps.");
}
