//! Table 2 — main results under the default low-resource setting: P/R/F1
//! of all nine methods plus the three PromptEM ablations on all eight
//! benchmarks.
//!
//! Run: `cargo bench -p em-bench --bench table2_main`
//! Restrict via `PROMPTEM_DATASETS=REL-HETER,SEMI-HOMO` or
//! `PROMPTEM_METHODS=PromptEM,BERT`.

use em_bench::methods::{run_method, Bench, MethodId};
use em_bench::{experiment_seed, table};
use em_data::synth::{BenchmarkId, Scale};

fn main() {
    let scale = Scale::from_env();
    let datasets = dataset_filter();
    let methods = method_filter();
    println!(
        "\nTable 2 — default low-resource setting ({scale:?} scale, seed {})\n",
        experiment_seed()
    );
    let mut header = vec!["Method".to_string()];
    for id in &datasets {
        for m in ["P", "R", "F"] {
            header.push(format!("{} {}", id.abbrev(), m));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let benches: Vec<Bench> = datasets
        .iter()
        .map(|&id| Bench::prepare(id, scale))
        .collect();
    let mut rows = Vec::new();
    for method in methods {
        let mut row = vec![method.name().to_string()];
        for bench in &benches {
            let r = run_method(method, bench);
            row.push(table::pct(r.scores.precision));
            row.push(table::pct(r.scores.recall));
            row.push(table::pct(r.scores.f1));
            eprintln!(
                "[table2] {} / {}: {}",
                method.name(),
                bench.raw.name,
                r.scores
            );
        }
        rows.push(row);
    }
    println!("{}", table::render(&header_refs, &rows));
    println!("expected shape (paper Table 2): PromptEM best or near-best F1 on most");
    println!("datasets; DeepMatcher weakest; TDmatch unstable across datasets;");
    println!("w/o PT clearly below PromptEM; w/o LST ≤ PromptEM; w/o DDP ≈ PromptEM.");
}

fn dataset_filter() -> Vec<BenchmarkId> {
    match std::env::var("PROMPTEM_DATASETS") {
        Ok(s) => BenchmarkId::ALL
            .into_iter()
            .filter(|id| {
                s.split(',')
                    .any(|w| w.trim().eq_ignore_ascii_case(id.name()))
            })
            .collect(),
        Err(_) => BenchmarkId::ALL.to_vec(),
    }
}

fn method_filter() -> Vec<MethodId> {
    let all: Vec<MethodId> = MethodId::MAIN
        .into_iter()
        .chain(MethodId::ABLATIONS)
        .collect();
    match std::env::var("PROMPTEM_METHODS") {
        Ok(s) => all
            .into_iter()
            .filter(|m| {
                s.split(',')
                    .any(|w| w.trim().eq_ignore_ascii_case(m.name()))
            })
            .collect(),
        Err(_) => all,
    }
}
